//! The `Strategy` trait and the combinators this workspace uses.
//!
//! There is no per-strategy shrinking machinery (real proptest's
//! `ValueTree`); instead the runner minimises the RNG *word stream* of
//! a failing case and re-runs generation — see
//! [`crate::test_runner::shrink_failure`]. Strategies only need to map
//! raw words (near-)monotonically onto values, which the range
//! implementations below do via multiply-shift scaling.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` names the filter in
    /// the too-many-rejects panic.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Generate a value, then use it to pick a second strategy.
    fn prop_flat_map<O, S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy<Value = O>,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Strategy,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A boxed generation function: one alternative inside a [`Union`].
type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    alts: Vec<BoxedGen<T>>,
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Union<T> {
    /// An empty union; populate with [`Union::push`].
    pub fn new() -> Self {
        Self { alts: Vec::new() }
    }

    /// Add an alternative.
    pub fn push<S>(&mut self, s: S)
    where
        S: Strategy<Value = T> + 'static,
    {
        self.alts.push(Box::new(move |rng| s.new_value(rng)));
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let i = rng.below(self.alts.len() as u64) as usize;
        (self.alts[i])(rng)
    }
}

// ------------------------------------------------------------ ranges

/// Multiply-shift a raw word into `[0, span)`. Monotone in `w` (unlike
/// modulo reduction), which lets word-stream shrinking binary-search to
/// the exact boundary of a failing range value. `span` may be up to
/// `2^64` (full-domain inclusive ranges).
fn scale_to_span(w: u64, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        w as u128
    } else {
        (w as u128 * span) >> 64
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = scale_to_span(rng.next_u64(), span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = scale_to_span(rng.next_u64(), span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let u = rng.next_unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                let u = rng.next_unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ------------------------------------------------------------ tuples

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
