//! `any::<T>()` — the canonical whole-domain strategy for simple types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain generation strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, wide-range values; real proptest also generates
        // specials, but every caller here immediately constrains range.
        (rng.next_unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary_value(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary_value(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
