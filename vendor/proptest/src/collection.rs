//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A (possibly degenerate) size range for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let n = self.size.lo + rng.below(span.max(1)) as usize;
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length
/// lies in `size` (a `usize` or a range of `usize`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
