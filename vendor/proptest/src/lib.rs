//! Offline stand-in for `proptest`, covering the API surface this
//! workspace uses: the `proptest!` macro (with `#![proptest_config]`),
//! range/tuple/`any`/`Just`/`prop_oneof!` strategies, `prop_map` /
//! `prop_filter` / `prop_flat_map` combinators, `collection::vec`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! * Shrinking is *internal* (Hypothesis-style): instead of per-strategy
//!   `ValueTree`s, the runner minimises the RNG word stream that
//!   produced a failing case and re-runs generation, so it shrinks
//!   through `prop_map`/`prop_filter`/`prop_flat_map` for free. A
//!   failure reports both the minimal and the originally-generated
//!   inputs. `PROPTEST_MAX_SHRINK_ITERS` bounds (or, at 0, disables)
//!   the shrink budget.
//! * Deterministic per-test RNG streams (perturb with
//!   `PROPTEST_RNG_SEED`).
//! * `PROPTEST_CASES` acts as a global cap on per-test case counts so CI
//!   can bound property-test time.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports the subset of real proptest syntax
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body! { ($cfg) ($name) ($($params)*) $body }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) ($name:ident) ($($pat:pat in $strat:expr),+ $(,)?) $body:block) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        let __cases = __config.effective_cases();
        let __max_rejects = __config.max_global_rejects;
        let __shrink_budget = __config.effective_max_shrink_iters();
        let mut __rng = $crate::test_runner::TestRng::for_test(
            concat!(module_path!(), "::", stringify!($name)),
        );
        // Generate inputs from an RNG and run the property once; reused
        // verbatim by the shrinker to re-test minimised word streams.
        #[allow(clippy::redundant_closure_call)]
        let __case = |__rng: &mut $crate::test_runner::TestRng| -> (
            ::std::string::String,
            ::std::result::Result<(), $crate::test_runner::TestCaseError>,
        ) {
            let __inputs = ( $( $crate::strategy::Strategy::new_value(&($strat), __rng), )+ );
            let __described = ::std::format!("{:?}", &__inputs);
            let __outcome = (move || {
                let ( $( $pat, )+ ) = __inputs;
                $body
                ::std::result::Result::Ok(())
            })();
            (__described, __outcome)
        };
        let mut __accepted: u32 = 0;
        let mut __rejected: u32 = 0;
        while __accepted < __cases {
            __rng.begin_record();
            let __state0 = __rng.state();
            let (__described, __outcome) = __case(&mut __rng);
            match __outcome {
                ::std::result::Result::Ok(()) => __accepted += 1,
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                    __rejected += 1;
                    if __rejected > __max_rejects {
                        ::std::panic!(
                            "proptest: too many rejected cases ({}), last: {}",
                            __rejected, __why
                        );
                    }
                }
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__why)) => {
                    let __words = __rng.take_recorded();
                    let __shrunk = $crate::test_runner::shrink_failure(
                        __case,
                        __words,
                        __state0,
                        (__described.clone(), __why),
                        __shrink_budget,
                    );
                    ::std::panic!(
                        "proptest case #{} failed: {}\n    minimal inputs: {}\n    original inputs: {}\n    ({} shrink steps)",
                        __accepted + 1,
                        __shrunk.why,
                        __shrunk.described,
                        __described,
                        __shrunk.steps
                    );
                }
            }
        }
    }};
}

/// Assert a condition inside a `proptest!` body; on failure the case
/// (with its inputs) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} — {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// `prop_assert!` for equality, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                            stringify!($lhs), stringify!($rhs), __l, __r
                        ),
                    ));
                }
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: {} == {} — {}\n    left: {:?}\n   right: {:?}",
                            stringify!($lhs), stringify!($rhs),
                            ::std::format!($($fmt)+), __l, __r
                        ),
                    ));
                }
            }
        }
    };
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: {} != {}\n    both: {:?}",
                            stringify!($lhs),
                            stringify!($rhs),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}

/// Discard the current case (it counts as rejected, not failed) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let mut __union = $crate::strategy::Union::new();
        $( __union.push($s); )+
        __union
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..7.5, n in 2usize..12, b in 0u8..8) {
            prop_assert!((-3.0..7.5).contains(&x));
            prop_assert!((2..12).contains(&n));
            prop_assert!(b < 8);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 3..9)) {
            prop_assert!((3..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn maps_and_filters(
            p in (0.0f64..10.0, 0.0f64..10.0)
                .prop_filter("nonzero", |(a, b)| a + b > 0.1)
                .prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(p > 0.1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        // The runner must actually surface failures — a vacuously green
        // suite would defeat the whole pyramid.
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failures_are_detected(x in 0u8..4) {
            prop_assert!(x > 100, "x was {}", x);
        }

        // Shrinking must binary-search a failing range value down to the
        // exact boundary: the smallest x in 0..1000 violating x < 10 is
        // 10 itself.
        #[test]
        #[should_panic(expected = "minimal inputs: (10,)")]
        fn shrinking_finds_the_boundary(x in 0u32..1000) {
            prop_assert!(x < 10);
        }

        // Shrinking must minimise collections too: the smallest vec in
        // 0..20 violating len < 5 has exactly 5 elements, each shrunk to
        // the element minimum 0.
        #[test]
        #[should_panic(expected = "minimal inputs: ([0, 0, 0, 0, 0],)")]
        fn shrinking_minimises_vec_length_and_elements(
            v in crate::collection::vec(any::<u8>(), 0..20),
        ) {
            prop_assert!(v.len() < 5);
        }

        // Shrinking re-runs generation, so it works through prop_map and
        // prop_filter: the minimal sum > 0.1 failing `sum < 3.0` is 3.0
        // up to float-boundary rounding.
        #[test]
        #[should_panic(expected = "minimal inputs: (3.0")]
        fn shrinking_works_through_map_and_filter(
            p in (0.0f64..10.0, 0.0f64..10.0)
                .prop_filter("nonzero", |(a, b)| a + b > 0.1)
                .prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(p < 3.0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn runner_executes_configured_case_count() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static COUNT: AtomicU32 = AtomicU32::new(0);
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(13))]
            #[allow(unused)]
            fn counted(_x in 0u8..255) {
                COUNT.fetch_add(1, Ordering::Relaxed);
            }
        }
        counted();
        let ran = COUNT.load(Ordering::Relaxed);
        // Exactly the configured count unless PROPTEST_CASES caps lower.
        let expected = ProptestConfig::with_cases(13).effective_cases();
        assert_eq!(ran, expected);
    }
}
