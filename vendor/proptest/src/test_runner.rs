//! Configuration, error plumbing and the deterministic RNG behind the
//! vendored `proptest!` runner.

/// Per-suite configuration. `cases` and `max_shrink_iters` are
/// honoured; the environment variable `PROPTEST_CASES`, when set, acts
/// as a global *cap* so CI can bound property-test time without editing
/// every suite, and `PROPTEST_MAX_SHRINK_ITERS` overrides the shrink
/// budget the same way (0 disables shrinking).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`/`prop_filter`) before
    /// the test aborts.
    pub max_global_rejects: u32,
    /// Maximum extra executions spent minimising a failing case. Only
    /// the failure path pays this cost; green runs never shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
            max_shrink_iters: 1024,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// The case count after applying the `PROPTEST_CASES` cap.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }

    /// The shrink budget after applying any `PROPTEST_MAX_SHRINK_ITERS`
    /// override.
    pub fn effective_max_shrink_iters(&self) -> u32 {
        match std::env::var("PROPTEST_MAX_SHRINK_ITERS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(n) => n,
            None => self.max_shrink_iters,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (e.g. `prop_assume!` failed); try another.
    Reject(String),
    /// The property failed; the whole test fails.
    Fail(String),
}

/// The deterministic RNG driving value generation (SplitMix64).
///
/// Each test derives its stream from a hash of its full module path, so
/// runs are reproducible without coordination between tests. Set
/// `PROPTEST_RNG_SEED` to perturb every stream at once.
///
/// The RNG can *record* the words it emits and later *replay* an edited
/// copy of that recording: that is the substrate for internal
/// (Hypothesis-style) shrinking, where a failing case is minimised by
/// minimising the word stream that generated it and re-running the
/// strategies. When a replay buffer runs out mid-generation (an edited
/// word changed how many words a strategy consumes), the RNG falls back
/// to its normal stream so generation always completes.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
    replay: Vec<u64>,
    replay_pos: usize,
    recording: bool,
    recorded: Vec<u64>,
}

impl TestRng {
    /// Build the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(x) = extra.parse::<u64>() {
                h ^= x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        Self::from_state(h)
    }

    fn from_state(state: u64) -> Self {
        Self {
            state,
            replay: Vec::new(),
            replay_pos: 0,
            recording: false,
            recorded: Vec::new(),
        }
    }

    /// An RNG that first replays `words`, then continues from
    /// `fallback_state`. Recording is on so the words actually consumed
    /// can seed the next shrink round.
    pub fn replay_from(words: Vec<u64>, fallback_state: u64) -> Self {
        Self {
            replay: words,
            recording: true,
            ..Self::from_state(fallback_state)
        }
    }

    /// The current fallback-stream state (position-independent of any
    /// replay buffer).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Start recording the words emitted from here on, discarding any
    /// previous recording.
    pub fn begin_record(&mut self) {
        self.recording = true;
        self.recorded.clear();
    }

    /// Stop recording and take the recorded words.
    pub fn take_recorded(&mut self) -> Vec<u64> {
        self.recording = false;
        std::mem::take(&mut self.recorded)
    }

    /// Next raw 64-bit word: the replay buffer while it lasts, then
    /// SplitMix64.
    pub fn next_u64(&mut self) -> u64 {
        let w = if self.replay_pos < self.replay.len() {
            let w = self.replay[self.replay_pos];
            self.replay_pos += 1;
            w
        } else {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        if self.recording {
            self.recorded.push(w);
        }
        w
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible
        // for test generation purposes. Monotone in the raw word, which
        // is what lets word-stream shrinking minimise derived values.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The result of minimising a failing case.
#[derive(Debug)]
pub struct Shrunk {
    /// `Debug` rendering of the minimal failing inputs.
    pub described: String,
    /// The failure message the minimal case produced.
    pub why: String,
    /// How many strictly-smaller failing cases were accepted on the way.
    pub steps: usize,
}

/// Minimise a failing case by minimising the RNG word stream that
/// generated it (internal shrinking, as in Hypothesis).
///
/// `run` re-generates inputs from an RNG and re-executes the property,
/// returning the inputs' `Debug` form and the outcome. Each word of the
/// failing recording is driven toward zero — first a jump straight to
/// zero, then binary descent — keeping every candidate stream that
/// still fails. Because values derived from a word are (near-)monotone
/// in it, this converges to a minimal counterexample for ranges,
/// lengths and choices alike, and it shrinks *through* `prop_map` /
/// `prop_filter` / `prop_flat_map` because generation is simply re-run.
///
/// `budget` caps the number of extra property executions; only failing
/// tests ever pay it. A `Reject` outcome (filtered/assumed-away case)
/// just discards that candidate.
pub fn shrink_failure<F>(
    mut run: F,
    words: Vec<u64>,
    fallback_state: u64,
    original: (String, String),
    budget: u32,
) -> Shrunk
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut best = words;
    let (mut described, mut why) = original;
    let mut steps = 0usize;
    let mut left = budget;

    // One candidate execution; adopts the candidate only if the
    // property still fails AND the words actually consumed are strictly
    // shortlex-smaller (shorter, or same length and lexicographically
    // smaller) than the current best. The strict decrease both defines
    // "simpler" and guarantees termination: an edit that sends
    // generation past the replay buffer (e.g. a `prop_filter` retry)
    // falls back onto the original stream and re-finds the original
    // failing case — a longer consumption that must not count as
    // progress.
    let mut attempt = |trial: Vec<u64>,
                       best: &mut Vec<u64>,
                       described: &mut String,
                       why: &mut String,
                       left: &mut u32|
     -> bool {
        if *left == 0 {
            return false;
        }
        *left -= 1;
        let mut rng = TestRng::replay_from(trial, fallback_state);
        let (desc, outcome) = run(&mut rng);
        if let Err(TestCaseError::Fail(w)) = outcome {
            // Judge the words actually consumed, not the trial: an
            // edited word can change how many words generation reads.
            let consumed = rng.take_recorded();
            let simpler =
                consumed.len() < best.len() || (consumed.len() == best.len() && consumed < *best);
            if simpler {
                *best = consumed;
                *described = desc;
                *why = w;
                return true;
            }
        }
        false
    };

    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.len() && left > 0 {
            if best[i] == 0 {
                i += 1;
                continue;
            }
            // Jump straight to zero (the minimal value for every
            // strategy: range start, empty tail of a vec, first oneof
            // alternative).
            let mut trial = best.clone();
            trial[i] = 0;
            if attempt(trial, &mut best, &mut described, &mut why, &mut left) {
                steps += 1;
                improved = true;
                i += 1;
                continue;
            }
            // Binary descent toward the smallest still-failing word.
            let mut delta = best.get(i).copied().unwrap_or(0) / 2;
            while delta > 0 && left > 0 && i < best.len() {
                let mut trial = best.clone();
                trial[i] = best[i] - delta;
                if attempt(trial, &mut best, &mut described, &mut why, &mut left) {
                    steps += 1;
                    improved = true;
                    delta = delta.min(best.get(i).copied().unwrap_or(0));
                } else {
                    delta /= 2;
                }
            }
            i += 1;
        }
        if !improved || left == 0 {
            break;
        }
    }

    Shrunk {
        described,
        why,
        steps,
    }
}
