//! Integration tests for internal (word-stream) shrinking: the RNG
//! record/replay substrate and the `shrink_failure` engine, exercised
//! outside the `proptest!` macro.

use proptest::strategy::Strategy;
use proptest::test_runner::{shrink_failure, TestCaseError, TestRng};

#[test]
fn replay_buffer_takes_effect_then_falls_back() {
    let mut rng = TestRng::for_test("shrink::replay");
    rng.begin_record();
    let _a = rng.next_u64();
    let b = rng.next_u64();
    let words = rng.take_recorded();
    assert_eq!(words.len(), 2);

    let mut replayed = TestRng::replay_from(vec![0, words[1]], 12345);
    assert_eq!(replayed.next_u64(), 0);
    assert_eq!(replayed.next_u64(), b);
    assert_eq!(replayed.take_recorded(), vec![0, b]);
}

/// The engine must minimise through `prop_filter` + `prop_map`, and a
/// filter retry that overruns the replay buffer (falling back onto the
/// stream that regenerates the original case) must not be adopted as
/// progress.
#[test]
fn engine_shrinks_filtered_mapped_sum_to_the_boundary() {
    let strat = (0.0f64..10.0, 0.0f64..10.0)
        .prop_filter("nonzero", |(a, b)| a + b > 0.1)
        .prop_map(|(a, b)| a + b);
    let run = |rng: &mut TestRng| -> (String, Result<(), TestCaseError>) {
        let p = strat.new_value(rng);
        let desc = format!("({p:?},)");
        let out = if p < 3.0 {
            Ok(())
        } else {
            Err(TestCaseError::Fail("p >= 3".into()))
        };
        (desc, out)
    };

    let mut rng = TestRng::for_test("shrink::engine");
    loop {
        rng.begin_record();
        let state0 = rng.state();
        let (desc, out) = run(&mut rng);
        if let Err(TestCaseError::Fail(why)) = out {
            let words = rng.take_recorded();
            let shrunk = shrink_failure(run, words, state0, (desc, why), 1024);
            assert!(
                shrunk.described.starts_with("(3.0"),
                "expected the minimal failing sum, got {}",
                shrunk.described
            );
            assert!(shrunk.steps > 0);
            break;
        }
    }
}

/// A zero shrink budget (`max_shrink_iters: 0` / env override) must
/// report the original case untouched.
#[test]
fn zero_budget_disables_shrinking() {
    let run = |rng: &mut TestRng| -> (String, Result<(), TestCaseError>) {
        let x = rng.next_u64();
        (format!("({x},)"), Err(TestCaseError::Fail("always".into())))
    };
    let mut rng = TestRng::for_test("shrink::budget");
    rng.begin_record();
    let state0 = rng.state();
    let (desc, _) = run(&mut rng);
    let words = rng.take_recorded();
    let shrunk = shrink_failure(run, words, state0, (desc.clone(), "always".into()), 0);
    assert_eq!(shrunk.described, desc);
    assert_eq!(shrunk.steps, 0);
}
