//! The `Standard` distribution over primitive types, mirroring rand 0.8.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over the full domain
/// for integers and `bool`, uniform on `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform on [0, 1) — rand 0.8 semantics.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}
