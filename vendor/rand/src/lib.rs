//! Offline, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses: the `RngCore` / `SeedableRng` / `Rng` traits and the
//! `Standard` distribution for primitive types.
//!
//! Semantics follow rand 0.8 where it matters for reproducibility:
//! * `SeedableRng::seed_from_u64` expands the seed with the same PCG32
//!   construction rand uses, so seeded generators agree byte-for-byte
//!   with upstream for the same underlying core.
//! * `Standard` for `f64`/`f32` produces uniform values in `[0, 1)` from
//!   the high bits of the next word, exactly as rand 0.8 does.

#![forbid(unsafe_code)]

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// The core of every random number generator: a source of random words.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for every generator here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it to a full seed
    /// with the same PCG32 key-expansion rand 0.8 uses.
    fn seed_from_u64(state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let w = pcg32(&mut state);
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods layered on top of any `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
