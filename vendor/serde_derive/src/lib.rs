//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in, implemented with direct token-stream parsing (the
//! container has no syn/quote). Supports non-generic structs (named,
//! tuple, unit) and enums; enum variants serialize as their name.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Split the tokens of a brace/paren group at top-level commas, tracking
/// angle-bracket depth so `HashMap<K, V>` fields don't split early.
fn split_fields(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// First identifier of a field/variant chunk after skipping attributes
/// and visibility modifiers.
fn leading_ident(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip `#[...]`.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Skip `pub(crate)` and friends.
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => return None,
        }
    }
    None
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind: Option<&'static str> = None;
    // Find the `struct` / `enum` keyword, skipping attrs and visibility.
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            match id.to_string().as_str() {
                "struct" => {
                    kind = Some("struct");
                    i += 1;
                    break;
                }
                "enum" => {
                    kind = Some("enum");
                    i += 1;
                    break;
                }
                _ => {}
            }
        }
        i += 1;
    }
    let kind = kind.expect("serde_derive: expected `struct` or `enum`");
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported; write the impl by hand");
    }

    // Locate the body group (or `;` for unit structs).
    let mut body: Option<(Delimiter, Vec<TokenTree>)> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                body = Some((g.delimiter(), g.stream().into_iter().collect()));
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let shape = match (kind, body) {
        ("struct", None) => Shape::Unit,
        ("struct", Some((Delimiter::Parenthesis, toks))) => Shape::Tuple(split_fields(&toks).len()),
        ("struct", Some((Delimiter::Brace, toks))) => Shape::Named(
            split_fields(&toks)
                .iter()
                .filter_map(|c| leading_ident(c))
                .collect(),
        ),
        ("enum", Some((Delimiter::Brace, toks))) => Shape::Enum(
            split_fields(&toks)
                .iter()
                .filter_map(|c| leading_ident(c))
                .collect(),
        ),
        _ => panic!("serde_derive: unsupported item shape"),
    };
    Item { name, shape }
}

/// Derive `serde::Serialize` by generating a `to_value` that walks the
/// fields.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} {{ .. }} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated impl failed to parse")
}

/// Derive the (marker) `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive: generated impl failed to parse")
}
