//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree as JSON text.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the Value model is infallible; this exists for
/// signature compatibility).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json (vendored) error")
    }
}

impl std::error::Error for Error {}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number(f64v: f64, out: &mut String) {
    if f64v.is_finite() {
        if f64v == f64v.trunc() && f64v.abs() < 1e15 {
            out.push_str(&format!("{:.1}", f64v));
        } else {
            out.push_str(&format!("{}", f64v));
        }
    } else {
        out.push_str("null");
    }
}

fn render(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => number(*f, out),
        Value::Str(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(item, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serialize `value` as human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-2i64).unwrap(), "-2");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
    }

    #[test]
    fn pretty_object() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Bool(false)])),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&W(v)).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"b\": ["));
    }
}
