//! Offline stand-in for `criterion`, covering the API this workspace's
//! benches use: `Criterion::bench_function` / `benchmark_group`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a deliberately simple calibrated wall-clock loop (no
//! statistics, outlier rejection or plots); it exists so `cargo bench`
//! compiles and produces usable relative numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup cost relates to the routine (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            elapsed: Duration::ZERO,
            iters,
        }
    }

    /// Time `routine`, called `iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F, quick: bool) {
    // Calibrate: grow the iteration count until the measurement is long
    // enough to mean something, then report ns/iter.
    let mut iters: u64 = 1;
    let budget = if quick {
        Duration::from_millis(10)
    } else {
        Duration::from_millis(200)
    };
    loop {
        let mut b = Bencher::new(iters);
        f(&mut b);
        if b.elapsed >= budget || iters >= 1 << 24 {
            let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
            println!(
                "bench: {label:<50} {:>14.1} ns/iter ({} iters)",
                per_iter, iters
            );
            return;
        }
        // Aim to overshoot the budget slightly on the next attempt.
        let grow = (budget.as_nanos() as f64 / b.elapsed.as_nanos().max(1) as f64).ceil();
        iters = (iters as f64 * grow.clamp(2.0, 100.0)) as u64;
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` and harness flags arrive in argv;
        // honour a plain-string filter, ignore criterion's own flags.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Self {
            filter,
            quick: std::env::var("BENCH_QUICK").is_ok(),
        }
    }
}

impl Criterion {
    fn wants(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Run one named benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        if self.wants(&label) {
            run_one(&label, f, self.quick);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        if self.criterion.wants(&label) {
            run_one(&label, f, self.criterion.quick);
        }
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
