//! Offline stand-in for `rand_chacha`: deterministic ChaCha-based RNGs
//! implementing the vendored `rand` traits.
//!
//! The block function is the standard ChaCha quarter-round construction
//! (Bernstein), with a 64-bit block counter and a zero nonce, emitting
//! the 16 output words of each block in order. Streams are fully
//! deterministic in the seed, which is all the workspace relies on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32, out: &mut [u32; 16]) {
    // "expand 32-byte k"
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;

    let mut work = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut work, 0, 4, 8, 12);
        quarter_round(&mut work, 1, 5, 9, 13);
        quarter_round(&mut work, 2, 6, 10, 14);
        quarter_round(&mut work, 3, 7, 11, 15);
        quarter_round(&mut work, 0, 5, 10, 15);
        quarter_round(&mut work, 1, 6, 11, 12);
        quarter_round(&mut work, 2, 7, 8, 13);
        quarter_round(&mut work, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = work[i].wrapping_add(state[i]);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                chacha_block(&self.key, self.counter, $rounds, &mut self.buf);
                self.counter = self.counter.wrapping_add(1);
                self.idx = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
                Self {
                    key,
                    counter: 0,
                    buf: [0u32; 16],
                    idx: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: fast, high-quality, deterministic."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(
    ChaCha20Rng,
    20,
    "ChaCha with 20 rounds (the classic stream cipher core)."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut bytes = [0u8; 16];
        a.fill_bytes(&mut bytes);
        let w0 = b.next_u32().to_le_bytes();
        assert_eq!(&bytes[..4], &w0);
    }

    #[test]
    fn uniformish_f64() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
