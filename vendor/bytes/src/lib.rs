//! Offline stand-in for the `bytes` crate: `Bytes` / `BytesMut` backed
//! by `Vec<u8>`, plus the `Buf` / `BufMut` cursor traits for the
//! big-endian wire formats this workspace encodes.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source (big-endian multi-byte reads).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8;

    /// Read a big-endian `u16` and advance.
    fn get_u16(&mut self) -> u16;

    /// Read a big-endian `u32` and advance.
    fn get_u32(&mut self) -> u32;

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self[0], self[1]]);
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes([self[0], self[1], self[2], self[3]]);
        *self = &self[4..];
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write cursor over a growable byte sink (big-endian multi-byte
/// writes).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_cursor() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEADBEEF);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16(), 0x1234);
        assert_eq!(cur.get_u32(), 0xDEADBEEF);
        let mut two = [0u8; 2];
        cur.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(cur.remaining(), 0);
    }
}
