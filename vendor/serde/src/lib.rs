//! Offline stand-in for `serde`, sufficient for this workspace.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! single self-describing [`Value`] tree; `serde_json` renders that tree.
//! The companion `serde_derive` proc-macro generates real `Serialize`
//! impls for plain structs and enums, so `#[derive(Serialize)]` and
//! `serde_json::to_string_pretty` behave as downstream code expects.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (a small JSON document model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number (non-finite renders as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a serialized [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can (notionally) be deserialized. The vendored stand-in
/// never constructs values from input; the trait exists so that
/// `#[derive(Deserialize)]` and trait bounds compile.
pub trait Deserialize<'de>: Sized {}

// ------------------------------------------------------------ primitives

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}
