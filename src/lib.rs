//! # secureangle-suite — the facade crate
//!
//! Re-exports every crate of the SecureAngle reproduction so examples,
//! integration tests and downstream users can depend on one crate:
//!
//! ```
//! use secureangle_suite::prelude::*;
//! let office = Office::paper_figure4();
//! assert_eq!(office.clients.len(), 20);
//! ```
//!
//! See the workspace `README.md` for the project tour,
//! `docs/ARCHITECTURE.md` for the crate DAG and data flows, and
//! `docs/BENCHMARKS.md` for the measured numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sa_aoa as aoa;
pub use sa_array as array;
pub use sa_channel as channel;
pub use sa_deploy as deploy;
pub use sa_linalg as linalg;
pub use sa_mac as mac;
pub use sa_phy as phy;
pub use sa_sigproc as sigproc;
pub use sa_telemetry as telemetry;
pub use sa_testbed as testbed;
pub use secureangle as core;

/// The most commonly-used items across the workspace, in one import.
pub mod prelude {
    pub use sa_aoa::estimator::{estimate, AoaConfig, AoaEstimate};
    pub use sa_aoa::pseudospectrum::{angle_diff_deg, Pseudospectrum};
    pub use sa_array::geometry::Array;
    pub use sa_channel::geom::pt;
    pub use sa_channel::pattern::TxAntenna;
    pub use sa_channel::plan::FloorPlan;
    pub use sa_channel::trace::{trace_paths, TraceConfig};
    pub use sa_deploy::{
        ApSkew, DeployConfig, Deployment, DeploymentReport, LinkConfig, Transmission,
    };
    pub use sa_mac::{Frame, MacAddr};
    pub use sa_phy::Modulation;
    pub use sa_telemetry::{TelemetryConfig, TelemetrySnapshot};
    pub use sa_testbed::{ApArray, Office, Testbed};
    pub use secureangle::pipeline::{AccessPoint, ApConfig, FrameVerdict};
    pub use secureangle::signature::{AoaSignature, MatchConfig};
    pub use secureangle::spoof::SpoofVerdict;
}
