//! Fleet determinism property (root seam test): on randomized campus
//! scenarios, the fused windows and the (masked) deployment report must
//! be byte-identical across every decode-shard, fusion-shard, and
//! pipelining configuration. Sharding and streaming are performance
//! knobs — they change thread interleavings, never bytes.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_aoa::estimator::ScanBackend;
use sa_deploy::{DeployConfig, Deployment, Transmission};
use sa_testbed::Testbed;

const N_APS: usize = 3;

/// Scheduling-observability counters (queue depths, backpressure) are
/// interleaving-dependent and outside the determinism contract.
fn masked_report(r: &sa_deploy::DeploymentReport) -> String {
    let mut r = r.clone();
    r.metrics.max_fusion_queue_depth = 0;
    r.metrics.report_backpressure_events = 0;
    r.metrics.ingest_backpressure_events = 0;
    for ap in &mut r.per_ap {
        ap.backpressure_events = 0;
    }
    format!("{:?}", r)
}

/// One full deployment run over pre-generated traffic. The testbed is
/// rebuilt per run (`AccessPoint` is not `Clone`), which is exact: the
/// build is deterministic in `seed`, so every run sees identical APs.
fn run_config(
    n_clients: usize,
    seed: u64,
    windows: &[Vec<Transmission>],
    backend: ScanBackend,
    decode_shards: usize,
    fusion_shards: usize,
    windows_in_flight: usize,
) -> (String, String) {
    let tb = Testbed::campus_customized(n_clients, N_APS, seed, |cfg| {
        cfg.aoa.scan_backend = backend;
    });
    let aps: Vec<_> = tb.nodes.into_iter().map(|n| n.ap).collect();
    let cfg = DeployConfig {
        decode_shards,
        fusion_shards,
        windows_in_flight,
        ..DeployConfig::default()
    };
    let mut deployment = Deployment::new(aps, cfg);
    let fused = deployment.run_stream(windows.to_vec()).expect("stream");
    let (report, _) = deployment.finish();
    (format!("{:?}", fused), masked_report(&report))
}

proptest! {
    // Debug-mode DSP is slow; a few randomized campuses per run is
    // plenty — every case exercises three full deployments.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fused `DeploymentReport`s are byte-identical across decode-shard
    /// counts {1, 2, 4} × fusion-shard counts {1, 4, 16} ×
    /// `windows_in_flight` {1, 2, 4} (and whatever worker interleavings
    /// those induce) on randomized campus scenarios.
    #[test]
    fn fused_reports_are_byte_identical_across_shard_and_stream_configs(
        seed in 0u64..1_000,
        n_clients in 6usize..=10,
    ) {
        let tb = Testbed::campus_with(n_clients, N_APS, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf1ee7);
        let clients: Vec<usize> = (1..=n_clients).collect();
        let windows: Vec<Vec<Transmission>> = (0..2)
            .map(|w| {
                tb.window_traffic(&clients, w as u16, 0.0, &mut rng)
                    .into_iter()
                    .map(Transmission::new)
                    .collect()
            })
            .collect();

        let (base_fused, base_report) =
            run_config(n_clients, seed, &windows, ScanBackend::Exhaustive, 1, 1, 1);
        for (decode, fusion, depth) in [(2usize, 4usize, 2usize), (4, 16, 4)] {
            let (fused, report) = run_config(
                n_clients, seed, &windows, ScanBackend::Exhaustive, decode, fusion, depth,
            );
            prop_assert_eq!(
                &base_fused, &fused,
                "fused windows diverged at decode={} fusion={} depth={}",
                decode, fusion, depth
            );
            prop_assert_eq!(
                &base_report, &report,
                "report diverged at decode={} fusion={} depth={}",
                decode, fusion, depth
            );
        }

        // The scan-backend knob joins the matrix: each backend must be
        // deterministic under sharding too (the backends may disagree
        // *with each other* on bearings — that equivalence is
        // `proptest_backends`' contract, not this one's — but a given
        // backend must never let thread interleaving reach its bytes).
        for backend in [ScanBackend::coarse_to_fine(), ScanBackend::RootMusic] {
            let (b_fused, b_report) =
                run_config(n_clients, seed, &windows, backend, 1, 1, 1);
            let (fused, report) =
                run_config(n_clients, seed, &windows, backend, 2, 4, 2);
            prop_assert_eq!(
                &b_fused, &fused,
                "fused windows diverged under sharding for {:?}",
                backend
            );
            prop_assert_eq!(
                &b_report, &report,
                "report diverged under sharding for {:?}",
                backend
            );
        }
    }
}
