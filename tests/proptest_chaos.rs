//! Chaos determinism properties (root seam test): seeded fault plans
//! must degrade the fleet *byte-deterministically* — the same plan
//! produces the same fused windows and (masked) report on every rerun
//! and at every decode/fusion shard count — must never deadlock or
//! panic, and a disabled fault layer must be byte-transparent.
//!
//! Pipelining depth (`windows_in_flight`) joins the knob matrix for
//! every fault family that preserves membership (corruption, byzantine
//! bias, burst loss, stalls below the watchdog, drift onset, and the
//! quarantine machinery — quarantine decisions are made at collect
//! time, strictly in window order). Faults that *end* membership
//! (crashes, watchdog reaps) are pinned per-depth instead: the set of
//! windows already submitted when an AP dies is part of the depth's
//! semantics — a depth-1 operator stops sending a dead AP traffic one
//! window sooner than a depth-4 one — so cross-depth byte-equality is
//! not a meaningful contract there. Reruns and shard counts still are.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_deploy::faults::{FaultEvent, FaultPlan};
use sa_deploy::{DeployConfig, Deployment, DeploymentReport, HealthConfig, Transmission};
use sa_testbed::Testbed;

const N_APS: usize = 4;

/// Scheduling-observability counters (queue depths, backpressure) are
/// interleaving-dependent and outside the determinism contract.
fn masked_report(r: &DeploymentReport) -> String {
    let mut r = r.clone();
    r.metrics.max_fusion_queue_depth = 0;
    r.metrics.report_backpressure_events = 0;
    r.metrics.ingest_backpressure_events = 0;
    for ap in &mut r.per_ap {
        ap.backpressure_events = 0;
    }
    format!("{:?}", r)
}

/// Pre-generate full-fleet traffic: `windows[w]` holds every
/// transmission of window `w` with one capture per AP id. Runs filter
/// the captures down to the APs still live at submit time.
fn gen_windows(
    tb: &Testbed,
    n_clients: usize,
    n_windows: u64,
    seed: u64,
) -> Vec<Vec<Transmission>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc4a05);
    let clients: Vec<usize> = (1..=n_clients).collect();
    (0..n_windows)
        .map(|w| {
            tb.window_traffic(&clients, w as u16, 0.0, &mut rng)
                .into_iter()
                .map(Transmission::new)
                .collect()
        })
        .collect()
}

/// One full chaos deployment over pre-generated traffic, submitting
/// each window's captures for the APs live at submit time (an operator
/// stops sending traffic to a dead AP — live-membership filtering is
/// itself deterministic because membership ends at collect time). The
/// testbed is rebuilt per run, which is exact: the build is
/// deterministic in `seed`.
#[allow(clippy::too_many_arguments)]
fn run_chaos(
    n_clients: usize,
    seed: u64,
    windows: &[Vec<Transmission>],
    faults: Option<FaultPlan>,
    health: HealthConfig,
    decode_shards: usize,
    fusion_shards: usize,
    windows_in_flight: usize,
) -> (String, String, DeploymentReport) {
    let tb = Testbed::campus_with(n_clients, N_APS, seed);
    let aps: Vec<_> = tb.nodes.into_iter().map(|n| n.ap).collect();
    let cfg = DeployConfig {
        decode_shards,
        fusion_shards,
        windows_in_flight,
        faults,
        health,
        ..DeployConfig::default()
    };
    let depth = windows_in_flight.max(1);
    let mut deployment = Deployment::new(aps, cfg);
    let mut fused = Vec::new();
    for w in windows {
        while deployment.pending_windows() >= depth {
            fused.push(deployment.collect_window().expect("collect"));
        }
        let live = deployment.live_ap_ids();
        let txs: Vec<Transmission> = w
            .iter()
            .map(|t| Transmission {
                per_ap: live.iter().map(|&k| t.per_ap[k].clone()).collect(),
            })
            .collect();
        deployment.submit_window(txs).expect("submit");
    }
    while deployment.pending_windows() > 0 {
        fused.push(deployment.collect_window().expect("collect"));
    }
    let (report, _) = deployment.finish();
    (format!("{:?}", fused), masked_report(&report), report)
}

proptest! {
    // Debug-mode DSP is slow; every case runs several full chaos
    // deployments, so a couple of randomized plans per run is plenty.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The canonical scripted chaos schedule (byzantine bias, wire
    /// corruption, burst loss, sub-watchdog stalls, drift onset — plus
    /// the health layer's down-weighting and quarantine responses) is
    /// byte-deterministic: identical on rerun and across the full
    /// decode-shard × fusion-shard × pipelining-depth matrix, and the
    /// run never deadlocks or panics whatever the seed.
    #[test]
    fn scripted_chaos_degrades_byte_deterministically_across_knobs(
        seed in 0u64..1_000,
        n_clients in 4usize..=6,
    ) {
        let tb = Testbed::campus_with(n_clients, N_APS, seed);
        let windows = gen_windows(&tb, n_clients, 8, seed);
        let plan = FaultPlan::scripted(N_APS, seed);
        let run = |d, f, w| {
            run_chaos(
                n_clients, seed, &windows,
                Some(plan.clone()), HealthConfig::enabled(),
                d, f, w,
            )
        };
        let (base_fused, base_report, _) = run(1, 1, 1);
        let (rerun_fused, rerun_report, _) = run(1, 1, 1);
        prop_assert_eq!(&base_fused, &rerun_fused, "chaos run diverged on rerun");
        prop_assert_eq!(&base_report, &rerun_report, "chaos report diverged on rerun");
        for (decode, fusion, depth) in [(2usize, 4usize, 2usize), (4, 2, 4)] {
            let (fused, report, _) = run(decode, fusion, depth);
            prop_assert_eq!(
                &base_fused, &fused,
                "fused windows diverged at decode={} fusion={} depth={}",
                decode, fusion, depth
            );
            prop_assert_eq!(
                &base_report, &report,
                "report diverged at decode={} fusion={} depth={}",
                decode, fusion, depth
            );
        }
    }

    /// Zero-cost-off: a deployment with `faults: None` is byte-identical
    /// to one carrying an empty [`FaultPlan`], and the (disabled-by-
    /// default) health layer is byte-transparent on a clean run — same
    /// fused windows, same report, whether it scores or not.
    #[test]
    fn disabled_faults_and_idle_health_are_byte_transparent(
        seed in 0u64..1_000,
        n_clients in 4usize..=6,
    ) {
        let tb = Testbed::campus_with(n_clients, N_APS, seed);
        let windows = gen_windows(&tb, n_clients, 3, seed);
        let (no_plan_fused, no_plan_report, _) = run_chaos(
            n_clients, seed, &windows, None, HealthConfig::default(), 1, 1, 1,
        );
        let (empty_fused, empty_report, _) = run_chaos(
            n_clients, seed, &windows,
            Some(FaultPlan::default()), HealthConfig::default(),
            1, 1, 1,
        );
        prop_assert_eq!(&no_plan_fused, &empty_fused, "empty plan changed fused bytes");
        prop_assert_eq!(&no_plan_report, &empty_report, "empty plan changed the report");
        let (health_fused, health_report, report) = run_chaos(
            n_clients, seed, &windows, None, HealthConfig::enabled(), 1, 1, 1,
        );
        prop_assert_eq!(
            &no_plan_fused, &health_fused,
            "idle health layer changed fused bytes on a clean run"
        );
        prop_assert_eq!(
            &no_plan_report, &health_report,
            "idle health layer changed the report on a clean run"
        );
        prop_assert_eq!(report.metrics.aps_quarantined, 0);
    }

    /// Mid-run worker crashes degrade deterministically: membership ends
    /// at the collect of the crash window (never at the racy moment the
    /// dead thread is *noticed*), so a crashing fleet is byte-identical
    /// on rerun and across shard counts, even pipelined.
    #[test]
    fn crashes_end_membership_byte_deterministically(
        seed in 0u64..1_000,
        n_clients in 4usize..=6,
    ) {
        let tb = Testbed::campus_with(n_clients, N_APS, seed);
        let windows = gen_windows(&tb, n_clients, 4, seed);
        let plan = FaultPlan {
            seed,
            events: vec![FaultEvent::Crash {
                ap: (seed % N_APS as u64) as usize,
                window: 1,
            }],
        };
        let run = |d, f| {
            run_chaos(
                n_clients, seed, &windows,
                Some(plan.clone()), HealthConfig::enabled(),
                d, f, 2,
            )
        };
        let (base_fused, base_report, report) = run(1, 1);
        prop_assert_eq!(report.metrics.worker_losses, 1, "crash must cost one worker");
        let (rerun_fused, rerun_report, _) = run(1, 1);
        prop_assert_eq!(&base_fused, &rerun_fused, "crash run diverged on rerun");
        prop_assert_eq!(&base_report, &rerun_report, "crash report diverged on rerun");
        let (fused, sharded_report, _) = run(2, 4);
        prop_assert_eq!(&base_fused, &fused, "crash run diverged under sharding");
        prop_assert_eq!(&base_report, &sharded_report, "crash report diverged under sharding");
    }
}
