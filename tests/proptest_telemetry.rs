//! Telemetry out-of-band property (root seam test): on randomized
//! campus scenarios, the fused windows and the (masked) deployment
//! report must be byte-identical with telemetry fully enabled vs
//! disabled, at every decode-shard / fusion-shard / pipelining
//! configuration. Observability is a read-only tap — timers, counters
//! and the flight recorder never feed back into the pipeline.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_aoa::estimator::ScanBackend;
use sa_deploy::{DeployConfig, Deployment, TelemetryConfig, Transmission};
use sa_testbed::Testbed;

const N_APS: usize = 3;

/// Scheduling-observability counters (queue depths, backpressure) are
/// interleaving-dependent, and `report.telemetry` itself obviously
/// differs (empty when disabled) — everything else must match byte for
/// byte.
fn masked_report(r: &sa_deploy::DeploymentReport) -> String {
    let mut r = r.clone();
    r.metrics.max_fusion_queue_depth = 0;
    r.metrics.report_backpressure_events = 0;
    r.metrics.ingest_backpressure_events = 0;
    for ap in &mut r.per_ap {
        ap.backpressure_events = 0;
    }
    r.telemetry = Default::default();
    format!("{:?}", r)
}

/// One full deployment run over pre-generated traffic. The testbed
/// build is deterministic in `seed`, so every run sees identical APs.
fn run_config(
    n_clients: usize,
    seed: u64,
    windows: &[Vec<Transmission>],
    backend: ScanBackend,
    (decode_shards, fusion_shards, windows_in_flight): (usize, usize, usize),
    telemetry: TelemetryConfig,
) -> (String, String) {
    let tb = Testbed::campus_customized(n_clients, N_APS, seed, |cfg| {
        cfg.aoa.scan_backend = backend;
    });
    let aps: Vec<_> = tb.nodes.into_iter().map(|n| n.ap).collect();
    let cfg = DeployConfig {
        decode_shards,
        fusion_shards,
        windows_in_flight,
        telemetry,
        ..DeployConfig::default()
    };
    let mut deployment = Deployment::new(aps, cfg);
    let fused = deployment.run_stream(windows.to_vec()).expect("stream");
    let (report, _) = deployment.finish();
    (format!("{:?}", fused), masked_report(&report))
}

proptest! {
    // Debug-mode DSP is slow; a few randomized campuses per run is
    // plenty — every case exercises six full deployments.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fused windows and masked reports are byte-identical with
    /// telemetry enabled (`TelemetryConfig::full()`) vs disabled, across
    /// decode shards {1, 4} × fusion shards {1, 16} ×
    /// `windows_in_flight` {1, 4} on randomized campus scenarios.
    #[test]
    fn telemetry_never_changes_fused_bytes(
        seed in 0u64..1_000,
        n_clients in 6usize..=10,
    ) {
        let tb = Testbed::campus_with(n_clients, N_APS, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7e1e);
        let clients: Vec<usize> = (1..=n_clients).collect();
        let windows: Vec<Vec<Transmission>> = (0..2)
            .map(|w| {
                tb.window_traffic(&clients, w as u16, 0.0, &mut rng)
                    .into_iter()
                    .map(Transmission::new)
                    .collect()
            })
            .collect();

        for (decode, fusion, depth) in [(1usize, 1usize, 1usize), (4, 16, 4)] {
            let (off_fused, off_report) = run_config(
                n_clients, seed, &windows, ScanBackend::Exhaustive, (decode, fusion, depth),
                TelemetryConfig::disabled(),
            );
            let (on_fused, on_report) = run_config(
                n_clients, seed, &windows, ScanBackend::Exhaustive, (decode, fusion, depth),
                TelemetryConfig::full(),
            );
            prop_assert_eq!(
                &off_fused, &on_fused,
                "fused windows diverged with telemetry at decode={} fusion={} depth={}",
                decode, fusion, depth
            );
            prop_assert_eq!(
                &off_report, &on_report,
                "masked report diverged with telemetry at decode={} fusion={} depth={}",
                decode, fusion, depth
            );
        }

        // Scan-backend knob: telemetry must stay a read-only tap no
        // matter which spectrum-search backend the APs run.
        for backend in [ScanBackend::coarse_to_fine(), ScanBackend::RootMusic] {
            let (off_fused, off_report) = run_config(
                n_clients, seed, &windows, backend, (4, 16, 4),
                TelemetryConfig::disabled(),
            );
            let (on_fused, on_report) = run_config(
                n_clients, seed, &windows, backend, (4, 16, 4),
                TelemetryConfig::full(),
            );
            prop_assert_eq!(
                &off_fused, &on_fused,
                "fused windows diverged with telemetry for {:?}",
                backend
            );
            prop_assert_eq!(
                &off_report, &on_report,
                "masked report diverged with telemetry for {:?}",
                backend
            );
        }
    }
}
