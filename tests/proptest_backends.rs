//! Cross-backend equivalence properties (root seam test): on randomized
//! array/source/SNR scenarios, every scan backend must agree with the
//! exhaustive-grid oracle — coarse-to-fine on the peak *set* (to within
//! its refinement tolerance plus the grid quantisation), root-MUSIC on
//! the bearings — and every backend must be bit-deterministic (same
//! covariance in, byte-identical estimate out).

use proptest::prelude::*;
use sa_aoa::estimator::{AoaConfig, AoaEngine, ScanBackend};
use sa_aoa::pseudospectrum::angle_diff_deg;
use sa_aoa::SourceCount;
use sa_array::geometry::{broadside_deg_to_azimuth, Array};
use sa_linalg::{CMat, C64};

/// Deterministic multi-source snapshots: independent QPSK-like symbol
/// streams per source (incoherent — the clean MUSIC regime), plus
/// deterministic per-element "noise" from a counter-based stream, so
/// identical scenarios reproduce bit-identical covariances.
fn snapshots(array: &Array, sources: &[(f64, f64)], n: usize, noise_var: f64, seed: u64) -> CMat {
    let steers: Vec<Vec<C64>> = sources.iter().map(|&(az, _)| array.steering(az)).collect();
    let stream = |src: u64, t: usize| -> C64 {
        let k = (t as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add((seed ^ src).wrapping_mul(1442695040888963407))
            >> 61;
        C64::cis(std::f64::consts::FRAC_PI_4 + std::f64::consts::FRAC_PI_2 * (k % 4) as f64)
    };
    let sigma = noise_var.sqrt();
    CMat::from_fn(array.len(), n, |m, t| {
        let mut acc: C64 = sources
            .iter()
            .enumerate()
            .map(|(p, &(_, gain))| steers[p][m] * stream(p as u64 + 1, t) * gain)
            .sum();
        // Counter-based pseudo-noise: uniform phase, fixed magnitude —
        // enough to set the eigenvalue floor, fully deterministic.
        let h = (m as u64 + 17)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((t as u64).wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add(seed.wrapping_mul(0x94d049bb133111eb));
        let phase = (h >> 11) as f64 / (1u64 << 53) as f64 * std::f64::consts::TAU;
        acc += C64::from_polar(sigma, phase);
        acc
    })
}

fn estimate_with(
    backend: ScanBackend,
    array: &Array,
    r: &CMat,
    n: usize,
    n_src: usize,
) -> sa_aoa::AoaEstimate {
    let cfg = AoaConfig {
        scan_backend: backend,
        source_count: SourceCount::Fixed(n_src),
        ..AoaConfig::default()
    };
    AoaEngine::new(array, &cfg).estimate_cov(r, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ULA sweep: M ∈ 2..=16 antennas, 1–3 well-separated sources,
    /// SNR ∈ {0, 5, 10, 20} dB.
    #[test]
    fn backends_agree_with_exhaustive_oracle_on_ulas(
        m in 2usize..=16,
        n_src_raw in 1usize..=3,
        snr_idx in 0usize..4,
        seed in 0u64..1_000,
        theta0 in -55.0f64..=-30.0,
    ) {
        let snr_db = [0.0f64, 5.0, 10.0, 20.0][snr_idx];
        let noise_var = 10f64.powf(-snr_db / 10.0);
        let array = Array::paper_linear(m);
        // Resolvable source count shrinks with the smoothed aperture;
        // keep ≥ 30° separation and distinct powers so ranking is
        // unambiguous.
        let n_src = n_src_raw.min((m / 4).max(1));
        let thetas: Vec<f64> = (0..n_src).map(|i| theta0 + 40.0 * i as f64).collect();
        let gains = [1.0f64, 0.55, 0.3];
        let sources: Vec<(f64, f64)> = thetas
            .iter()
            .zip(gains)
            .map(|(&t, g)| (broadside_deg_to_azimuth(t), g))
            .collect();
        let x = snapshots(&array, &sources, 128, noise_var, seed);
        let r = sa_sigproc::sample_covariance(&x);

        let oracle = estimate_with(ScanBackend::Exhaustive, &array, &r, 128, n_src);
        let c2f = estimate_with(ScanBackend::coarse_to_fine(), &array, &r, 128, n_src);
        let root = estimate_with(ScanBackend::RootMusic, &array, &r, 128, n_src);

        // Shared pipeline stages are identical regardless of backend.
        prop_assert_eq!(c2f.n_sources, oracle.n_sources);
        prop_assert_eq!(root.n_sources, oracle.n_sources);
        prop_assert_eq!(&c2f.eigenvalues, &oracle.eigenvalues);
        prop_assert_eq!(&root.eigenvalues, &oracle.eigenvalues);

        // Coarse-to-fine geometry is only contractual above the noise
        // floor: at 0 dB, noise can raise a spurious lobe right next to
        // a true peak, suppress the adjacent coarse local-max test, and
        // legitimately hide a sub-stride peak from any decimated scan.
        // From 5 dB up the off-peak spectrum is flat, so every
        // prominent oracle peak either survives (within the 1° grid
        // cell — the oracle is quantised, the refinement continuous) or
        // was absorbed into a *stronger* peak inside the fine-rescan
        // window (a shoulder merging into a dominant lobe). Isolated
        // peaks must never vanish. The contract covers ranking-relevant
        // peaks — within 10 dB of the strongest oracle peak; sidelobes
        // further down can hide between coarse samples (same sub-stride
        // mechanism as the 0 dB exemption, just driven by the lobe
        // floor rather than the noise floor) and never influence the
        // bearing or spoof verdicts.
        if snr_db >= 5.0 {
            // Absorption reach scales with the coarse stride: the
            // dominant lobe's window spans ±(decimate−1) grid cells
            // around a coarse sample that is itself up to a stride from
            // the sidelobe, so ~2×decimate degrees on the 1° grid.
            let absorb_deg = match ScanBackend::coarse_to_fine() {
                ScanBackend::CoarseToFine { decimate, .. } => 2.0 * decimate as f64,
                _ => unreachable!(),
            };
            let oracle_peaks = oracle.spectrum.find_peaks(3.0, 8);
            let strongest = oracle_peaks
                .iter()
                .map(|p| p.value)
                .fold(f64::NEG_INFINITY, f64::max);
            for p in oracle_peaks.iter().filter(|p| p.value >= strongest / 10.0) {
                let matched = c2f
                    .ranked_peaks
                    .iter()
                    .any(|q| (q.angle_deg - p.angle_deg).abs() <= 1.0);
                let absorbed = c2f.ranked_peaks.iter().any(|q| {
                    q.music_value >= p.value && (q.angle_deg - p.angle_deg).abs() <= absorb_deg
                });
                prop_assert!(
                    matched || absorbed,
                    "oracle peak {}° (value {}) missing from coarse-to-fine {:?}",
                    p.angle_deg, p.value, c2f.ranked_peaks
                );
            }
            prop_assert!(
                (c2f.bearing_deg() - oracle.bearing_deg()).abs() <= 1.0,
                "c2f bearing {} vs oracle {}",
                c2f.bearing_deg(), oracle.bearing_deg()
            );
        }

        // Root-MUSIC: grid-free bearings. At comfortable SNR pin it to
        // the *truth* tighter than the oracle's own quantisation.
        if snr_db >= 10.0 {
            prop_assert!(
                (root.bearing_deg() - oracle.bearing_deg()).abs() <= 1.0,
                "root bearing {} vs oracle {}",
                root.bearing_deg(), oracle.bearing_deg()
            );
            if n_src == 1 {
                // Truth bound scaled by what the aperture can deliver:
                // 10× the stochastic-CRLB sigma for this (M, SNR, N) —
                // the engine spatially smooths ULAs, so the effective
                // aperture is smaller than M and the full-aperture
                // bound is deliberately optimistic — floored at 0.5°.
                // The ≤1° oracle pin above stays the tight check; this
                // one certifies the grid-free estimate is unbiased.
                let snr_lin = 10f64.powf(snr_db / 10.0);
                let tol = (10.0 * sa_aoa::crlb_sigma_deg(snr_lin, 128, m)).max(0.5);
                prop_assert!(
                    (root.bearing_deg() - thetas[0]).abs() <= tol,
                    "root bearing {} vs truth {} (m={}, tol={})",
                    root.bearing_deg(), thetas[0], m, tol
                );
            } else {
                // Per-source visibility: the scenario SNR is the
                // strongest source's; the deliberately weaker sources
                // (gain 0.55 / 0.3 → −5.2 / −10.5 dB relative) are only
                // contractually recoverable once their *own* SNR
                // clears 10 dB.
                for (i, &t) in thetas.iter().enumerate() {
                    let src_snr_db = snr_db + 20.0 * gains[i].log10();
                    if src_snr_db < 10.0 {
                        continue;
                    }
                    prop_assert!(
                        root.ranked_peaks
                            .iter()
                            .any(|q| (q.angle_deg - t).abs() <= 1.5),
                        "source {}° ({} dB) missing from root-MUSIC {:?}",
                        t, src_snr_db, root.ranked_peaks
                    );
                }
            }
        }
    }

    /// Production octagon path (Davies virtual ULA): backends agree on
    /// the bearing; every backend is bit-deterministic across fresh
    /// engines.
    #[test]
    fn backends_deterministic_and_consistent_on_octagon(
        az_deg in 0.0f64..360.0,
        snr_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let snr_db = [0.0f64, 5.0, 10.0, 20.0][snr_idx];
        let noise_var = 10f64.powf(-snr_db / 10.0);
        let array = Array::paper_octagon();
        let sources = [(az_deg.to_radians(), 1.0)];
        let x = snapshots(&array, &sources, 128, noise_var, seed);
        let r = sa_sigproc::sample_covariance(&x);

        let oracle = estimate_with(ScanBackend::Exhaustive, &array, &r, 128, 1);
        for backend in [
            ScanBackend::Exhaustive,
            ScanBackend::coarse_to_fine(),
            ScanBackend::RootMusic,
        ] {
            let a = estimate_with(backend, &array, &r, 128, 1);
            let b = estimate_with(backend, &array, &r, 128, 1);
            prop_assert_eq!(
                format!("{:?}", a),
                format!("{:?}", b),
                "backend {:?} not bit-deterministic",
                backend
            );
            if snr_db >= 5.0 {
                prop_assert!(
                    angle_diff_deg(a.bearing_deg(), oracle.bearing_deg(), true) <= 1.5,
                    "backend {:?}: bearing {} vs oracle {}",
                    backend, a.bearing_deg(), oracle.bearing_deg()
                );
            }
        }
    }
}
