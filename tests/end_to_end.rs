//! Cross-crate integration tests: the full stack from client waveform to
//! application verdict, exercised through the public API of the facade
//! crate exactly as a downstream user would.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_testbed::{ApArray, Testbed};
use secureangle_suite::prelude::*;

/// Smoke guard for the whole e2e path: the full detection → calibration
/// → MUSIC → signature → enforcement `Pipeline` must run on the
/// `Office::paper_figure4()` scenario, deterministically in the seeded
/// `ChaCha8Rng`, and produce a meaningful admit decision. This test is
/// the canary that keeps the e2e suite from silently regressing to
/// `#[ignore]` or to a stubbed scenario: it asserts the scenario *is*
/// the paper's 20-client office and that train → receive round-trips.
#[test]
fn smoke_full_pipeline_on_paper_office_is_deterministic() {
    let run = || -> (f64, bool) {
        let mut tb = Testbed::single_ap(ApArray::Circular, 7);
        // The testbed must be the paper's Figure-4 office, not a stub:
        // same 20 clients at the same positions, not merely 20 of them.
        let paper = secureangle_suite::testbed::Office::paper_figure4();
        assert_eq!(tb.office.clients.len(), 20);
        for (got, want) in tb.office.clients.iter().zip(&paper.clients) {
            assert_eq!(got.id, want.id);
            assert_eq!(got.position, want.position);
        }

        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let client = 5usize;
        let mac = Testbed::client_mac(client);

        // Train on one packet, then push a second through the full
        // receive path (observe + signature match + verdict).
        let buf = tb.client_capture(0, client, 0, 0.0, &mut rng);
        let obs = tb.nodes[0].ap.observe(&buf).expect("training observe");
        tb.nodes[0].ap.train_client(mac, &obs);
        let buf = tb.client_capture(0, client, 1, 15.0, &mut rng);
        let (obs, verdict) = tb.nodes[0].ap.receive(&buf).expect("receive");
        let frame = obs.frame.expect("frame decodes");
        assert_eq!(frame.src, mac);
        (obs.bearing_deg, verdict.admitted())
    };

    let (bearing_a, admitted_a) = run();
    let (bearing_b, admitted_b) = run();
    assert!(admitted_a, "trained client must be admitted");
    assert_eq!(
        bearing_a, bearing_b,
        "pipeline must be deterministic in the seed"
    );
    assert_eq!(admitted_a, admitted_b);
}

#[test]
fn every_testbed_client_is_heard_and_decoded() {
    let tb = Testbed::single_ap(ApArray::Circular, 101);
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    for spec in tb.office.clients.clone() {
        let buf = tb.client_capture(0, spec.id, 1, 0.0, &mut rng);
        let obs = tb.nodes[0]
            .ap
            .observe(&buf)
            .unwrap_or_else(|e| panic!("client {}: {}", spec.id, e));
        let frame = obs
            .frame
            .unwrap_or_else(|| panic!("client {}: frame did not decode", spec.id));
        assert_eq!(frame.src, Testbed::client_mac(spec.id));
    }
}

#[test]
fn bearings_are_accurate_for_unblocked_clients() {
    let tb = Testbed::single_ap(ApArray::Circular, 103);
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    // Clients with clear or near-clear geometry.
    for id in [1usize, 3, 5, 7, 8, 9, 16, 19, 20] {
        let truth = tb.office.ground_truth_azimuth_deg(id);
        let buf = tb.client_capture(0, id, 1, 0.0, &mut rng);
        let obs = tb.nodes[0].ap.observe(&buf).expect("observe");
        assert!(
            angle_diff_deg(obs.bearing_deg, truth, true) < 6.0,
            "client {}: bearing {:.1} truth {:.1}",
            id,
            obs.bearing_deg,
            truth
        );
    }
}

#[test]
fn full_spoofing_scenario_across_all_gear() {
    use secureangle::attacker::{Attacker, AttackerGear};
    let mut tb = Testbed::single_ap(ApArray::Circular, 105);
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    let victim = 5usize;
    let victim_mac = Testbed::client_mac(victim);

    let buf = tb.client_capture(0, victim, 0, 0.0, &mut rng);
    let obs = tb.nodes[0].ap.observe(&buf).expect("training");
    tb.nodes[0].ap.train_client(victim_mac, &obs);

    // Victim still passes.
    let buf = tb.client_capture(0, victim, 1, 30.0, &mut rng);
    let (_, verdict) = tb.nodes[0].ap.receive(&buf).expect("victim");
    assert!(verdict.admitted(), "victim dropped: {:?}", verdict);

    // All three attacker classes from another position are flagged.
    let apos = tb.office.client(16).position;
    let ap_pos = tb.nodes[0].ap.config().position;
    let frame = tb.client_frame(victim, 99);
    for gear in [
        AttackerGear::Omni,
        AttackerGear::Directional {
            gain_dbi: 14.0,
            order: 4.0,
        },
        AttackerGear::Array { n_elements: 8 },
    ] {
        let attacker = Attacker::new(apos, gear, victim_mac);
        let antenna = attacker.antenna_toward(ap_pos);
        let buf = tb.capture(0, apos, &antenna, 1.0, &frame, 0.0, &mut rng);
        let (_, verdict) = tb.nodes[0].ap.receive(&buf).expect("attack frame");
        assert!(
            !verdict.admitted(),
            "{:?} attacker admitted: {:?}",
            gear,
            verdict
        );
    }
}

#[test]
fn fence_admits_insiders_rejects_outsiders() {
    use secureangle::fence::{FenceConfig, VirtualFence};
    use secureangle::localize::BearingObservation;
    let tb = Testbed::multi_ap(107);
    let mut rng = ChaCha8Rng::seed_from_u64(108);
    let fence = VirtualFence::new(tb.office.fence_polygon(), FenceConfig::default());

    let bearings_for = |pos, power: f64, rng: &mut ChaCha8Rng| -> Vec<BearingObservation> {
        let frame = tb.client_frame(1, 1);
        (0..tb.nodes.len())
            .filter_map(|node| {
                let buf = tb.capture(node, pos, &TxAntenna::Omni, power, &frame, 0.0, rng);
                tb.nodes[node].ap.observe(&buf).ok().and_then(|o| {
                    o.global_azimuth.map(|az| BearingObservation {
                        ap_position: tb.nodes[node].ap.config().position,
                        azimuth: az,
                    })
                })
            })
            .collect()
    };

    // An in-room client is admitted.
    let inside = tb.office.client(5).position;
    let d = fence.decide(&bearings_for(inside, 1.0, &mut rng));
    assert!(d.admit(), "inside client rejected: {:?}", d);

    // A parking-lot transmitter at +20 dB is not.
    let outside = sa_channel::geom::pt(36.0, 2.0);
    let d = fence.decide(&bearings_for(outside, 100.0, &mut rng));
    assert!(!d.admit(), "outside transmitter admitted: {:?}", d);
}

#[test]
fn linear_and_circular_arrays_agree_on_folded_bearing() {
    let circ = Testbed::single_ap(ApArray::Circular, 109);
    let lin = Testbed::single_ap(ApArray::Linear(8), 109);
    let mut rng = ChaCha8Rng::seed_from_u64(110);
    let id = 5usize;

    let bc = circ.client_capture(0, id, 1, 0.0, &mut rng);
    let oc = circ.nodes[0].ap.observe(&bc).expect("circular");
    let bl = lin.client_capture(0, id, 1, 0.0, &mut rng);
    let ol = lin.nodes[0].ap.observe(&bl).expect("linear");

    // Fold the circular estimate into the ULA convention and compare.
    let folded = sa_testbed::experiments::fig7::fold_to_broadside_deg(oc.bearing_deg);
    assert!(
        (folded - ol.bearing_deg).abs() < 6.0,
        "circular {:.1} (folded {:.1}) vs linear {:.1}",
        oc.bearing_deg,
        folded,
        ol.bearing_deg
    );
}

#[test]
fn observation_is_deterministic_in_the_seed() {
    let tb1 = Testbed::single_ap(ApArray::Circular, 111);
    let tb2 = Testbed::single_ap(ApArray::Circular, 111);
    let mut r1 = ChaCha8Rng::seed_from_u64(112);
    let mut r2 = ChaCha8Rng::seed_from_u64(112);
    let b1 = tb1.client_capture(0, 7, 1, 0.0, &mut r1);
    let b2 = tb2.client_capture(0, 7, 1, 0.0, &mut r2);
    let o1 = tb1.nodes[0].ap.observe(&b1).expect("o1");
    let o2 = tb2.nodes[0].ap.observe(&b2).expect("o2");
    assert_eq!(o1.bearing_deg, o2.bearing_deg);
    assert_eq!(o1.rss_db, o2.rss_db);
    assert_eq!(
        o1.signature.spectrum().values,
        o2.signature.spectrum().values
    );
}

#[test]
fn facade_prelude_compiles_and_reaches_every_layer() {
    // Touch one item from each re-exported crate through the facade.
    let _ = secureangle_suite::linalg::c64(1.0, 2.0);
    let _ = secureangle_suite::sigproc::SchmidlCox::new(32);
    let _ = secureangle_suite::phy::Modulation::Qpsk;
    let _ = secureangle_suite::mac::MacAddr::BROADCAST;
    let _ = secureangle_suite::array::Array::paper_octagon();
    let _ = secureangle_suite::channel::FloorPlan::new();
    let _ = secureangle_suite::aoa::SourceCount::Mdl;
    let _ = secureangle_suite::core::MatchConfig::default();
    let office = secureangle_suite::testbed::Office::paper_figure4();
    assert_eq!(office.clients.len(), 20);
}
