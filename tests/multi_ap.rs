//! Root integration test for the `sa-deploy` subsystem: a seeded
//! 4-AP / 20-client office deployment must be (a) byte-deterministic,
//! (b) accurate at paper scale, and (c) able to catch a spoofer by
//! cross-AP consensus that the best single AP's signature check misses.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_channel::geom::pt;
use sa_channel::pattern::TxAntenna;
use sa_deploy::{ApSkew, DeployConfig, Deployment, FusedWindow, LinkConfig, Transmission};
use sa_testbed::Testbed;
use secureangle::AccessPoint;

const N_APS: usize = 4;
const SEED: u64 = 4_2010;
const VICTIM: usize = 5;
/// Attacker distance beyond the victim along the AP0→victim ray,
/// meters: far enough that consensus sees the displacement, close
/// enough (same room, same direct-path angle) that AP0's signature
/// check still matches.
const ATTACK_RANGE_M: f64 = 3.5;

struct Run {
    windows: Vec<FusedWindow>,
    report: sa_deploy::DeploymentReport,
    aps: Vec<AccessPoint>,
    /// (ap_id, spoof score) for the attack frame, per AP that observed
    /// it, measured against the trained profile *before* the deployment
    /// enforces the attack window.
    attack_scores: Vec<(usize, f64)>,
    office: sa_testbed::Office,
}

/// One full deployment run, deterministic in the constants above:
/// window 0 trains (signatures + consensus references), window 1 is
/// normal traffic, window 2 is normal traffic minus the victim plus an
/// attacker injecting with the victim's MAC.
fn run_deployment() -> Run {
    run_deployment_with(DeployConfig::default(), None)
}

/// Per-AP clock skews for the degraded runs: ±2-window offsets (the
/// acceptance bar), distinct seq epochs, no drift. AP 0 is the
/// reference clock.
fn test_skews() -> Vec<ApSkew> {
    [(0i64, 0u64), (2, 17), (-2, 5), (1, 911)]
        .into_iter()
        .map(|(window_offset, seq_offset)| ApSkew {
            window_offset,
            seq_offset,
            drift_ppw: 0.0,
        })
        .collect()
}

fn run_deployment_with(cfg: DeployConfig, skews: Option<Vec<ApSkew>>) -> Run {
    let tb = Testbed::deployment(N_APS, SEED);
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x5eed);
    let all: Vec<usize> = (1..=20).collect();
    let others: Vec<usize> = all.iter().copied().filter(|&c| c != VICTIM).collect();

    let w0 = tb.window_traffic(&all, 0, 0.0, &mut rng);
    let w1 = tb.window_traffic(&all, 1, 0.0, &mut rng);
    let mut w2 = tb.window_traffic(&others, 2, 0.0, &mut rng);

    // The attacker: on the AP0→victim ray, beyond the victim, transmit
    // power scaled so AP0 hears victim-like power.
    let vpos = tb.office.client(VICTIM).position;
    let ap0 = tb.nodes[0].ap.config().position;
    let az = ap0.azimuth_to(vpos);
    let apos = pt(
        vpos.x + ATTACK_RANGE_M * az.cos(),
        vpos.y + ATTACK_RANGE_M * az.sin(),
    );
    let tx_power = tb.rx_power_from(0, vpos) / tb.rx_power_from(0, apos);
    let frame = tb.client_frame(VICTIM, 99);
    let attack = tb.transmission(apos, &TxAntenna::Omni, tx_power, &frame, 0.0, &mut rng);
    w2.push(attack.clone());

    // Reference per-AP spoof scores for the attack frame: train each AP
    // from its window-0 observation of the victim, then compare without
    // the deployment in the loop (pure single-AP view).
    let mut tb = tb;
    let mac = Testbed::client_mac(VICTIM);
    let attack_scores: Vec<(usize, f64)> = (0..N_APS)
        .filter_map(|k| {
            let obs = tb.nodes[k].ap.observe(&w0[VICTIM - 1][k]).ok()?;
            tb.nodes[k].ap.train_client(mac, &obs);
            let att = tb.nodes[k].ap.observe(&attack[k]).ok()?;
            let profile = tb.nodes[k].ap.spoof.profile(&mac)?;
            let m = profile.compare(&att.signature, &tb.nodes[k].ap.spoof.config().match_config);
            Some((k, m.score))
        })
        .collect();

    // Fresh APs for the deployment itself (the reference scoring above
    // mutated trackers).
    let tb2 = Testbed::deployment(N_APS, SEED);
    let office = tb2.office.clone();
    let aps: Vec<AccessPoint> = tb2.nodes.into_iter().map(|n| n.ap).collect();
    let mut deployment = match skews {
        Some(skews) => Deployment::with_skews(aps, cfg, skews),
        None => Deployment::new(aps, cfg),
    };
    let mut windows = Vec::new();
    for w in [w0, w1, w2] {
        let txs: Vec<Transmission> = w.into_iter().map(Transmission::new).collect();
        windows.push(deployment.run_window(txs).expect("window"));
    }
    let (report, aps) = deployment.finish();
    Run {
        windows,
        report,
        aps,
        attack_scores,
        office,
    }
}

#[test]
fn seeded_four_ap_office_run_meets_the_paper_bar() {
    let a = run_deployment();

    // ---- (a) byte-determinism across two full runs. -------------------
    let b = run_deployment();
    assert_eq!(
        format!("{:?}", a.windows),
        format!("{:?}", b.windows),
        "fused windows must be byte-identical across seeded runs"
    );
    // The three scheduling-observability counters (queue high-water
    // mark, backpressure event counts) measure *thread interleaving*
    // and are explicitly outside the determinism contract; everything
    // else in the report must be byte-identical.
    let masked = |r: &sa_deploy::DeploymentReport| {
        let mut r = r.clone();
        r.metrics.max_fusion_queue_depth = 0;
        r.metrics.report_backpressure_events = 0;
        r.metrics.ingest_backpressure_events = 0;
        for ap in &mut r.per_ap {
            ap.backpressure_events = 0;
        }
        format!("{:?}", r)
    };
    assert_eq!(
        masked(&a.report),
        masked(&b.report),
        "deployment results must be byte-identical across seeded runs"
    );

    // ---- (b) localization accuracy at paper scale. --------------------
    // Window 1 (post-training steady state): ≥ 90% of the 20 clients
    // fix within 3 m of ground truth — the scale the single-AP bearing
    // baseline implies (a 2–5° bearing error at the office's 5–15 m
    // ranges is a 0.5–1.5 m cross-range miss per AP; 3 m gives the
    // through-wall outliers headroom without admitting nonsense).
    let w1 = &a.windows[1];
    assert_eq!(w1.clients.len(), 20);
    let mut errors: Vec<(usize, f64)> = Vec::new();
    for c in &w1.clients {
        let id = a
            .office
            .clients
            .iter()
            .find(|spec| Testbed::client_mac(spec.id) == c.mac)
            .expect("client for mac")
            .id;
        let fix = c.fix.unwrap_or_else(|| panic!("client {} has no fix", id));
        errors.push((id, fix.position.dist(a.office.client(id).position)));
    }
    let within: Vec<&(usize, f64)> = errors.iter().filter(|(_, e)| *e <= 3.0).collect();
    assert!(
        within.len() * 10 >= errors.len() * 9,
        "only {}/{} clients within 3 m: {:?}",
        within.len(),
        errors.len(),
        errors
    );
    let mut sorted: Vec<f64> = errors.iter().map(|(_, e)| *e).collect();
    sorted.sort_by(f64::total_cmp);
    assert!(
        sorted[sorted.len() / 2] < 1.5,
        "median fused error {:.2} m is worse than the paper's meter scale",
        sorted[sorted.len() / 2]
    );

    // ---- (c) consensus catches what the best single AP misses. --------
    let mac = Testbed::client_mac(VICTIM);
    // The best single AP (highest signature score for the attack frame)
    // scores above the detector threshold: on its own it would ADMIT
    // the attacker.
    let threshold = a.aps[0].spoof.config().threshold;
    let &(best_ap, best_score) = a
        .attack_scores
        .iter()
        .max_by(|x, y| x.1.total_cmp(&y.1))
        .expect("attack observed");
    assert!(
        best_score >= threshold,
        "best single AP {} scores {:.2} < threshold {:.2}: the attacker never fools anyone",
        best_ap,
        best_score,
        threshold
    );
    // And the deployment's own enforcement at that AP did admit it.
    let attack_fix = a.windows[2]
        .clients
        .iter()
        .find(|c| c.mac == mac)
        .expect("attack window fuses the victim MAC");
    assert!(
        attack_fix.admitted_aps >= 1,
        "no AP admitted the attack frame: {:?}",
        attack_fix
    );
    assert!(
        attack_fix.flagged_aps >= 1,
        "no AP flagged the attack frame either: {:?}",
        attack_fix
    );
    // But cross-AP consensus flags it: the fused fix sits at the
    // attacker's position, meters from the trained reference.
    assert!(
        attack_fix.consensus.is_spoof(),
        "consensus missed the attacker: {:?}",
        attack_fix.consensus
    );
    let fix = attack_fix.fix.expect("attack fix");
    let reference = a
        .report
        .clients
        .iter()
        .find(|c| c.mac == mac)
        .and_then(|c| c.reference)
        .expect("victim reference");
    assert!(
        reference.dist(fix.position) > 2.0,
        "fused attack fix {:?} is not displaced from the reference {:?}",
        fix.position,
        reference
    );
    assert!(a.report.metrics.consensus_flags >= 1);

    // The fused fix actually localizes the *attacker*, not the victim.
    let vpos = a.office.client(VICTIM).position;
    let ap0 = a.aps[0].config().position;
    let az = ap0.azimuth_to(vpos);
    let apos = pt(
        vpos.x + ATTACK_RANGE_M * az.cos(),
        vpos.y + ATTACK_RANGE_M * az.sin(),
    );
    assert!(
        fix.position.dist(apos) < fix.position.dist(vpos),
        "attack fix {:?} is closer to the victim than the attacker",
        fix.position
    );

    // ---- Deployment bookkeeping sanity. -------------------------------
    assert_eq!(a.report.n_aps, N_APS);
    assert_eq!(a.report.metrics.windows, 3);
    assert_eq!(a.report.metrics.transmissions, 60);
    assert_eq!(a.report.metrics.decode_failures, 0);
    assert_eq!(a.report.metrics.packets_dispatched, 60 * N_APS as u64);
    for (k, stats) in a.report.per_ap.iter().enumerate() {
        assert_eq!(stats.windows, 3, "AP {} missed a window", k);
        assert_eq!(stats.packets, 60, "AP {} missed packets", k);
        assert_eq!(
            stats.trained, 20,
            "AP {} auto-trained {} profiles",
            k, stats.trained
        );
    }
}

/// Enforcement attribution for the attack window: the deployment's
/// per-AP verdicts line up with the single-AP picture — the fooled AP
/// admits with a `Match`, the rest drop with `SpoofSuspected`.
#[test]
fn attack_frame_verdicts_split_across_aps() {
    let run = run_deployment();
    let mac = Testbed::client_mac(VICTIM);
    let attack_fix = run.windows[2]
        .clients
        .iter()
        .find(|c| c.mac == mac)
        .expect("attack fused");
    assert_eq!(
        attack_fix.admitted_aps + attack_fix.flagged_aps,
        N_APS,
        "every AP rules on the attack frame: {:?}",
        attack_fix
    );
    // The split must be real: some fooled, some not (otherwise the
    // scenario degenerates into something a single AP handles alone).
    assert!(attack_fix.admitted_aps >= 1 && attack_fix.flagged_aps >= 2);
    // Window 1 (all legitimate) has no consensus flags at all.
    for c in &run.windows[1].clients {
        assert!(
            !c.consensus.is_spoof(),
            "false consensus flag on legitimate client {:?}",
            c
        );
    }
}

/// Masked report view for determinism comparisons: the scheduling
/// observability counters (queue high-water mark, backpressure) vary
/// with thread interleaving and are outside the contract.
fn masked_report(r: &sa_deploy::DeploymentReport) -> String {
    let mut r = r.clone();
    r.metrics.max_fusion_queue_depth = 0;
    r.metrics.report_backpressure_events = 0;
    r.metrics.ingest_backpressure_events = 0;
    for ap in &mut r.per_ap {
        ap.backpressure_events = 0;
    }
    format!("{:?}", r)
}

/// Clock skew alone is *transparent*: with every AP offset by up to ±2
/// windows (within the default tolerance) and a reliable link, the
/// aligner remaps labels exactly and the fused output is byte-identical
/// to the synchronized run.
#[test]
fn skew_within_tolerance_is_byte_transparent() {
    let clean = run_deployment();
    let skewed = run_deployment_with(DeployConfig::default(), Some(test_skews()));
    assert_eq!(
        format!("{:?}", clean.windows),
        format!("{:?}", skewed.windows),
        "skew within tolerance must not change fused output"
    );
    assert_eq!(masked_report(&clean.report), masked_report(&skewed.report));
    assert_eq!(skewed.report.metrics.skew_rejections, 0);
}

/// The acceptance bar for deployment realism: 4 APs, 10% report loss
/// (no retries — every drop is a real loss), ±2-window clock skew.
/// Seeded runs stay byte-deterministic, ≥17/20 clients still localize
/// within 3 m, and the cross-AP consensus still catches the on-ray
/// spoofer the best single AP admits.
#[test]
fn degraded_deployment_still_meets_the_bar() {
    // retry_limit 0 makes every 10% draw a *real* loss (retransmits
    // would recover essentially all of them and test nothing). With
    // link seed 16 the draw costs AP 0 its entire steady-window report
    // — the worst single loss that still leaves sound 3-AP geometry
    // (dropping AP 1 or 2 instead starves the far office corner below
    // the bar, which is a floor-plan property, not a fusion bug).
    let cfg = DeployConfig {
        link: LinkConfig {
            loss_rate: 0.10,
            retry_limit: 0,
            seed: 16,
        },
        max_skew_windows: 2,
        ..DeployConfig::default()
    };
    let a = run_deployment_with(cfg.clone(), Some(test_skews()));

    // ---- byte-determinism under loss + skew. --------------------------
    let b = run_deployment_with(cfg, Some(test_skews()));
    assert_eq!(
        format!("{:?}", a.windows),
        format!("{:?}", b.windows),
        "degraded fused windows must be byte-identical across seeded runs"
    );
    assert_eq!(masked_report(&a.report), masked_report(&b.report));

    // The loss model actually bit: this is a degraded run, not a lucky
    // clean one.
    assert!(
        a.report.metrics.reports_lost > 0,
        "10% loss over 12 reports drew no losses: {:?}",
        a.report.metrics
    );
    assert!(a.report.metrics.degraded_windows > 0);
    assert_eq!(
        a.report.metrics.skew_rejections, 0,
        "±2 is within tolerance"
    );

    // ---- accuracy: ≥17/20 clients within 3 m in the steady window. ----
    let w1 = &a.windows[1];
    assert_eq!(w1.clients.len(), 20);
    let mut within = 0usize;
    for c in &w1.clients {
        let spec = a
            .office
            .clients
            .iter()
            .find(|spec| Testbed::client_mac(spec.id) == c.mac)
            .expect("client for mac");
        if let Some(fix) = c.fix {
            if fix.position.dist(a.office.client(spec.id).position) <= 3.0 {
                within += 1;
            }
        }
    }
    assert!(
        within >= 17,
        "only {}/20 clients within 3 m under 10% loss + skew",
        within
    );

    // ---- the consensus catch still fires. -----------------------------
    let mac = Testbed::client_mac(VICTIM);
    let attack_fix = a.windows[2]
        .clients
        .iter()
        .find(|c| c.mac == mac)
        .expect("attack window fuses the victim MAC");
    assert!(
        attack_fix.consensus.is_spoof(),
        "consensus missed the attacker under degradation: {:?}",
        attack_fix
    );
    assert!(a.report.metrics.consensus_flags >= 1);
}
