//! Property-based tests over the cross-crate invariants: whatever the
//! geometry, seed or parameters, these must hold. (Per-module property
//! tests live in their crates; these target the seams between crates.)

use proptest::prelude::*;
use sa_channel::geom::pt;
use sa_channel::plan::{FloorPlan, CONCRETE, DRYWALL};
use sa_channel::trace::{trace_paths, PathKind, TraceConfig};
use secureangle_suite::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Steering vectors are unit-modulus per element for any azimuth and
    /// both geometries.
    #[test]
    fn steering_unit_modulus(az in -10.0f64..10.0, n in 2usize..12) {
        for array in [Array::paper_octagon(), Array::paper_linear(n)] {
            for z in array.steering(az) {
                prop_assert!((z.abs() - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Ray tracing always returns a direct path; delays and lengths are
    /// consistent; the direct path is the shortest.
    #[test]
    fn trace_invariants(
        tx_x in -20.0f64..20.0, tx_y in -20.0f64..20.0,
        rx_x in -20.0f64..20.0, rx_y in -20.0f64..20.0,
        wall_y in -15.0f64..15.0,
    ) {
        let tx = pt(tx_x, tx_y);
        let rx = pt(rx_x, rx_y);
        prop_assume!(tx.dist(rx) > 0.5);
        let mut plan = FloorPlan::new();
        plan.add_wall(
            sa_channel::geom::seg(pt(-25.0, wall_y), pt(25.0, wall_y)),
            CONCRETE,
        );
        let paths = trace_paths(&plan, tx, rx, &TraceConfig::default());
        prop_assert!(!paths.is_empty());
        let direct: Vec<_> = paths.iter().filter(|p| p.kind == PathKind::Direct).collect();
        prop_assert_eq!(direct.len(), 1);
        for p in &paths {
            prop_assert!(p.gain.is_finite());
            prop_assert!((p.delay_s * 299_792_458.0 - p.length).abs() < 1e-6);
            prop_assert!(p.length + 1e-9 >= direct[0].length);
        }
    }

    /// Through-wall loss is monotone: adding a wall never increases the
    /// direct path's gain.
    #[test]
    fn walls_only_attenuate(x in 2.0f64..15.0) {
        let tx = pt(x, 0.0);
        let rx = pt(-1.0, 0.0);
        let free = trace_paths(&FloorPlan::new(), tx, rx, &TraceConfig::default());
        let mut plan = FloorPlan::new();
        plan.add_wall(sa_channel::geom::seg(pt(0.5, -30.0), pt(0.5, 30.0)), DRYWALL);
        let walled = trace_paths(&plan, tx, rx, &TraceConfig::default());
        let g_free = free.iter().find(|p| p.kind == PathKind::Direct).unwrap().gain.abs();
        let g_wall = walled.iter().find(|p| p.kind == PathKind::Direct).unwrap().gain.abs();
        prop_assert!(g_wall <= g_free + 1e-12);
    }

    /// Localization from exact bearings recovers any target position
    /// with non-degenerate AP geometry.
    #[test]
    fn localize_recovers_targets(tx in -20.0f64..50.0, ty in -20.0f64..40.0) {
        use secureangle::localize::{localize, BearingObservation};
        let target = pt(tx, ty);
        let aps = [pt(0.0, 0.0), pt(30.0, 0.0), pt(15.0, 25.0)];
        prop_assume!(aps.iter().all(|&a| a.dist(target) > 0.5));
        let bearings: Vec<_> = aps
            .iter()
            .map(|&p| BearingObservation { ap_position: p, azimuth: p.azimuth_to(target) })
            .collect();
        let fix = localize(&bearings).unwrap();
        prop_assert!(fix.position.dist(target) < 1e-6, "err {}", fix.position.dist(target));
        prop_assert_eq!(fix.behind_count, 0);
    }

    /// A signature always matches itself perfectly, and the match score
    /// is symmetric within tolerance, for random spectra.
    #[test]
    fn signature_metric_properties(seed in 0u64..1000) {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let make = |rng: &mut rand_chacha::ChaCha8Rng| {
            let angles: Vec<f64> = (0..360).map(|i| i as f64).collect();
            let c1 = rng.gen::<f64>() * 360.0;
            let c2 = rng.gen::<f64>() * 360.0;
            let values: Vec<f64> = angles
                .iter()
                .map(|&a| {
                    let d1 = angle_diff_deg(a, c1, true);
                    let d2 = angle_diff_deg(a, c2, true);
                    (-d1 * d1 / 50.0).exp() + 0.5 * (-d2 * d2 / 50.0).exp() + 1e-4
                })
                .collect();
            AoaSignature::from_spectrum(&Pseudospectrum::new(angles, values, true))
        };
        let a = make(&mut rng);
        let b = make(&mut rng);
        let cfg = MatchConfig::default();
        let self_match = a.compare(&a, &cfg);
        prop_assert!((self_match.score - 1.0).abs() < 1e-6);
        let ab = a.compare(&b, &cfg).score;
        let ba = b.compare(&a, &cfg).score;
        prop_assert!((ab - ba).abs() < 1e-9, "asymmetry {} vs {}", ab, ba);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// OFDM loopback survives random payloads, offsets and CFO.
    #[test]
    fn ofdm_loopback_random(
        len in 0usize..300,
        offset in 0usize..200,
        cfo in -0.03f64..0.03,
        seed in 0u64..500,
    ) {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let tx = secureangle_suite::phy::Transmitter::new(Modulation::Qpsk);
        let rx = secureangle_suite::phy::Receiver::new(Modulation::Qpsk);
        let wave = tx.encode(&payload);
        let mut buf = vec![sa_linalg::complex::ZERO; offset + wave.len() + 120];
        buf[offset..offset + wave.len()].copy_from_slice(&wave);
        sa_sigproc::iq::apply_cfo(&mut buf, cfo);
        let pkt = rx.decode(&buf).expect("decode");
        prop_assert_eq!(pkt.payload, payload);
    }

    /// MAC frames roundtrip for arbitrary contents and reject any
    /// single-byte corruption.
    #[test]
    fn mac_frame_roundtrip_random(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        seq in any::<u16>(),
        flip in 0usize..100,
        bit in 0u8..8,
    ) {
        let f = Frame::data(
            MacAddr::local_from_index(3),
            MacAddr::BROADCAST,
            MacAddr::local_from_index(0),
            seq,
            &payload,
        );
        let wire = f.encode();
        prop_assert_eq!(Frame::decode(&wire).unwrap(), f);
        let mut corrupted = wire.to_vec();
        let idx = flip % corrupted.len();
        corrupted[idx] ^= 1 << bit;
        prop_assert!(Frame::decode(&corrupted).is_err());
    }

    /// The MUSIC pipeline finds a single free-space path at any azimuth
    /// within grid resolution (circular array, full 360°).
    #[test]
    fn music_recovers_any_azimuth(az_deg in 0.0f64..360.0) {
        use sa_linalg::CMat;
        let array = Array::paper_octagon();
        let steer = array.steering(az_deg.to_radians());
        let x = CMat::from_fn(array.len(), 128, |m, t| {
            steer[m] * sa_linalg::C64::cis(1.3 * t as f64)
        });
        let est = estimate(&x, &array, &AoaConfig::default());
        prop_assert!(
            angle_diff_deg(est.bearing_deg(), az_deg, true) <= 2.0,
            "az {:.1} -> {:.1}",
            az_deg,
            est.bearing_deg()
        );
    }
}
