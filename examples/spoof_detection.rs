//! Address-spoofing detection, end to end (paper §2.3.2).
//!
//! A legitimate client authenticates and its AoA signature is trained.
//! It keeps sending traffic (admitted). Then an attacker with a 14 dBi
//! directional antenna — TJ-Maxx style — stands elsewhere, spoofs the
//! victim's MAC *and* power-matches the victim's RSS. The MAC-layer ACL
//! admits every spoofed frame; the RSS check admits them too; the AoA
//! signature flags them.
//!
//! ```text
//! cargo run --release --example spoof_detection [-- --seed 7]
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_testbed::{ApArray, Testbed};
use secureangle::attacker::{Attacker, AttackerGear};
use secureangle::rss::{RssDetector, RssPrint};

fn main() {
    let seed: u64 = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(2010);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let mut tb = Testbed::single_ap(ApArray::Circular, seed);
    let victim = 5usize;
    let victim_mac = Testbed::client_mac(victim);
    let attacker_pos_client = 16usize; // attacker stands at client 16's spot

    // --- Train on the victim's authentication frame. -------------------
    let buf = tb.client_capture(0, victim, 0, 0.0, &mut rng);
    let obs = tb.nodes[0].ap.observe(&buf).expect("training frame");
    let victim_rss = obs.rss_db;
    tb.nodes[0].ap.train_client(victim_mac, &obs);
    let mut rss_det = RssDetector::new(4.0, 0.2);
    rss_det.train(victim_mac, RssPrint::single(victim_rss));
    println!(
        "trained client {} ({}) at bearing {:.1} deg, RSS {:.1} dB\n",
        victim, victim_mac, obs.bearing_deg, victim_rss
    );

    // --- Victim sends 5 legitimate frames, ingested as one batch. -------
    // `receive_batch` stages every capture through a single PacketBatch:
    // the AoA engine (manifold + steering table + eigensolver workspace)
    // is built once and shared across all five packets.
    println!("victim traffic (5-packet batch):");
    let bufs: Vec<_> = (1..=5u16)
        .map(|seq| tb.client_capture(0, victim, seq, seq as f64 * 10.0, &mut rng))
        .collect();
    for (i, result) in tb.nodes[0].ap.receive_batch(&bufs).into_iter().enumerate() {
        let (obs, verdict) = result.expect("victim frame");
        let rss_v = rss_det.check(victim_mac, &RssPrint::single(obs.rss_db));
        println!(
            "  seq {:2}: bearing {:6.1} deg | AoA: {:<28} | RSS: {:?}",
            i + 1,
            obs.bearing_deg,
            format!("{:?}", verdict),
            rss_v
        );
        assert!(verdict.admitted(), "legitimate frame was dropped!");
    }

    // --- Attacker injects with the victim's MAC. -------------------------
    let attacker_pos = tb.office.client(attacker_pos_client).position;
    let mut attacker = Attacker::new(
        attacker_pos,
        AttackerGear::Directional {
            gain_dbi: 14.0,
            order: 4.0,
        },
        victim_mac,
    );
    // Power-match: probe what the AP hears from each position.
    let victim_pow = tb.rx_power_from(0, tb.office.client(victim).position);
    let own_pow = tb.rx_power_from(0, attacker_pos);
    let ap_pos = tb.nodes[0].ap.config().position;
    let antenna = attacker.antenna_toward(ap_pos);
    let boresight = antenna.power_gain(attacker_pos.azimuth_to(ap_pos));
    attacker.match_rss(victim_pow, own_pow * boresight);
    println!(
        "\nattacker at client {}'s position, 14 dBi beam aimed at the AP, tx power x{:.2}:",
        attacker_pos_client, attacker.tx_power
    );

    let frame = tb.client_frame(victim, 100); // spoofed src == victim MAC
    let inj_bufs: Vec<_> = (1..=5)
        .map(|seq| {
            tb.capture(
                0,
                attacker_pos,
                &antenna,
                attacker.tx_power,
                &frame,
                seq as f64,
                &mut rng,
            )
        })
        .collect();
    let mut flagged = 0;
    for (i, result) in tb.nodes[0]
        .ap
        .receive_batch(&inj_bufs)
        .into_iter()
        .enumerate()
    {
        let (obs, verdict) = result.expect("attack frame");
        let rss_v = rss_det.check(victim_mac, &RssPrint::single(obs.rss_db));
        let aoa_flag = !verdict.admitted();
        if aoa_flag {
            flagged += 1;
        }
        println!(
            "  inj {:2}: bearing {:6.1} deg | AoA: {:<28} | RSS: {:?}",
            i + 1,
            obs.bearing_deg,
            format!("{:?}", verdict),
            rss_v
        );
    }
    println!(
        "\nSecureAngle flagged {}/5 injected frames; the ACL alone would have admitted all of them.",
        flagged
    );
    let store = tb.nodes[0].ap.spoof.store();
    println!(
        "signature store: {} trained client(s) over {} shards, {} flags on {} (shard {})",
        store.len(),
        store.shard_count(),
        store.flag_count(&victim_mac),
        victim_mac,
        store.shard_of(&victim_mac),
    );
    assert!(flagged >= 4, "detector should flag the attacker");
}
