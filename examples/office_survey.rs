//! Office survey: the paper's Figure-4 testbed end to end.
//!
//! Recreates the Fig-5 measurement campaign: every one of the 20 Soekris
//! clients sends packets to the circular-array AP, and the survey prints
//! ground truth vs estimated bearing with confidence intervals —
//! including the paper's trouble spots (the pillar-blocked clients 11
//! and 12, and far-away client 6).
//!
//! ```text
//! cargo run --release --example office_survey [-- --seed 7 --packets 10]
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_testbed::experiments::fig5;
use sa_testbed::{ApArray, Testbed};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn main() {
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2010);
    let packets: usize = arg("--packets").and_then(|s| s.parse().ok()).unwrap_or(10);

    println!(
        "Surveying the Figure-4 office: 20 clients x {} packets (seed {})\n",
        packets, seed
    );
    let result = fig5::run(seed, packets);
    print!("{}", fig5::render(&result));

    // Sketch the floor plan with client positions, for orientation.
    println!("\nfloor plan (AP = 'A', clients = hex ids, pillar = '#'):");
    let office = sa_testbed::Office::paper_figure4();
    let (w, h) = (60usize, 24usize);
    let mut grid = vec![vec![' '; w]; h];
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let x = c as f64 / (w - 1) as f64 * 30.0;
            let y = (h - 1 - r) as f64 / (h - 1) as f64 * 16.0;
            if !(0.3..=29.7).contains(&x) || !(0.3..=15.7).contains(&y) {
                *cell = '.';
            }
            if (12.81..=13.71).contains(&x) && (9.49..=10.39).contains(&y) {
                *cell = '#';
            }
        }
    }
    let place = |grid: &mut Vec<Vec<char>>, x: f64, y: f64, ch: char| {
        let c = ((x / 30.0) * (w - 1) as f64).round() as usize;
        let r = h - 1 - ((y / 16.0) * (h - 1) as f64).round() as usize;
        grid[r.min(h - 1)][c.min(w - 1)] = ch;
    };
    for cl in &office.clients {
        let ch = std::char::from_digit(cl.id as u32 % 36, 36).unwrap_or('?');
        place(&mut grid, cl.position.x, cl.position.y, ch);
    }
    place(&mut grid, office.ap_position.x, office.ap_position.y, 'A');
    for row in grid {
        println!("  {}", row.into_iter().collect::<String>());
    }
    println!("  (ids in base-36: clients 10..20 print as a..k)");

    // --- Batched ingest: all 20 clients through one PacketBatch. --------
    // Production traffic arrives many-packets-at-a-time; the batched path
    // builds the AoA engine (manifold, steering table, eigen workspace)
    // once and shares it across the whole batch, then trains the sharded
    // signature store from the resulting observations.
    println!("\nbatched ingest: one frame from each of the 20 clients, one PacketBatch:");
    let mut tb = Testbed::single_ap(ApArray::Circular, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xba7c4);
    let bufs: Vec<_> = (1..=20)
        .map(|c| tb.client_capture(0, c, 1, 0.0, &mut rng))
        .collect();
    let observations = tb.nodes[0].ap.observe_batch(&bufs);
    for (i, result) in observations.iter().enumerate() {
        let client = i + 1;
        let mac = Testbed::client_mac(client);
        match result {
            Ok(obs) => {
                tb.nodes[0].ap.train_client(mac, obs);
                let truth = tb.nodes[0]
                    .ap
                    .config()
                    .position
                    .azimuth_to(tb.office.client(client).position)
                    .to_degrees()
                    .rem_euclid(360.0);
                println!(
                    "  client {:2} ({}): bearing {:6.1} deg (truth {:6.1})",
                    client, mac, obs.bearing_deg, truth
                );
            }
            Err(e) => println!("  client {:2} ({}): no observation ({})", client, mac, e),
        }
    }
    let store = tb.nodes[0].ap.spoof.store();
    println!(
        "\nsharded signature store: {} clients over {} shards; occupancy {:?}",
        store.len(),
        store.shard_count(),
        store.shard_occupancy()
    );
}
