//! Office survey: the paper's Figure-4 testbed end to end.
//!
//! Recreates the Fig-5 measurement campaign: every one of the 20 Soekris
//! clients sends packets to the circular-array AP, and the survey prints
//! ground truth vs estimated bearing with confidence intervals —
//! including the paper's trouble spots (the pillar-blocked clients 11
//! and 12, and far-away client 6).
//!
//! ```text
//! cargo run --release --example office_survey [-- --seed 7 --packets 10]
//! ```

use sa_testbed::experiments::fig5;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn main() {
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2010);
    let packets: usize = arg("--packets").and_then(|s| s.parse().ok()).unwrap_or(10);

    println!(
        "Surveying the Figure-4 office: 20 clients x {} packets (seed {})\n",
        packets, seed
    );
    let result = fig5::run(seed, packets);
    print!("{}", fig5::render(&result));

    // Sketch the floor plan with client positions, for orientation.
    println!("\nfloor plan (AP = 'A', clients = hex ids, pillar = '#'):");
    let office = sa_testbed::Office::paper_figure4();
    let (w, h) = (60usize, 24usize);
    let mut grid = vec![vec![' '; w]; h];
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let x = c as f64 / (w - 1) as f64 * 30.0;
            let y = (h - 1 - r) as f64 / (h - 1) as f64 * 16.0;
            if !(0.3..=29.7).contains(&x) || !(0.3..=15.7).contains(&y) {
                *cell = '.';
            }
            if (12.81..=13.71).contains(&x) && (9.49..=10.39).contains(&y) {
                *cell = '#';
            }
        }
    }
    let place = |grid: &mut Vec<Vec<char>>, x: f64, y: f64, ch: char| {
        let c = ((x / 30.0) * (w - 1) as f64).round() as usize;
        let r = h - 1 - ((y / 16.0) * (h - 1) as f64).round() as usize;
        grid[r.min(h - 1)][c.min(w - 1)] = ch;
    };
    for cl in &office.clients {
        let ch = std::char::from_digit(cl.id as u32 % 36, 36).unwrap_or('?');
        place(&mut grid, cl.position.x, cl.position.y, ch);
    }
    place(&mut grid, office.ap_position.x, office.ap_position.y, 'A');
    for row in grid {
        println!("  {}", row.into_iter().collect::<String>());
    }
    println!("  (ids in base-36: clients 10..20 print as a..k)");
}
