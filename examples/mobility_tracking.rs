//! Mobility tracking: follow a walking client through the office
//! (paper §5 future work, implemented).
//!
//! A client walks a loop at 1.3 m/s transmitting twice a second. Three
//! APs triangulate each packet; an α–β tracker turns the noisy fixes
//! into a smooth trace. The ASCII map shows ground truth (`.`), raw
//! fixes (`x`) and the tracked trace (`o`).
//!
//! ```text
//! cargo run --release --example mobility_tracking [-- --seed 7]
//! ```

use sa_testbed::experiments::mobility;

fn main() {
    let seed: u64 = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(2010);

    let r = mobility::run(seed, 1.3, 0.5);
    print!("{}", mobility::render(&r));

    // ASCII map of the walk.
    let (w, h) = (66usize, 22usize);
    let mut grid = vec![vec![' '; w]; h];
    let place = |grid: &mut Vec<Vec<char>>, x: f64, y: f64, ch: char, overwrite: bool| {
        if !(0.0..=30.0).contains(&x) || !(0.0..=16.0).contains(&y) {
            return;
        }
        let c = ((x / 30.0) * (w - 1) as f64).round() as usize;
        let rr = h - 1 - ((y / 16.0) * (h - 1) as f64).round() as usize;
        let cell = &mut grid[rr.min(h - 1)][c.min(w - 1)];
        if overwrite || *cell == ' ' {
            *cell = ch;
        }
    };
    for s in &r.samples {
        if let Some((x, y)) = s.raw_fix {
            place(&mut grid, x, y, 'x', false);
        }
    }
    for s in &r.samples {
        place(&mut grid, s.truth.0, s.truth.1, '.', true);
    }
    for s in &r.samples {
        if let Some((x, y)) = s.tracked {
            place(&mut grid, x, y, 'o', true);
        }
    }
    println!("\nwalk map ('.' truth, 'x' raw fix, 'o' tracked):");
    for row in grid {
        println!("  |{}|", row.into_iter().collect::<String>());
    }
    println!(
        "\nraw RMSE {:.2} m -> tracked RMSE {:.2} m ({}% of packets produced a fix)",
        r.raw_rmse_m,
        r.tracked_rmse_m,
        (100.0 * r.fix_rate) as u32
    );
}
