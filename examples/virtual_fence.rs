//! Virtual fence: keep wireless access inside the building (§2.3.1).
//!
//! Three circular-array APs triangulate every transmitter from their
//! direct-path bearings. Clients inside the building are admitted;
//! transmitters in the parking lot and on the street — even at 20 dB
//! higher power — are localized outside the fence polygon and dropped.
//!
//! ```text
//! cargo run --release --example virtual_fence [-- --seed 7]
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_testbed::experiments::fence::outside_positions;
use sa_testbed::Testbed;
use secureangle::fence::{FenceConfig, VirtualFence};
use secureangle::localize::BearingObservation;
use secureangle_suite::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(2010);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let tb = Testbed::multi_ap(seed);
    let fence = VirtualFence::new(tb.office.fence_polygon(), FenceConfig::default());
    println!(
        "virtual fence: the building interior (0.75 m wall margin); {} cooperating APs\n",
        tb.nodes.len()
    );

    let mut trials: Vec<(String, sa_channel::geom::Point, f64)> = tb
        .office
        .clients
        .iter()
        .take(8)
        .map(|c| (format!("client {:2}", c.id), c.position, 1.0))
        .collect();
    for (label, pos) in outside_positions().into_iter().take(4) {
        trials.push((label, pos, 100.0)); // attackers shout at +20 dB
    }

    println!("transmitter   |  true pos   | fix          | decision");
    println!("--------------+-------------+--------------+---------");
    for (label, pos, power) in trials {
        // Each AP measures the bearing of one frame.
        let frame = tb.client_frame(1, 7);
        let mut bearings = Vec::new();
        for node in 0..tb.nodes.len() {
            let buf = tb.capture(node, pos, &TxAntenna::Omni, power, &frame, 0.0, &mut rng);
            if let Ok(obs) = tb.nodes[node].ap.observe(&buf) {
                if let Some(az) = obs.global_azimuth {
                    bearings.push(BearingObservation {
                        ap_position: tb.nodes[node].ap.config().position,
                        azimuth: az,
                    });
                }
            }
        }
        let decision = fence.decide(&bearings);
        let (fix_str, verdict) = match &decision {
            secureangle::fence::FenceDecision::Inside(f) => (
                format!("({:5.1},{:5.1})", f.position.x, f.position.y),
                "ADMIT (inside)",
            ),
            secureangle::fence::FenceDecision::Outside(f) => (
                format!("({:5.1},{:5.1})", f.position.x, f.position.y),
                "DROP (outside)",
            ),
            secureangle::fence::FenceDecision::Unreliable(_) => {
                ("inconsistent".into(), "DROP (unreliable fix)")
            }
            secureangle::fence::FenceDecision::NoFix(_) => ("none".into(), "DROP (no fix)"),
        };
        println!(
            "{:<14}| ({:5.1},{:4.1}) | {:<13}| {}",
            label, pos.x, pos.y, fix_str, verdict
        );
    }
    println!("\n(An outside transmitter cannot talk its way in with power: its bearings\n intersect outside the polygon no matter how loud it is.)");
}
