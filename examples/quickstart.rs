//! Quickstart: one client, one packet, one bearing.
//!
//! Builds a small free-space scene, transmits an OFDM frame from a
//! client 5 m away, and runs the full SecureAngle AP pipeline: packet
//! detection → calibration → correlation matrix → MUSIC → bearing +
//! signature. Prints the pseudospectrum as ASCII.
//!
//! ```text
//! cargo run --release --example quickstart [-- --seed 7]
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_array::rf::FrontEnd;
use sa_channel::apply::{apply_channel, ApplyConfig};
use sa_linalg::complex::ZERO;
use sa_mac::{AccessControlList, AclPolicy};
use sa_phy::ppdu::Transmitter;
use secureangle_suite::prelude::*;

fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(2010)
}

fn main() {
    let seed = seed_from_args();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // --- Scene: an AP at the origin, a client 5 m away at 37°. --------
    let plan = FloorPlan::new(); // free space for the quickstart
    let ap_pos = pt(0.0, 0.0);
    let client_pos = pt(4.0, 3.0);
    let truth_deg = ap_pos.azimuth_to(client_pos).to_degrees();

    // --- The AP: the paper's 8-antenna octagon, calibrated. -----------
    let mut acl = AccessControlList::new(AclPolicy::AllowListed);
    let client_mac = MacAddr::local_from_index(1);
    acl.add(client_mac);
    let mut ap = AccessPoint::new(ApConfig::paper_prototype(ap_pos), acl);
    let front_end = FrontEnd::random(8, 2e-9, &mut rng);
    ap.calibrate(&front_end, &mut rng);
    println!(
        "AP calibrated: 8-antenna octagon at ({:.0}, {:.0})",
        ap_pos.x, ap_pos.y
    );

    // --- The client transmits one frame. -------------------------------
    let frame = Frame::data(
        client_mac,
        MacAddr::BROADCAST,
        MacAddr::local_from_index(0),
        1,
        b"hello, SecureAngle",
    );
    let tx = Transmitter::new(Modulation::Qpsk);
    let wave = tx.encode(&frame.encode());
    let mut padded = vec![ZERO; 120];
    padded.extend_from_slice(&wave);
    padded.extend_from_slice(&vec![ZERO; 80]);

    let paths = trace_paths(&plan, client_pos, ap_pos, &TraceConfig::default());
    let out = apply_channel(
        &paths,
        &TxAntenna::Omni,
        &Array::paper_octagon(),
        &padded,
        &ApplyConfig::default(),
    );
    let capture = front_end.receive(&out.snapshots, &mut rng);

    // --- The AP observes. ----------------------------------------------
    let obs = ap.observe(&capture).expect("no packet found");
    println!(
        "packet at sample {}, CFO {:+.2e} rad/sample, RSS {:.1} dB",
        obs.start, obs.cfo, obs.rss_db
    );
    if let Some(f) = &obs.frame {
        println!(
            "frame decoded: src {}, payload {:?}",
            f.src,
            String::from_utf8_lossy(&f.payload)
        );
    }
    println!(
        "bearing: {:.1} deg   (ground truth {:.1} deg, error {:.2} deg)",
        obs.bearing_deg,
        truth_deg,
        angle_diff_deg(obs.bearing_deg, truth_deg, true)
    );

    // --- The signature, as ASCII. ---------------------------------------
    let spec = obs.signature.spectrum();
    println!("\npseudospectrum (0..360 deg):");
    println!("  {}", spec.ascii(72));
    println!("  0        45        90        135       180       225       270       315");
    let peaks = spec.find_peaks(1.5, 5);
    println!("\npeaks:");
    for p in peaks {
        println!(
            "  {:6.1} deg  (prominence {:.1} dB)",
            p.angle_deg, p.prominence_db
        );
    }

    // --- The batched path: same numbers, amortised setup. ----------------
    // `observe_batch` stages captures through one PacketBatch, building
    // the AoA engine (manifold + steering table + eigen workspace) once
    // for the whole batch — the production ingest path (see
    // docs/ARCHITECTURE.md).
    let captures = vec![capture.clone(), capture.clone(), capture];
    let batched = ap.observe_batch(&captures);
    let bearings: Vec<f64> = batched
        .iter()
        .map(|r| r.as_ref().expect("batched observation").bearing_deg)
        .collect();
    assert!(bearings.iter().all(|&b| b == obs.bearing_deg));
    println!(
        "\nbatched ingest: {} captures through one PacketBatch, identical bearings {:?}",
        bearings.len(),
        bearings
    );
}
