//! Antenna-count ablation: the paper's Figure 7, as ASCII spectra.
//!
//! Client 12 (partially blocked by the cement pillar, heavy multipath)
//! is measured with 2, 4, 6 and 8 antennas in the linear arrangement.
//! Watch the pseudospectrum sharpen and the multipath structure resolve
//! as antennas are added.
//!
//! ```text
//! cargo run --release --example antenna_ablation [-- --seed 7 --client 12]
//! ```

use sa_testbed::experiments::fig7;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn main() {
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2010);
    let client: usize = arg("--client").and_then(|s| s.parse().ok()).unwrap_or(12);

    let r = fig7::run(seed, client);
    println!(
        "Figure 7 — client {} (truth {:.1} deg broadside), linear array\n",
        r.client, r.ground_truth_broadside_deg
    );

    for row in &r.rows {
        println!(
            "{} antennas — peak {:.1} deg (err {:.1} deg), {} peaks ≥2 dB:",
            row.antennas, row.peak_deg, row.error_deg, row.n_peaks
        );
        // Render the dB spectrum as a row of height glyphs.
        const GLYPHS: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
        let line: String = row
            .db
            .iter()
            .step_by((row.db.len() / 72).max(1))
            .map(|&v| {
                let t = ((v + 30.0) / 30.0).clamp(0.0, 1.0);
                GLYPHS[(t * (GLYPHS.len() - 1) as f64).round() as usize]
            })
            .collect();
        println!("  [{}]", line);
        println!("  -90 deg {: >63}", "+90 deg");
    }

    print!("{}", fig7::render(&r));
    println!("\n(The paper's observation: 2 antennas → one ambiguous peak; 4 cannot split");
    println!(" arrivals <45 deg apart; 6–8 antennas make direct + reflections visible.)");
}
