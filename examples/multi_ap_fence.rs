//! Multi-AP deployment demo: N APs fence the Figure-4 office.
//!
//! A [`sa_deploy::Deployment`] drives N access points concurrently over
//! the office testbed: window 0 trains every client's signature profile
//! and consensus reference, steady-state windows fuse bearings into
//! localization fixes, and the final window injects two intruders —
//! a MAC spoofer sitting on the AP0→victim ray (fooling AP0's own
//! signature check) and a parking-lot transmitter outside the virtual
//! fence. Cross-AP consensus catches the first; the fence catches the
//! second.
//!
//! ```text
//! cargo run --release --example multi_ap_fence [-- --aps 4 --windows 3 --seed 2010 --smoke]
//!     [--loss 0.1] [--retries 3] [--skew 2] [--churn] [--stream 2]
//!     [--chaos 6] [--metrics-out telemetry.prom]
//! ```
//!
//! Degraded-mode knobs: `--loss R` runs the worker report links at drop
//! probability `R` per attempt with `--retries` retransmits; `--skew W`
//! gives every AP a deterministic clock offset of up to ±`W` windows
//! (tolerance grows to match); `--churn` removes the last AP before the
//! attack window, exercising mid-run membership change. `--stream D`
//! runs the steady-state windows through `Deployment::run_stream` with
//! `windows_in_flight = D` (coordinator decode overlaps worker DSP;
//! byte-identical output at any depth). `--smoke` asserts the headline
//! claims (used by CI, with and without the degraded knobs) and exits
//! non-zero on failure.
//!
//! `--chaos SEED` attaches the canonical scripted fault schedule
//! ([`sa_deploy::faults::FaultPlan::scripted`]) — one AP turns
//! byzantine (+15° on every bearing), the rest draw wire corruption,
//! burst report loss, worker stalls, or clock-drift onset — and arms
//! the AP health layer ([`sa_deploy::HealthConfig::enabled`]). The run
//! ends with a per-AP health summary (scores, quarantines, fault
//! counters); under `--smoke` it asserts the byzantine AP was
//! quarantined and the headline claims still hold on the surviving
//! fleet. Use `--windows 10` or more so the scripted onsets (window
//! 4+) and the quarantine response both land before the attack window.
//!
//! `--metrics-out PATH` turns the full telemetry surface on
//! (`TelemetryConfig::full()`): the run writes its Prometheus text
//! exposition to `PATH` and the JSON snapshot to `PATH.json`, prints
//! per-stage latency quantiles and the flight-recorder post-mortem for
//! the spoofed victim, and — under `--smoke` — validates both outputs
//! with the in-repo exposition/JSON parsers. Telemetry is out-of-band:
//! the fused windows are byte-identical with or without this flag.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_channel::geom::pt;
use sa_channel::pattern::TxAntenna;
use sa_deploy::faults::{FaultEvent, FaultPlan};
use sa_deploy::{
    ApSkew, DeployConfig, Deployment, HealthConfig, LinkConfig, TelemetryConfig, Transmission,
};
use sa_testbed::Testbed;
use secureangle::fence::{FenceConfig, VirtualFence};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let n_aps: usize = arg("--aps").and_then(|s| s.parse().ok()).unwrap_or(4);
    let n_windows: u64 = arg("--windows").and_then(|s| s.parse().ok()).unwrap_or(3);
    let seed: u64 = arg("--seed").and_then(|s| s.parse().ok()).unwrap_or(2010);
    let loss: f64 = arg("--loss").and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let retries: u32 = arg("--retries").and_then(|s| s.parse().ok()).unwrap_or(3);
    let skew: i64 = arg("--skew").and_then(|s| s.parse().ok()).unwrap_or(0);
    let churn = flag("--churn");
    let stream: usize = arg("--stream").and_then(|s| s.parse().ok()).unwrap_or(0);
    let chaos: Option<u64> = arg("--chaos").and_then(|s| s.parse().ok());
    let smoke = flag("--smoke");
    let metrics_out = arg("--metrics-out");
    let victim = 5usize;

    println!(
        "Multi-AP fence: {} APs x 20 clients x {} windows (seed {})",
        n_aps, n_windows, seed
    );
    if loss > 0.0 || skew != 0 || churn {
        println!(
            "degraded mode: loss {:.0}% x{} retries, clock skew ±{} windows, churn {}",
            loss * 100.0,
            retries,
            skew,
            if churn { "on" } else { "off" }
        );
    }
    // --chaos: the canonical scripted fault schedule, plus the health
    // layer that is supposed to absorb it.
    let fault_plan = chaos.map(|s| FaultPlan::scripted(n_aps, s));
    if let Some(plan) = &fault_plan {
        println!("chaos mode: scripted fault plan (seed {})", plan.seed);
        for e in &plan.events {
            println!("  {:?}", e);
        }
    }

    let tb = Testbed::deployment(n_aps, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfe9ce);
    let fence = VirtualFence::new(tb.office.fence_polygon(), FenceConfig::default());
    let clients: Vec<usize> = (1..=20).collect();
    let truth: Vec<_> = clients
        .iter()
        .map(|&id| tb.office.client(id).position)
        .collect();

    // Traffic: training window, steady-state windows, then the attack
    // window (everyone but the victim, plus the two intruders). With
    // --churn the last AP is removed before the attack window, so its
    // captures cover only the surviving membership.
    let last_nodes: Vec<usize> = if churn {
        (0..n_aps - 1).collect()
    } else {
        (0..n_aps).collect()
    };
    let mut windows: Vec<Vec<Transmission>> = Vec::new();
    for w in 0..n_windows.max(2) - 1 {
        windows.push(
            tb.window_traffic(&clients, w as u16, 0.0, &mut rng)
                .into_iter()
                .map(Transmission::new)
                .collect(),
        );
    }
    let others: Vec<usize> = clients.iter().copied().filter(|&c| c != victim).collect();
    // After churn the consensus re-baselines (references trained under
    // the old membership are geometry-stale), so the fleet needs one
    // clean steady window on the new membership before it can catch a
    // displaced spoofer again.
    let rebaseline_window: Option<Vec<Transmission>> = churn.then(|| {
        tb.window_traffic_for(&last_nodes, &clients, (n_windows + 1) as u16, 0.0, &mut rng)
            .into_iter()
            .map(Transmission::new)
            .collect()
    });
    let mut last: Vec<Transmission> = tb
        .window_traffic_for(&last_nodes, &others, n_windows as u16, 0.0, &mut rng)
        .into_iter()
        .map(Transmission::new)
        .collect();
    // Intruder 1: MAC spoofer on the AP0→victim ray, 3.5 m beyond the
    // victim, power-matched at AP0 — close enough in angle that AP0's
    // own signature check passes.
    let vpos = tb.office.client(victim).position;
    let ap0 = tb.nodes[0].ap.config().position;
    let az = ap0.azimuth_to(vpos);
    let apos = pt(vpos.x + 3.5 * az.cos(), vpos.y + 3.5 * az.sin());
    let tx_power = tb.rx_power_from(0, vpos) / tb.rx_power_from(0, apos);
    let spoof_frame = tb.client_frame(victim, 99);
    last.push(Transmission::new(tb.transmission_for(
        &last_nodes,
        apos,
        &TxAntenna::Omni,
        tx_power,
        &spoof_frame,
        0.0,
        &mut rng,
    )));
    // Intruder 2: parking-lot transmitter outside the building, +20 dB,
    // using an unlisted MAC (id 77 is on no ACL).
    let outsider_pos = pt(36.0, 2.0);
    let outsider_frame = sa_mac::Frame::data(
        sa_mac::MacAddr::local_from_index(77),
        sa_mac::MacAddr::BROADCAST,
        sa_mac::MacAddr::local_from_index(0),
        1,
        b"outside",
    );
    last.push(Transmission::new(tb.transmission_for(
        &last_nodes,
        outsider_pos,
        &TxAntenna::Omni,
        100.0,
        &outsider_frame,
        0.0,
        &mut rng,
    )));

    // Run the deployment, with the degraded-mode knobs applied: a lossy
    // report link with bounded retransmit, and per-AP clock skews from
    // the testbed's deterministic profile (aligned away by the
    // coordinator as long as they stay within tolerance).
    let cfg = DeployConfig {
        link: LinkConfig {
            loss_rate: loss,
            retry_limit: retries,
            seed: seed ^ 0x105e,
        },
        max_skew_windows: skew.unsigned_abs().max(2),
        windows_in_flight: stream.max(1),
        faults: fault_plan.clone(),
        health: if chaos.is_some() {
            HealthConfig::enabled()
        } else {
            HealthConfig::default()
        },
        telemetry: if metrics_out.is_some() {
            TelemetryConfig::full()
        } else {
            TelemetryConfig::disabled()
        },
        ..DeployConfig::default()
    };
    let aps: Vec<_> = tb.nodes.into_iter().map(|n| n.ap).collect();
    let mut deployment = if skew != 0 {
        let skews: Vec<ApSkew> = Testbed::skew_profile(n_aps, skew, seed)
            .into_iter()
            .map(|(window_offset, seq_offset)| ApSkew {
                window_offset,
                seq_offset,
                drift_ppw: 0.0,
            })
            .collect();
        Deployment::with_skews(aps, cfg, skews)
    } else {
        Deployment::new(aps, cfg)
    };
    let mut fused = Vec::new();
    if stream > 0 {
        // Bounded pipelining: at most `stream` windows in flight, the
        // coordinator decoding ahead while workers chew. Same fused
        // bytes as the submit-all path below.
        fused.extend(
            deployment
                .run_stream(windows)
                .expect("streamed steady-state windows"),
        );
    } else {
        for w in windows {
            deployment.submit_window(w).expect("submit window");
        }
    }
    if churn {
        // Close the steady-state windows, then pull the last AP before
        // the attack window: in-flight windows drain, membership
        // shrinks, consensus re-baselines.
        while let Ok(f) = deployment.collect_window() {
            fused.push(f);
        }
        let removed = deployment.remove_ap(n_aps - 1).expect("mid-run AP removal");
        println!(
            "churn: removed ap{} mid-run ({} trained profiles ride along), {} APs live",
            n_aps - 1,
            removed.spoof.trained_count(),
            deployment.live_aps()
        );
        // One clean window on the new membership retrains the
        // re-baselined consensus references.
        if let Some(w) = rebaseline_window {
            fused.push(deployment.run_window(w).expect("re-baseline window"));
        }
    }
    deployment
        .submit_window(last)
        .expect("submit attack window");
    while let Ok(f) = deployment.collect_window() {
        fused.push(f);
    }

    // Steady-state survey (last all-legitimate window).
    let survey = &fused[fused.len() - 2];
    println!(
        "\nwindow {} (steady state): fused fixes vs truth ({}/{} APs reporting, {} quarantined)",
        survey.window,
        survey.expected_aps - survey.lost_reports - survey.stalled_aps,
        survey.expected_aps,
        survey.quarantined_aps
    );
    let mut within_3m = 0usize;
    let mut fixed = 0usize;
    for c in &survey.clients {
        let id = clients
            .iter()
            .position(|&i| Testbed::client_mac(i) == c.mac)
            .map(|i| clients[i])
            .unwrap_or(0);
        match (c.fix, c.track) {
            (Some(fix), Some(track)) => {
                let err = fix.position.dist(truth[id - 1]);
                fixed += 1;
                if err <= 3.0 {
                    within_3m += 1;
                }
                println!(
                    "  client {:2}: fix ({:5.1},{:5.1})  err {:4.1} m  residual {:4.1} m  {} APs  fence: {}",
                    id,
                    fix.position.x,
                    fix.position.y,
                    err,
                    fix.residual_m,
                    c.n_aps,
                    if fence.contains(track.position) { "inside" } else { "OUTSIDE" },
                );
            }
            _ => println!("  client {:2}: no fix ({} APs)", id, c.n_aps),
        }
    }
    println!(
        "  => {}/{} clients fixed, {} within 3 m",
        fixed,
        survey.clients.len(),
        within_3m
    );

    // Attack window.
    let attack = fused.last().expect("attack window");
    println!("\nwindow {} (attack):", attack.window);
    let victim_mac = Testbed::client_mac(victim);
    let outsider_mac = sa_mac::MacAddr::local_from_index(77);
    let mut spoof_caught = false;
    let mut outsider_outside = false;
    for c in &attack.clients {
        if c.mac == victim_mac {
            println!(
                "  spoofer (as client {}): {} APs admitted, {} flagged, consensus {:?}",
                victim, c.admitted_aps, c.flagged_aps, c.consensus
            );
            spoof_caught = c.consensus.is_spoof();
        } else if c.mac == outsider_mac {
            let inside = c.fix.map(|f| fence.contains(f.position)).unwrap_or(false);
            println!(
                "  outsider: fix {:?}, fence: {}",
                c.fix.map(|f| (f.position.x, f.position.y)),
                if inside {
                    "inside?!"
                } else {
                    "OUTSIDE — rejected"
                }
            );
            outsider_outside = !inside && c.fix.is_some();
        }
    }

    // Flight-recorder post-mortem: render the recorded evidence trail
    // behind the spoof verdict before the deployment is consumed.
    let mut explain_ok = metrics_out.is_none();
    if metrics_out.is_some() {
        match deployment.explain(&victim_mac) {
            Some(post_mortem) => {
                explain_ok = post_mortem.contains("SPOOF");
                println!("\nflight recorder post-mortem:\n{post_mortem}");
            }
            None => println!("\nflight recorder: no events recorded for {victim_mac}"),
        }
    }

    // Post-run health summary: where every AP's score ended up and who
    // sat in quarantine when the run closed.
    let quarantined_now = deployment.quarantined_aps();
    let byz_quarantined = fault_plan.as_ref().is_none_or(|plan| {
        plan.events.iter().all(|e| match *e {
            FaultEvent::ByzantineBias { ap, .. } => quarantined_now.contains(&ap),
            _ => true,
        })
    });
    if chaos.is_some() {
        println!("\nAP health summary:");
        for k in 0..n_aps {
            println!(
                "  ap{}: score {:.2}{}",
                k,
                deployment.health_score(k),
                if quarantined_now.contains(&k) {
                    "  QUARANTINED"
                } else {
                    ""
                }
            );
        }
    }

    // Report.
    let (report, aps) = deployment.finish();
    println!("\ndeployment report:");
    println!(
        "  {} APs, {} windows, {} transmissions, {} packets ({} decode failures)",
        report.n_aps,
        report.metrics.windows,
        report.metrics.transmissions,
        report.metrics.packets_dispatched,
        report.metrics.decode_failures
    );
    println!(
        "  {} bearings fused -> {} fixes ({} degenerate), {} consensus flags",
        report.metrics.fused_bearings,
        report.metrics.fixes,
        report.metrics.localize_failures,
        report.metrics.consensus_flags
    );
    println!(
        "  backpressure: ingest {}, report {}; fusion queue high-water {}",
        report.metrics.ingest_backpressure_events,
        report.metrics.report_backpressure_events,
        report.metrics.max_fusion_queue_depth
    );
    println!(
        "  link health: {} drops / {} retransmits / {} reports lost; {} skew rejections; {} degraded windows",
        report.per_ap.iter().map(|s| s.report_drops).sum::<u64>(),
        report.per_ap.iter().map(|s| s.report_retransmits).sum::<u64>(),
        report.metrics.reports_lost,
        report.metrics.skew_rejections,
        report.metrics.degraded_windows
    );
    if report.metrics.aps_added + report.metrics.aps_removed + report.metrics.worker_losses > 0 {
        println!(
            "  churn: {} added, {} removed, {} worker losses",
            report.metrics.aps_added, report.metrics.aps_removed, report.metrics.worker_losses
        );
    }
    if chaos.is_some() {
        println!(
            "  self-healing: {} quarantines / {} re-admissions / {} watchdog reaps; \
             {} corrupt reports rejected, {} stalled windows",
            report.metrics.aps_quarantined,
            report.metrics.aps_readmitted,
            report.metrics.watchdog_reaps,
            report.metrics.reports_corrupt,
            report.metrics.windows_stalled
        );
    }
    for (k, s) in report.per_ap.iter().enumerate() {
        println!(
            "  ap{}: {} packets, {} observed, {} admitted, {} spoof-dropped, {} trained, {} reports lost",
            k, s.packets, s.observed, s.admitted, s.dropped_spoof, s.trained, s.reports_lost
        );
    }
    for c in report.clients.iter().filter(|c| c.consensus_flags > 0) {
        println!(
            "  consensus-flagged: {} ({} flags, reference {:?})",
            c.mac,
            c.consensus_flags,
            c.reference.map(|p| (p.x, p.y))
        );
    }
    let store = aps[0].spoof.store();
    println!(
        "  ap0 signature store: {} clients over {} shards, occupancy {:?}",
        store.len(),
        store.shard_count(),
        store.shard_occupancy()
    );

    // Telemetry export: Prometheus text exposition + JSON snapshot,
    // validated with the in-repo parsers (the CI smoke relies on this).
    let mut telemetry_ok = true;
    if let Some(path) = &metrics_out {
        let snap = &report.telemetry;
        println!(
            "\ntelemetry snapshot: {} counters, {} gauges, {} histograms",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len()
        );
        for stage in [
            "stage.decode",
            "stage.worker_dsp",
            "stage.enforce",
            "stage.fusion_drain",
            "stage.consensus",
        ] {
            if let Some(h) = snap.merged_histogram(stage) {
                println!(
                    "  {:<18} p50 {:>8} ns  p99 {:>8} ns  max {:>8} ns  ({} samples)",
                    stage,
                    h.p50().unwrap_or(0),
                    h.p99().unwrap_or(0),
                    h.max,
                    h.count
                );
            }
        }
        let prom = snap.to_prometheus();
        let json = snap.to_json();
        std::fs::write(path, &prom).expect("write Prometheus exposition");
        let json_path = format!("{path}.json");
        std::fs::write(&json_path, &json).expect("write JSON snapshot");
        println!("  wrote {path} and {json_path}");

        match sa_telemetry::expo::parse_exposition(&prom) {
            Ok(samples) => {
                let has = |name: &str| samples.iter().any(|s| s.name == name);
                for required in ["sa_fleet_windows", "sa_ap_packets", "sa_stage_decode_count"] {
                    if !has(required) {
                        eprintln!("telemetry: exposition is missing {required}");
                        telemetry_ok = false;
                    }
                }
            }
            Err(e) => {
                eprintln!("telemetry: exposition failed to parse: {e}");
                telemetry_ok = false;
            }
        }
        match sa_telemetry::json::parse(&json) {
            Ok(doc) => {
                let rerendered = sa_telemetry::json::render_pretty(&doc);
                if sa_telemetry::json::parse(&rerendered) != Ok(doc) {
                    eprintln!("telemetry: JSON snapshot does not round-trip");
                    telemetry_ok = false;
                }
            }
            Err(e) => {
                eprintln!("telemetry: JSON snapshot failed to parse: {e}");
                telemetry_ok = false;
            }
        }
    }

    if smoke {
        let ok_fixes = 10 * within_3m >= 9 * survey.clients.len();
        let expected_windows = n_windows.max(2) + u64::from(churn);
        let ok_windows = report.metrics.windows == expected_windows;
        // Under --chaos the byzantine AP must have been caught: at
        // least one quarantine event, and every scripted liar still
        // quarantined when the run closed.
        let chaos_ok = chaos.is_none() || (report.metrics.aps_quarantined >= 1 && byz_quarantined);
        if !(ok_fixes
            && spoof_caught
            && outsider_outside
            && ok_windows
            && telemetry_ok
            && explain_ok
            && chaos_ok)
        {
            eprintln!(
                "SMOKE FAILED: fixes_ok={} spoof_caught={} outsider_outside={} windows_ok={} telemetry_ok={} explain_ok={} chaos_ok={}",
                ok_fixes, spoof_caught, outsider_outside, ok_windows, telemetry_ok, explain_ok, chaos_ok
            );
            std::process::exit(1);
        }
        println!("\nsmoke: OK");
    }
}
