//! The paper's Figure-4 office testbed, as a floor plan.
//!
//! The paper's figure is a schematic: 20 numbered Soekris clients spread
//! over an office floor around a WARP AP, with a large cement pillar
//! near clients 11/12. The precise coordinates are not published, so
//! this module encodes a floor plan *consistent with every statement the
//! paper makes about it*:
//!
//! * client 5 is near the AP in the same room; client 10 is far away in
//!   the same room; client 2 is in another room nearby (§3.2);
//! * client 11 is completely blocked by the cement pillar; client 12 is
//!   partially blocked (grazing line of sight past the pillar corner);
//!   client 6 is far away with strong multipath (§3.1);
//! * ground-truth bearings cover the full 0–360° range (Fig 5's x-axis);
//! * the environment is multi-room with interior walls, so many clients
//!   are heard through drywall.
//!
//! Geometry: a 30 m × 16 m floor, exterior concrete, interior drywall
//! partitions with door gaps, the AP at (15, 8).

use sa_channel::geom::{pt, Point, Rect, Segment};
use sa_channel::plan::{FloorPlan, CONCRETE, DRYWALL};

/// One testbed client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSpec {
    /// Paper's client number, 1–20.
    pub id: usize,
    /// Position on the floor plan, meters.
    pub position: Point,
    /// What the paper says about this client (empty for unremarkable
    /// ones).
    pub note: &'static str,
}

/// The office testbed: floor plan + AP + clients.
#[derive(Debug, Clone)]
pub struct Office {
    /// Walls.
    pub plan: FloorPlan,
    /// Primary AP position (the "AP" marker of Fig 4).
    pub ap_position: Point,
    /// Secondary AP positions for multi-AP experiments (virtual fence /
    /// localization, §2.3.1 — "more than two access points").
    pub extra_ap_positions: Vec<Point>,
    /// The 20 clients.
    pub clients: Vec<ClientSpec>,
    /// Building outline (the virtual-fence polygon).
    pub outline: Vec<Point>,
}

impl Office {
    /// Build the Figure-4 testbed.
    pub fn paper_figure4() -> Self {
        let mut plan = FloorPlan::new();

        // Exterior: concrete shell, 30 × 16 m.
        plan.add_rect(Rect::new(0.0, 0.0, 30.0, 16.0), CONCRETE);

        // Interior drywall partitions with door gaps.
        // Wall A: x = 8, gap at y ∈ (7, 9).
        plan.add_wall(
            Segment {
                a: pt(8.0, 0.0),
                b: pt(8.0, 7.0),
            },
            DRYWALL,
        );
        plan.add_wall(
            Segment {
                a: pt(8.0, 9.0),
                b: pt(8.0, 16.0),
            },
            DRYWALL,
        );
        // Wall B: x = 22, gap at y ∈ (6.5, 9.5).
        plan.add_wall(
            Segment {
                a: pt(22.0, 0.0),
                b: pt(22.0, 6.5),
            },
            DRYWALL,
        );
        plan.add_wall(
            Segment {
                a: pt(22.0, 9.5),
                b: pt(22.0, 16.0),
            },
            DRYWALL,
        );
        // Wall C: y = 12 across the middle block, gap at x ∈ (14, 16).
        plan.add_wall(
            Segment {
                a: pt(8.0, 12.0),
                b: pt(14.0, 12.0),
            },
            DRYWALL,
        );
        plan.add_wall(
            Segment {
                a: pt(16.0, 12.0),
                b: pt(22.0, 12.0),
            },
            DRYWALL,
        );

        // The large cement pillar: a 0.9 m square straddling the AP→11
        // line of sight (offset slightly off the ray's 45° diagonal so
        // the ray crosses wall interiors, not exactly a corner), fully
        // shadowing client 11 while client 12's line of sight grazes
        // past its corner.
        plan.add_rect(Rect::new(12.81, 9.49, 13.71, 10.39), CONCRETE);

        let clients = vec![
            ClientSpec {
                id: 1,
                position: pt(19.0, 10.5),
                note: "",
            },
            ClientSpec {
                id: 2,
                position: pt(5.5, 9.5),
                note: "another room nearby the AP (Fig 6)",
            },
            ClientSpec {
                id: 3,
                position: pt(20.5, 8.3),
                note: "",
            },
            ClientSpec {
                id: 4,
                position: pt(18.0, 12.8),
                note: "office above wall C",
            },
            ClientSpec {
                id: 5,
                position: pt(17.5, 6.5),
                note: "same room, near the AP (Fig 6)",
            },
            ClientSpec {
                id: 6,
                position: pt(27.5, 2.0),
                note: "far away, strong multipath (Fig 5 outlier)",
            },
            ClientSpec {
                id: 7,
                position: pt(13.0, 5.0),
                note: "",
            },
            ClientSpec {
                id: 8,
                position: pt(16.5, 3.5),
                note: "",
            },
            ClientSpec {
                id: 9,
                position: pt(10.5, 6.0),
                note: "",
            },
            ClientSpec {
                id: 10,
                position: pt(21.0, 1.0),
                note: "same room, far from the AP (Fig 6)",
            },
            ClientSpec {
                id: 11,
                position: pt(11.5, 11.5),
                note: "completely blocked by the pillar (Fig 5)",
            },
            ClientSpec {
                id: 12,
                position: pt(10.2, 10.8),
                note: "partially blocked by the pillar (Figs 5, 7)",
            },
            ClientSpec {
                id: 13,
                position: pt(8.6, 13.0),
                note: "",
            },
            ClientSpec {
                id: 14,
                position: pt(25.0, 12.5),
                note: "",
            },
            ClientSpec {
                id: 15,
                position: pt(27.0, 8.0),
                note: "through the wall-B doorway",
            },
            ClientSpec {
                id: 16,
                position: pt(4.0, 4.0),
                note: "",
            },
            ClientSpec {
                id: 17,
                position: pt(3.0, 13.0),
                note: "",
            },
            ClientSpec {
                id: 18,
                position: pt(24.0, 6.8),
                note: "",
            },
            ClientSpec {
                id: 19,
                position: pt(12.5, 2.0),
                note: "",
            },
            ClientSpec {
                id: 20,
                position: pt(6.0, 1.5),
                note: "",
            },
        ];

        Self {
            plan,
            ap_position: pt(15.0, 8.0),
            extra_ap_positions: vec![pt(25.0, 13.5), pt(5.0, 3.0)],
            clients,
            outline: vec![pt(0.0, 0.0), pt(30.0, 0.0), pt(30.0, 16.0), pt(0.0, 16.0)],
        }
    }

    /// A campus-hall scenario for fleet-scale serving: one large open
    /// concrete hall (36 m × 20 m) with `n_clients` clients laid out by
    /// a deterministic position stream (splitmix64 with a fixed seed —
    /// the layout is a pure function of `n_clients`). Unlike
    /// [`Office::paper_figure4`] this is not a paper figure; it exists
    /// to drive thousands of clients through a deployment while keeping
    /// every capture decodable: no point of the hall is more than ~21 m
    /// line-of-sight from the primary AP at (18, 10). Client ids are
    /// `1..=n_clients` and carry no paper notes. The hall supplies
    /// seven `extra_ap_positions`, so
    /// [`Office::deployment_ap_positions`] serves its full `1..=8`
    /// range from the hall itself.
    pub fn campus(n_clients: usize) -> Self {
        assert!(n_clients >= 1, "campus needs at least one client");
        const W: f64 = 36.0;
        const H: f64 = 20.0;
        const MARGIN: f64 = 1.5;
        let mut plan = FloorPlan::new();
        plan.add_rect(Rect::new(0.0, 0.0, W, H), CONCRETE);

        // splitmix64 layout stream; evaluation order (x then y) is part
        // of the layout contract.
        let mut state: u64 = 0xcafe_f00d_5eed_0001;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        let clients = (1..=n_clients)
            .map(|id| {
                let x = MARGIN + next() * (W - 2.0 * MARGIN);
                let y = MARGIN + next() * (H - 2.0 * MARGIN);
                ClientSpec {
                    id,
                    position: pt(x, y),
                    note: "",
                }
            })
            .collect();

        Self {
            plan,
            ap_position: pt(18.0, 10.0),
            extra_ap_positions: vec![
                pt(6.0, 4.0),
                pt(30.0, 16.0),
                pt(6.0, 16.0),
                pt(30.0, 4.0),
                pt(18.0, 3.0),
                pt(18.0, 17.0),
                pt(3.0, 10.0),
            ],
            clients,
            outline: vec![pt(0.0, 0.0), pt(W, 0.0), pt(W, H), pt(0.0, H)],
        }
    }

    /// AP positions for an `n`-AP deployment (§2.3.1 scale-out): the
    /// primary Fig-4 AP first, then the two extra multi-AP positions,
    /// then further corners and mid-walls of the floor. Note the
    /// primary and the two extras all sit near the line `y = x/2 +
    /// 0.5`, so 3-AP deployments are ill-conditioned for clients along
    /// it (e.g. client 1) — the fourth AP breaks the collinearity;
    /// deployments that care about localization accuracy should run
    /// four or more. Supports up to eight APs; panics outside `1..=8`.
    pub fn deployment_ap_positions(&self, n: usize) -> Vec<Point> {
        assert!(
            (1..=8).contains(&n),
            "deployment supports 1..=8 APs, asked for {}",
            n
        );
        let mut all = vec![self.ap_position];
        all.extend(self.extra_ap_positions.iter().copied());
        all.extend([
            pt(5.0, 13.0),
            pt(25.0, 3.0),
            pt(15.0, 2.0),
            pt(15.0, 14.0),
            pt(2.0, 8.0),
        ]);
        all.truncate(n);
        all
    }

    /// Client spec by paper id (1–20). Panics on unknown ids.
    pub fn client(&self, id: usize) -> &ClientSpec {
        self.clients
            .iter()
            .find(|c| c.id == id)
            .unwrap_or_else(|| panic!("no client {}", id))
    }

    /// The virtual-fence polygon: the building outline inset by a safety
    /// margin. Localization blurs positions by a meter or so, so fencing
    /// the wall line itself would admit outside transmitters whose fixes
    /// land fractionally inside; a deployment fences the usable interior
    /// instead. All 20 clients sit inside this polygon.
    pub fn fence_polygon(&self) -> Vec<Point> {
        const MARGIN: f64 = 0.75;
        let (mut x0, mut y0) = (f64::INFINITY, f64::INFINITY);
        let (mut x1, mut y1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.outline {
            x0 = x0.min(p.x);
            y0 = y0.min(p.y);
            x1 = x1.max(p.x);
            y1 = y1.max(p.y);
        }
        vec![
            pt(x0 + MARGIN, y0 + MARGIN),
            pt(x1 - MARGIN, y0 + MARGIN),
            pt(x1 - MARGIN, y1 - MARGIN),
            pt(x0 + MARGIN, y1 - MARGIN),
        ]
    }

    /// Ground-truth azimuth (degrees, `[0, 360)`, global frame) from the
    /// primary AP to a client.
    pub fn ground_truth_azimuth_deg(&self, id: usize) -> f64 {
        self.ap_position
            .azimuth_to(self.client(id).position)
            .to_degrees()
            .rem_euclid(360.0)
    }

    /// Ground-truth azimuth from an arbitrary AP position.
    pub fn azimuth_from(&self, ap: Point, id: usize) -> f64 {
        ap.azimuth_to(self.client(id).position)
            .to_degrees()
            .rem_euclid(360.0)
    }

    /// Distance from the primary AP to a client, meters.
    pub fn distance_to(&self, id: usize) -> f64 {
        self.ap_position.dist(self.client(id).position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_channel::geom::point_in_polygon;

    #[test]
    fn twenty_distinct_clients() {
        let o = Office::paper_figure4();
        assert_eq!(o.clients.len(), 20);
        let ids: std::collections::HashSet<_> = o.clients.iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), 20);
        for c in &o.clients {
            assert!((1..=20).contains(&c.id));
        }
    }

    #[test]
    fn all_clients_inside_the_building() {
        let o = Office::paper_figure4();
        for c in &o.clients {
            assert!(
                point_in_polygon(c.position, &o.outline),
                "client {} outside the building",
                c.id
            );
        }
        assert!(point_in_polygon(o.ap_position, &o.outline));
        for &p in &o.extra_ap_positions {
            assert!(point_in_polygon(p, &o.outline));
        }
    }

    #[test]
    fn all_clients_inside_the_fence_polygon() {
        let o = Office::paper_figure4();
        let fence = o.fence_polygon();
        for c in &o.clients {
            assert!(
                point_in_polygon(c.position, &fence),
                "client {} outside the fence margin",
                c.id
            );
        }
    }

    #[test]
    fn ground_truth_bearings_cover_the_circle() {
        // Fig 5's x-axis spans 0–360°: at least one client per quadrant.
        let o = Office::paper_figure4();
        let mut quadrants = [false; 4];
        for c in &o.clients {
            let az = o.ground_truth_azimuth_deg(c.id);
            quadrants[(az / 90.0) as usize % 4] = true;
        }
        assert_eq!(quadrants, [true; 4], "bearing coverage is incomplete");
    }

    #[test]
    fn client_11_is_fully_blocked_by_the_pillar() {
        let o = Office::paper_figure4();
        let c11 = o.client(11).position;
        let loss = o.plan.through_loss_db(o.ap_position, c11, &[]);
        // Two pillar-wall crossings of concrete.
        assert!(
            loss >= 2.0 * CONCRETE.transmission_db - 1e-9,
            "client 11 loss only {} dB",
            loss
        );
    }

    #[test]
    fn client_12_grazes_the_pillar() {
        // Partial blockage: the direct ray itself squeaks past (no
        // pillar crossing), but it passes within half a metre of the
        // pillar corner, so pillar reflections are strong and nearby.
        let o = Office::paper_figure4();
        let c12 = o.client(12).position;
        let loss = o.plan.through_loss_db(o.ap_position, c12, &[]);
        assert!(
            loss < 2.0 * CONCRETE.transmission_db,
            "client 12 should not be doubly blocked ({} dB)",
            loss
        );
        // Distance from the LoS segment to the pillar corner < 0.5 m.
        let corner = pt(12.81, 9.49);
        let d = distance_point_segment(corner, o.ap_position, c12);
        assert!(d < 0.5, "grazing distance {} m", d);
    }

    #[test]
    fn near_and_far_clients_match_the_papers_text() {
        let o = Office::paper_figure4();
        assert!(o.distance_to(5) < 3.5, "client 5 should be near");
        assert!(o.distance_to(10) > 8.0, "client 10 should be far");
        assert!(o.distance_to(6) > 12.0, "client 6 should be farthest-ish");
        // Client 2 is behind wall A.
        let loss = o
            .plan
            .through_loss_db(o.ap_position, o.client(2).position, &[]);
        assert!(loss > 0.0, "client 2 should be in another room");
    }

    #[test]
    fn client_15_sees_the_ap_through_the_doorway() {
        let o = Office::paper_figure4();
        assert!(o.plan.has_clear_los(o.ap_position, o.client(15).position));
    }

    #[test]
    fn ground_truth_values_snapshot() {
        // Pin a few derived bearings so accidental geometry edits fail
        // loudly (experiments depend on these).
        let o = Office::paper_figure4();
        assert!((o.ground_truth_azimuth_deg(3) - 3.1).abs() < 0.1);
        assert!((o.ground_truth_azimuth_deg(11) - 135.0).abs() < 0.1);
        assert!((o.ground_truth_azimuth_deg(15) - 0.0).abs() < 0.1);
        assert!((o.ground_truth_azimuth_deg(7) - 236.3).abs() < 0.1);
    }

    #[test]
    fn deployment_positions_are_distinct_and_inside() {
        let o = Office::paper_figure4();
        for n in 1..=8 {
            let aps = o.deployment_ap_positions(n);
            assert_eq!(aps.len(), n);
            assert_eq!(aps[0], o.ap_position, "primary AP must come first");
            for (i, &a) in aps.iter().enumerate() {
                assert!(point_in_polygon(a, &o.outline), "AP {} outside", i);
                for &b in &aps[..i] {
                    assert!(a.dist(b) > 3.0, "APs too close: {:?} vs {:?}", a, b);
                }
            }
        }
    }

    #[test]
    fn campus_layout_is_a_pure_function_of_client_count() {
        let a = Office::campus(50);
        let b = Office::campus(50);
        assert_eq!(a.clients.len(), 50);
        for (ca, cb) in a.clients.iter().zip(&b.clients) {
            assert_eq!(ca, cb);
        }
        // A prefix of a larger campus matches the smaller one: the
        // stream is consumed in id order.
        let big = Office::campus(200);
        for (ca, cb) in a.clients.iter().zip(&big.clients) {
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn campus_clients_fit_the_hall_and_the_fence() {
        let o = Office::campus(300);
        let fence = o.fence_polygon();
        let ids: std::collections::HashSet<_> = o.clients.iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), 300);
        for c in &o.clients {
            assert!(point_in_polygon(c.position, &o.outline));
            assert!(point_in_polygon(c.position, &fence));
            // Decodability bound: every client is within line-of-sight
            // budget of the primary AP.
            assert!(o.ap_position.dist(c.position) < 21.0);
        }
    }

    #[test]
    fn campus_serves_the_full_ap_range() {
        let o = Office::campus(10);
        for n in 1..=8 {
            let aps = o.deployment_ap_positions(n);
            assert_eq!(aps.len(), n);
            assert_eq!(aps[0], o.ap_position);
            for (i, &a) in aps.iter().enumerate() {
                assert!(point_in_polygon(a, &o.outline), "AP {} outside", i);
                for &b in &aps[..i] {
                    assert!(a.dist(b) > 3.0, "APs too close: {:?} vs {:?}", a, b);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn too_many_deployment_aps_panics() {
        let o = Office::paper_figure4();
        let _ = o.deployment_ap_positions(9);
    }

    #[test]
    #[should_panic(expected = "no client 21")]
    fn unknown_client_panics() {
        let o = Office::paper_figure4();
        let _ = o.client(21);
    }

    fn distance_point_segment(p: Point, a: Point, b: Point) -> f64 {
        let ab = b.sub(a);
        let t = (p.sub(a).dot(ab) / ab.dot(ab)).clamp(0.0, 1.0);
        let proj = pt(a.x + t * ab.x, a.y + t * ab.y);
        p.dist(proj)
    }
}
