//! Experiment E1/E2 — Figure 5 and the §2.3.1 accuracy claim.
//!
//! Paper: "We compute 10 pseudospectra for each client, each from a
//! different packet, and plot the mean obtained bearing as well as 99%
//! confidence interval … The mean 99% confidence interval for all the
//! clients is as small as 7°." And §2.3.1: "after overhearing just one
//! packet, it is possible to measure approximately three quarters of our
//! clients' bearings to the access point to within 2.5° and all clients'
//! bearings to within 14° with 95% confidence."

use crate::sim::{ApArray, Testbed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_linalg::stats::{mean, percentile, t_confidence_interval};
use serde::Serialize;

/// One client's row of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Client id (1–20).
    pub client: usize,
    /// Ground-truth azimuth, degrees.
    pub ground_truth_deg: f64,
    /// Mean estimated azimuth over the packets, degrees (wrapped).
    pub mean_estimate_deg: f64,
    /// Half-width of the 99% Student-t confidence interval, degrees.
    pub ci99_half_width_deg: f64,
    /// Absolute error of the mean estimate, degrees.
    pub mean_error_deg: f64,
    /// Per-packet 95th-percentile absolute error, degrees (the §2.3.1
    /// "with 95% confidence" per-client bound).
    pub p95_error_deg: f64,
    /// Fraction of packets whose frame decoded.
    pub decode_rate: f64,
    /// The paper's note about this client, if any.
    pub note: String,
}

/// The full Figure-5 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Result {
    /// Per-client rows, ordered by client id.
    pub rows: Vec<Fig5Row>,
    /// Packets measured per client.
    pub packets_per_client: usize,
    /// Mean of the 99% CI half-widths across clients (paper: ≈ 7°).
    pub mean_ci99_deg: f64,
    /// Fraction of clients whose *measured bearing* (session mean) is
    /// within 2.5° (the §2.3.1 claim reading we report against the
    /// paper's "approximately three quarters").
    pub frac_within_2p5: f64,
    /// Fraction of clients whose measured bearing is within 14°
    /// (paper: all).
    pub frac_within_14: f64,
    /// Stricter per-packet reading: fraction of clients whose
    /// 95th-percentile *single-packet* error is ≤ 2.5°.
    pub frac_within_2p5_single_packet: f64,
    /// The largest per-client 95%-percentile single-packet error, deg.
    pub max_p95_error_deg: f64,
}

/// Run E1/E2: `packets` pseudospectra per client on the circular-array
/// testbed (the paper uses 10 for Fig 5; use ≥ 20 for a stable 95th
/// percentile).
///
/// Clients are measured in parallel (std scoped threads), one worker
/// per client with a per-client RNG seed, so the result is
/// deterministic in `seed` and independent of scheduling order.
pub fn run(seed: u64, packets: usize) -> Fig5Result {
    assert!(packets >= 2, "need at least two packets per client");
    let tb = Testbed::single_ap(ApArray::Circular, seed);

    let clients = tb.office.clients.clone();
    let mut rows: Vec<Fig5Row> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter()
            .map(|spec| {
                let tb = &tb;
                scope.spawn(move || measure_client(tb, spec, seed, packets))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig5 worker panicked"))
            .collect()
    });
    rows.sort_by_key(|r| r.client);

    let cis: Vec<f64> = rows.iter().map(|r| r.ci99_half_width_deg).collect();
    let p95s: Vec<f64> = rows.iter().map(|r| r.p95_error_deg).collect();
    let means: Vec<f64> = rows.iter().map(|r| r.mean_error_deg).collect();
    let n = rows.len() as f64;
    Fig5Result {
        packets_per_client: packets,
        mean_ci99_deg: mean(&cis),
        frac_within_2p5: means.iter().filter(|&&e| e <= 2.5).count() as f64 / n,
        frac_within_14: means.iter().filter(|&&e| e <= 14.0).count() as f64 / n,
        frac_within_2p5_single_packet: p95s.iter().filter(|&&e| e <= 2.5).count() as f64 / n,
        max_p95_error_deg: p95s.iter().cloned().fold(0.0, f64::max),
        rows,
    }
}

/// Measure one client's Fig-5 row: `packets` captures over a churned
/// session, one packet per ~15 s of environment time (the error bars
/// come from this churn, as in the paper's live office).
fn measure_client(
    tb: &Testbed,
    spec: &crate::office::ClientSpec,
    seed: u64,
    packets: usize,
) -> Fig5Row {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF165 ^ (spec.id as u64).wrapping_mul(0x9E37));
    let truth = tb.office.ground_truth_azimuth_deg(spec.id);
    let mut errors = Vec::with_capacity(packets);
    let mut decoded = 0usize;
    for p in 0..packets {
        let dt_s = 15.0 * p as f64;
        let buf = tb.client_capture(0, spec.id, p as u16, dt_s, &mut rng);
        let obs = match tb.nodes[0].ap.observe(&buf) {
            Ok(o) => o,
            Err(_) => continue,
        };
        if obs.frame.is_some() {
            decoded += 1;
        }
        // Signed wrapped error.
        let mut e = (obs.bearing_deg - truth).rem_euclid(360.0);
        if e > 180.0 {
            e -= 360.0;
        }
        errors.push(e);
    }
    assert!(
        !errors.is_empty(),
        "client {} produced no observations",
        spec.id
    );
    let mean_err = mean(&errors);
    let ci = t_confidence_interval(&errors, 0.99);
    let abs_errors: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
    Fig5Row {
        client: spec.id,
        ground_truth_deg: truth,
        mean_estimate_deg: (truth + mean_err).rem_euclid(360.0),
        ci99_half_width_deg: ci.half_width,
        mean_error_deg: mean_err.abs(),
        p95_error_deg: percentile(&abs_errors, 0.95),
        decode_rate: decoded as f64 / packets as f64,
        note: spec.note.to_string(),
    }
}

/// Render the result as the Fig-5 table plus the headline aggregates.
pub fn render(r: &Fig5Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 5 — measured vs ground-truth bearing ({} packets/client, circular 8-antenna array)\n",
        r.packets_per_client
    ));
    out.push_str(
        "client | truth(deg) | mean est(deg) | 99% CI(±deg) | |err|(deg) | p95|err| | note\n",
    );
    out.push_str(
        "-------+------------+---------------+--------------+-----------+----------+-----\n",
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:6} | {:10.1} | {:13.1} | {:12.2} | {:9.2} | {:8.2} | {}\n",
            row.client,
            row.ground_truth_deg,
            row.mean_estimate_deg,
            row.ci99_half_width_deg,
            row.mean_error_deg,
            row.p95_error_deg,
            row.note
        ));
    }
    out.push_str(&format!(
        "\nmean 99% CI across clients: {:.2} deg   (paper: ~7 deg)\n",
        r.mean_ci99_deg
    ));
    out.push_str(&format!(
        "clients measured within 2.5 deg: {:.0}%   (paper: ~75%)\n",
        100.0 * r.frac_within_2p5
    ));
    out.push_str(&format!(
        "clients measured within 14 deg: {:.0}%   (paper: 100%)\n",
        100.0 * r.frac_within_14
    ));
    out.push_str(&format!(
        "stricter per-packet p95 reading: {:.0}% within 2.5 deg; worst p95 {:.1} deg\n",
        100.0 * r.frac_within_2p5_single_packet,
        r.max_p95_error_deg
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_has_sane_shape() {
        let r = run(42, 3);
        assert_eq!(r.rows.len(), 20);
        assert_eq!(r.packets_per_client, 3);
        for row in &r.rows {
            assert!((0.0..360.0).contains(&row.ground_truth_deg));
            assert!((0.0..360.0).contains(&row.mean_estimate_deg));
            assert!(row.p95_error_deg >= 0.0);
            assert!(row.decode_rate >= 0.0 && row.decode_rate <= 1.0);
        }
        assert!(r.frac_within_14 >= r.frac_within_2p5);
        let txt = render(&r);
        assert!(txt.contains("Figure 5"));
        assert!(txt.contains("client"));
    }

    #[test]
    fn most_clients_are_accurate_even_in_a_tiny_run() {
        let r = run(7, 3);
        let good = r
            .rows
            .iter()
            .filter(|row| row.mean_error_deg < 10.0)
            .count();
        assert!(
            good >= 14,
            "only {}/20 clients within 10 deg: {:?}",
            good,
            r.rows
                .iter()
                .map(|x| (x.client, x.mean_error_deg))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn results_are_deterministic_in_the_seed() {
        let a = run(5, 2);
        let b = run(5, 2);
        for (x, y) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(x.mean_estimate_deg, y.mean_estimate_deg);
        }
    }
}
