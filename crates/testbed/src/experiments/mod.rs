//! Experiment runners: one module per paper artifact.
//!
//! Each module exposes `run(...) -> SerializableResult` and
//! `render(&Result) -> String`; the `sa-bench` crate's `experiments`
//! binary drives them and writes text + JSON artifacts.

pub mod ablations;
pub mod downlink;
pub mod fence;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod mobility;
pub mod rss_baseline;
pub mod snr;
pub mod spoofing;
