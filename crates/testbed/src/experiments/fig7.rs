//! Experiment E4 — Figure 7: antenna count vs resolution and accuracy.
//!
//! Paper: "we show the AoA pseudospectrum plot for the same packet with
//! 2, 4, 6 and 8 antennas in linear arrangement. A two-antenna
//! arrangement generates one peak. Four antennas yield better resolution
//! … However, with four antennas, it is not possible to differentiate
//! two incoming signals within a 45° range … Once six antennas are used
//! … both the direct path and multipath components are visible. With
//! eight antennas, we have even better resolution and more accurate
//! results." The subject is client 12, the one "blocked by the pillar
//! which has strong multipath reflections".

use crate::sim::{ApArray, Testbed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// The antenna counts of Figure 7.
pub const ANTENNA_COUNTS: [usize; 4] = [2, 4, 6, 8];

/// One subplot (one antenna count).
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Number of antennas.
    pub antennas: usize,
    /// Scan angles, degrees (broadside).
    pub angles_deg: Vec<f64>,
    /// Spectrum, dB (peak = 0, floor −30) — the paper's y-axis.
    pub db: Vec<f64>,
    /// Strongest-peak bearing, degrees.
    pub peak_deg: f64,
    /// Absolute bearing error vs the folded ground truth, degrees.
    pub error_deg: f64,
    /// Number of peaks with ≥ 2 dB prominence (resolution proxy).
    pub n_peaks: usize,
    /// Absolute error of the *closest* peak to the truth, degrees — the
    /// "is the direct path visible at all" measure (the strongest peak
    /// may be a reflection, the paper's false-positive case).
    pub nearest_peak_error_deg: f64,
    /// Fraction of the scan grid within 10 dB of the peak. Lower =
    /// a more concentrated spectrum = "more specific signatures"
    /// (paper Fig 7 commentary).
    pub frac_above_m10db: f64,
}

/// The full Fig-7 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// The measured client (12 in the paper).
    pub client: usize,
    /// Ground-truth bearing folded into the ULA's broadside convention,
    /// degrees.
    pub ground_truth_broadside_deg: f64,
    /// One row per antenna count.
    pub rows: Vec<Fig7Row>,
}

/// Fold a global azimuth (deg) into the broadside convention of a ULA
/// lying along +x: θ = 90° − az, mirrored into [−90°, 90°].
pub fn fold_to_broadside_deg(az_deg: f64) -> f64 {
    let mut az = az_deg.rem_euclid(360.0);
    // ULA cannot tell az from 360 − az (reflection across the array
    // line): fold the back half-plane onto the front.
    if az > 180.0 {
        az = 360.0 - az;
    }
    90.0 - az
}

/// Run E4 for a client (paper: 12).
pub fn run(seed: u64, client: usize) -> Fig7Result {
    let mut rows = Vec::with_capacity(ANTENNA_COUNTS.len());
    let office = crate::office::Office::paper_figure4();
    let truth = fold_to_broadside_deg(office.ground_truth_azimuth_deg(client));

    for &k in &ANTENNA_COUNTS {
        // A fresh testbed per count keeps element positions a prefix of
        // the 8-antenna array (ULA construction) with its own calibrated
        // front end; the transmitted packet is identical by seeding.
        let tb = Testbed::single_ap(ApArray::Linear(k), seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF167);
        let buf = tb.client_capture(0, client, 1, 0.0, &mut rng);
        let obs = tb.nodes[0]
            .ap
            .observe(&buf)
            .unwrap_or_else(|e| panic!("{} antennas: {}", k, e));
        let spec = obs.signature.spectrum();
        let db = spec.db(-30.0);
        let peaks = spec.find_peaks(2.0, 8);

        let nearest = peaks
            .iter()
            .map(|p| (p.angle_deg - truth).abs())
            .fold(f64::INFINITY, f64::min);
        let above = db.iter().filter(|&&v| v > -10.0).count() as f64 / db.len() as f64;

        rows.push(Fig7Row {
            antennas: k,
            angles_deg: spec.angles_deg.clone(),
            db,
            peak_deg: obs.bearing_deg,
            error_deg: (obs.bearing_deg - truth).abs(),
            n_peaks: peaks.len(),
            nearest_peak_error_deg: nearest,
            frac_above_m10db: above,
        });
    }

    Fig7Result {
        client,
        ground_truth_broadside_deg: truth,
        rows,
    }
}

/// Render the Fig-7 summary table (the spectra themselves are in the
/// JSON artifact).
pub fn render(r: &Fig7Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 7 — antenna count vs resolution (client {}, linear array; truth {:.1} deg broadside)\n",
        r.client, r.ground_truth_broadside_deg
    ));
    out.push_str("antennas | peak(deg) | |err|(deg) | #peaks | nearest pk err | grid >-10dB\n");
    out.push_str("---------+-----------+------------+--------+----------------+------------\n");
    for row in &r.rows {
        out.push_str(&format!(
            "{:8} | {:9.1} | {:10.2} | {:6} | {:14.2} | {:10.2}\n",
            row.antennas,
            row.peak_deg,
            row.error_deg,
            row.n_peaks,
            row.nearest_peak_error_deg,
            row.frac_above_m10db
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_is_correct() {
        assert!((fold_to_broadside_deg(90.0) - 0.0).abs() < 1e-12);
        assert!((fold_to_broadside_deg(0.0) - 90.0).abs() < 1e-12);
        assert!((fold_to_broadside_deg(180.0) + 90.0).abs() < 1e-12);
        // Back half-plane mirrors onto the front.
        assert!((fold_to_broadside_deg(270.0) - 0.0).abs() < 1e-12);
        assert!((fold_to_broadside_deg(300.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn resolution_improves_with_antennas() {
        let r = run(21, 12);
        assert_eq!(r.rows.len(), 4);
        // Two antennas: at most a couple of broad features.
        assert_eq!(r.rows[0].antennas, 2);
        assert!(
            r.rows[0].n_peaks <= 2,
            "2 antennas found {} peaks",
            r.rows[0].n_peaks
        );
        // 6 and 8 antennas resolve at least as much structure as 2.
        assert!(
            r.rows[3].n_peaks >= r.rows[0].n_peaks,
            "peaks: {:?}",
            r.rows.iter().map(|x| x.n_peaks).collect::<Vec<_>>()
        );
    }

    #[test]
    fn direct_path_is_visible_with_enough_antennas() {
        // The strongest peak may occasionally be a reflection (the
        // paper's false-positive case — client 12 is the multipath-heavy
        // one), but with 6–8 antennas a peak *at* the direct path must
        // exist.
        for seed in [21u64, 23, 25] {
            let r = run(seed, 12);
            for row in r.rows.iter().filter(|x| x.antennas >= 6) {
                assert!(
                    row.nearest_peak_error_deg < 5.0,
                    "seed {} k={} nearest-peak error {:.1}",
                    seed,
                    row.antennas,
                    row.nearest_peak_error_deg
                );
            }
        }
    }

    #[test]
    fn eight_antennas_are_accurate_on_blocked_client() {
        let r = run(21, 12);
        let row8 = r.rows.iter().find(|x| x.antennas == 8).unwrap();
        assert!(
            row8.error_deg < 5.0,
            "8-antenna error {} deg",
            row8.error_deg
        );
    }

    #[test]
    fn render_mentions_all_counts() {
        let r = run(25, 12);
        let txt = render(&r);
        for k in ANTENNA_COUNTS {
            assert!(txt.contains(&format!("{:8} |", k)));
        }
    }
}
