//! Experiment E6 — virtual fence and multi-AP localization (§2.3.1).
//!
//! Three circular-array APs compute direct-path bearings for each
//! transmitter; the bearing lines are intersected ([`mod@secureangle::localize`])
//! and the fix is tested against the building-outline fence. Inside
//! transmitters are the 20 testbed clients; outside transmitters stand
//! around the building perimeter (with boosted power — an attacker wants
//! to be heard).

use crate::sim::Testbed;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_channel::geom::{pt, Point};
use sa_channel::pattern::TxAntenna;
use secureangle::fence::{FenceConfig, FenceDecision, VirtualFence};
use secureangle::localize::BearingObservation;
use serde::Serialize;

/// One transmitter's fence trial.
#[derive(Debug, Clone, Serialize)]
pub struct FenceTrial {
    /// Label ("client 7" or "outside NE").
    pub label: String,
    /// True position.
    pub true_x: f64,
    /// True position.
    pub true_y: f64,
    /// Truly inside the fence?
    pub truly_inside: bool,
    /// Number of APs that produced a bearing.
    pub n_bearings: usize,
    /// Localization error, meters (NaN if no fix).
    pub location_error_m: f64,
    /// The decision ("inside"/"outside"/"unreliable"/"no-fix").
    pub decision: String,
    /// Was the frame admitted?
    pub admitted: bool,
    /// Was the decision correct (admit inside, drop outside)?
    pub correct: bool,
}

/// The E6 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct FenceResult {
    /// All trials.
    pub trials: Vec<FenceTrial>,
    /// Median localization error over inside clients with a fix, m.
    pub median_inside_error_m: f64,
    /// Classification accuracy over all trials.
    pub accuracy: f64,
    /// Fraction of outside transmitters admitted (security failures).
    pub outside_admitted: f64,
}

/// Positions just outside the 30×16 building.
pub fn outside_positions() -> Vec<(String, Point)> {
    vec![
        ("outside E".into(), pt(33.0, 8.0)),
        ("outside W".into(), pt(-3.0, 8.0)),
        ("outside N".into(), pt(15.0, 19.0)),
        ("outside S".into(), pt(15.0, -3.0)),
        ("outside NE".into(), pt(32.0, 17.5)),
        ("outside SW".into(), pt(-2.0, -1.5)),
        ("parking lot".into(), pt(36.0, 2.0)),
        ("street".into(), pt(8.0, 20.5)),
    ]
}

/// Run E6 with `packets` captures per transmitter (bearings averaged
/// across packets per AP before intersection).
pub fn run(seed: u64, packets: usize) -> FenceResult {
    let tb = Testbed::multi_ap(seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfe2ce);
    let fence = VirtualFence::new(tb.office.fence_polygon(), FenceConfig::default());

    let mut trials = Vec::new();

    // Inside: the 20 clients.
    for spec in tb.office.clients.clone() {
        let frame = tb.client_frame(spec.id, 1);
        let trial = run_one(
            &tb,
            &fence,
            &format!("client {}", spec.id),
            spec.position,
            &frame,
            1.0,
            packets,
            &mut rng,
        );
        trials.push(trial);
    }

    // Outside: perimeter attackers with 20 dB boosted power.
    for (label, pos) in outside_positions() {
        let frame = tb.client_frame(1, 99); // spoofs client 1's MAC
        let trial = run_one(&tb, &fence, &label, pos, &frame, 100.0, packets, &mut rng);
        trials.push(trial);
    }

    let inside_errors: Vec<f64> = trials
        .iter()
        .filter(|t| t.truly_inside && t.location_error_m.is_finite())
        .map(|t| t.location_error_m)
        .collect();
    let n_outside = trials.iter().filter(|t| !t.truly_inside).count();
    let outside_admitted = trials
        .iter()
        .filter(|t| !t.truly_inside && t.admitted)
        .count() as f64
        / n_outside.max(1) as f64;
    let accuracy = trials.iter().filter(|t| t.correct).count() as f64 / trials.len().max(1) as f64;

    FenceResult {
        median_inside_error_m: sa_linalg::stats::median(&inside_errors),
        accuracy,
        outside_admitted,
        trials,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    tb: &Testbed,
    fence: &VirtualFence,
    label: &str,
    pos: Point,
    frame: &sa_mac::Frame,
    tx_power: f64,
    packets: usize,
    rng: &mut ChaCha8Rng,
) -> FenceTrial {
    // Collect per-AP bearing estimates (circular mean over packets).
    let mut bearings = Vec::new();
    for node in 0..tb.nodes.len() {
        let mut sin_sum = 0.0f64;
        let mut cos_sum = 0.0f64;
        let mut got = 0usize;
        for p in 0..packets {
            let buf = tb.capture(
                node,
                pos,
                &TxAntenna::Omni,
                tx_power,
                frame,
                p as f64 * 0.01,
                rng,
            );
            if let Ok(obs) = tb.nodes[node].ap.observe(&buf) {
                if let Some(az) = obs.global_azimuth {
                    sin_sum += az.sin();
                    cos_sum += az.cos();
                    got += 1;
                }
            }
        }
        if got > 0 {
            bearings.push(BearingObservation {
                ap_position: tb.nodes[node].ap.config().position,
                azimuth: sin_sum.atan2(cos_sum),
            });
        }
    }

    let truly_inside = sa_channel::geom::point_in_polygon(pos, fence.polygon());
    let decision = fence.decide(&bearings);
    let (name, err, admitted) = match &decision {
        FenceDecision::Inside(f) => ("inside", f.position.dist(pos), true),
        FenceDecision::Outside(f) => ("outside", f.position.dist(pos), false),
        FenceDecision::Unreliable(f) => ("unreliable", f.position.dist(pos), false),
        FenceDecision::NoFix(_) => ("no-fix", f64::NAN, false),
    };
    FenceTrial {
        label: label.to_string(),
        true_x: pos.x,
        true_y: pos.y,
        truly_inside,
        n_bearings: bearings.len(),
        location_error_m: err,
        decision: name.to_string(),
        admitted,
        correct: admitted == truly_inside,
    }
}

/// Render E6.
pub fn render(r: &FenceResult) -> String {
    let mut out = String::new();
    out.push_str("E6 — virtual fence (3 APs, bearing intersection)\n");
    out.push_str("transmitter     | inside? | #brg | loc err(m) | decision   | ok\n");
    out.push_str("----------------+---------+------+------------+------------+---\n");
    for t in &r.trials {
        out.push_str(&format!(
            "{:<16}| {:^7} | {:4} | {:10.2} | {:<10} | {}\n",
            t.label,
            if t.truly_inside { "yes" } else { "no" },
            t.n_bearings,
            t.location_error_m,
            t.decision,
            if t.correct { "y" } else { "N" }
        ));
    }
    out.push_str(&format!(
        "\nmedian inside localization error: {:.2} m\nclassification accuracy: {:.1}%\noutside transmitters admitted: {:.1}%\n",
        r.median_inside_error_m,
        100.0 * r.accuracy,
        100.0 * r.outside_admitted
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outside_positions_are_outside() {
        let office = crate::office::Office::paper_figure4();
        for (label, p) in outside_positions() {
            assert!(
                !sa_channel::geom::point_in_polygon(p, &office.outline),
                "{} is inside",
                label
            );
        }
    }

    #[test]
    fn small_fence_run_mostly_correct() {
        let r = run(41, 2);
        assert_eq!(r.trials.len(), 28);
        assert!(
            r.accuracy > 0.7,
            "accuracy {:.2}; trials: {:?}",
            r.accuracy,
            r.trials
                .iter()
                .map(|t| (t.label.clone(), t.decision.clone(), t.correct))
                .collect::<Vec<_>>()
        );
        assert!(
            r.outside_admitted < 0.3,
            "outside admitted {:.2}",
            r.outside_admitted
        );
        assert!(
            r.median_inside_error_m < 3.0,
            "median error {}",
            r.median_inside_error_m
        );
    }
}
