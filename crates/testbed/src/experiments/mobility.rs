//! Experiment E10 — mobility tracking (paper §5 future work,
//! implemented).
//!
//! A client walks a waypoint route through the office at ~1.3 m/s,
//! transmitting twice a second. Three APs localize each packet; an α–β
//! tracker smooths the fixes into a trace. We report raw-fix RMSE vs
//! tracked RMSE against the ground-truth path — the quantitative version
//! of "track the mobility trace with multiple APs".

use crate::sim::Testbed;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_channel::geom::{pt, Point};
use sa_channel::pattern::TxAntenna;
use secureangle::localize::{localize, BearingObservation};
use secureangle::tracking::{MobilityTracker, TrackerConfig};
use serde::Serialize;

/// One sample along the walk.
#[derive(Debug, Clone, Serialize)]
pub struct MobilitySample {
    /// Time since the walk started, seconds.
    pub t_s: f64,
    /// Ground-truth position.
    pub truth: (f64, f64),
    /// Raw multilateration fix (None if localization failed).
    pub raw_fix: Option<(f64, f64)>,
    /// Tracked (smoothed) position.
    pub tracked: Option<(f64, f64)>,
}

/// The E10 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct MobilityResult {
    /// Per-packet samples.
    pub samples: Vec<MobilitySample>,
    /// RMSE of the raw fixes, meters.
    pub raw_rmse_m: f64,
    /// RMSE of the tracked trace, meters.
    pub tracked_rmse_m: f64,
    /// Fraction of packets that produced a usable fix.
    pub fix_rate: f64,
}

/// The walked route: a loop through the AP's room and the corridor area.
pub fn route() -> Vec<Point> {
    vec![
        pt(10.0, 4.0),
        pt(18.0, 4.0),
        pt(20.5, 9.0),
        pt(16.0, 11.0),
        pt(10.5, 7.5),
        pt(10.0, 4.0),
    ]
}

/// Position along a waypoint route after walking `dist` meters.
fn position_at(route: &[Point], dist: f64) -> Point {
    let mut remaining = dist;
    for w in route.windows(2) {
        let seg_len = w[0].dist(w[1]);
        if remaining <= seg_len {
            let t = remaining / seg_len;
            return pt(
                w[0].x + t * (w[1].x - w[0].x),
                w[0].y + t * (w[1].y - w[0].y),
            );
        }
        remaining -= seg_len;
    }
    *route.last().expect("route has points")
}

/// Run E10: walk the route at `speed` m/s with a fix attempt every
/// `period_s` seconds.
pub fn run(seed: u64, speed: f64, period_s: f64) -> MobilityResult {
    let tb = Testbed::multi_ap(seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x30b1);
    let route = route();
    let total_len: f64 = route.windows(2).map(|w| w[0].dist(w[1])).sum();
    let n_steps = (total_len / (speed * period_s)).floor() as usize;

    let mut tracker = MobilityTracker::new(TrackerConfig::default());
    let mut samples = Vec::with_capacity(n_steps);
    let mut raw_sq = 0.0;
    let mut raw_n = 0usize;
    let mut trk_sq = 0.0;
    let mut trk_n = 0usize;

    for k in 0..n_steps {
        let t_s = k as f64 * period_s;
        let truth = position_at(&route, speed * t_s);
        let frame = tb.client_frame(1, k as u16);

        // Each AP measures a bearing for this packet.
        let mut bearings = Vec::new();
        for node in 0..tb.nodes.len() {
            let buf = tb.capture(node, truth, &TxAntenna::Omni, 1.0, &frame, t_s, &mut rng);
            if let Ok(obs) = tb.nodes[node].ap.observe(&buf) {
                if let Some(az) = obs.global_azimuth {
                    bearings.push(BearingObservation {
                        ap_position: tb.nodes[node].ap.config().position,
                        azimuth: az,
                    });
                }
            }
        }

        let raw_fix = localize(&bearings).ok().map(|f| f.position);
        let tracked = raw_fix.map(|f| tracker.update(f, period_s).position);

        if let Some(f) = raw_fix {
            raw_sq += f.dist(truth).powi(2);
            raw_n += 1;
        }
        if let Some(p) = tracked {
            trk_sq += p.dist(truth).powi(2);
            trk_n += 1;
        }
        samples.push(MobilitySample {
            t_s,
            truth: (truth.x, truth.y),
            raw_fix: raw_fix.map(|f| (f.x, f.y)),
            tracked: tracked.map(|p| (p.x, p.y)),
        });
    }

    MobilityResult {
        raw_rmse_m: (raw_sq / raw_n.max(1) as f64).sqrt(),
        tracked_rmse_m: (trk_sq / trk_n.max(1) as f64).sqrt(),
        fix_rate: raw_n as f64 / n_steps.max(1) as f64,
        samples,
    }
}

/// Render E10.
pub fn render(r: &MobilityResult) -> String {
    let mut out = String::new();
    out.push_str("E10 — mobility tracking (3 APs, walking client)\n");
    out.push_str(&format!(
        "packets: {}   fix rate: {:.0}%\nraw multilateration RMSE: {:.2} m\nalpha-beta tracked RMSE:  {:.2} m\n",
        r.samples.len(),
        100.0 * r.fix_rate,
        r.raw_rmse_m,
        r.tracked_rmse_m
    ));
    out.push_str("\n    t(s) | truth        | raw fix      | tracked\n");
    out.push_str("---------+--------------+--------------+-------------\n");
    for s in r.samples.iter().step_by((r.samples.len() / 12).max(1)) {
        let fmt = |p: &Option<(f64, f64)>| match p {
            Some((x, y)) => format!("({:5.1},{:5.1})", x, y),
            None => "    lost     ".to_string(),
        };
        out.push_str(&format!(
            "{:8.1} | ({:5.1},{:5.1}) | {} | {}\n",
            s.t_s,
            s.truth.0,
            s.truth.1,
            fmt(&s.raw_fix),
            fmt(&s.tracked)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_interpolation() {
        let r = vec![pt(0.0, 0.0), pt(10.0, 0.0), pt(10.0, 5.0)];
        assert!(position_at(&r, 0.0).dist(pt(0.0, 0.0)) < 1e-12);
        assert!(position_at(&r, 5.0).dist(pt(5.0, 0.0)) < 1e-12);
        assert!(position_at(&r, 12.0).dist(pt(10.0, 2.0)) < 1e-12);
        assert!(position_at(&r, 99.0).dist(pt(10.0, 5.0)) < 1e-12);
    }

    #[test]
    fn walking_client_is_tracked() {
        let r = run(81, 1.3, 1.0);
        assert!(r.samples.len() > 10);
        assert!(r.fix_rate > 0.8, "fix rate {:.2}", r.fix_rate);
        assert!(
            r.tracked_rmse_m < 2.5,
            "tracked RMSE {:.2} m",
            r.tracked_rmse_m
        );
        // Tracking should not be dramatically worse than raw fixes (it
        // lags a moving target slightly but suppresses outliers).
        assert!(
            r.tracked_rmse_m < r.raw_rmse_m * 1.5 + 0.5,
            "tracked {:.2} vs raw {:.2}",
            r.tracked_rmse_m,
            r.raw_rmse_m
        );
    }

    #[test]
    fn render_has_summary() {
        let r = run(83, 1.3, 2.0);
        let txt = render(&r);
        assert!(txt.contains("RMSE"));
        assert!(txt.contains("fix rate"));
    }
}
