//! Experiment E11 — downlink beamforming from uplink AoA (paper §5
//! future work, implemented as a gain study).
//!
//! For every testbed client: measure the uplink bearing from one packet,
//! steer a transmit beam at it, and compute the realized power gain at
//! the client's true direction versus (a) a single omni antenna and
//! (b) a perfectly-steered beam. Translates Fig-5 bearing accuracy into
//! the "higher throughput and better reliability" the paper projects.

use crate::sim::{ApArray, Testbed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use secureangle::downlink::{beamforming_gain_db, bearing_tolerance_deg};
use serde::Serialize;

/// One client's downlink row.
#[derive(Debug, Clone, Serialize)]
pub struct DownlinkRow {
    /// Client id.
    pub client: usize,
    /// Uplink bearing error, degrees.
    pub bearing_error_deg: f64,
    /// Realized beamforming gain over omni, dB.
    pub realized_gain_db: f64,
    /// Loss versus a perfectly-steered beam, dB.
    pub loss_vs_perfect_db: f64,
}

/// The E11 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct DownlinkResult {
    /// Per-client rows.
    pub rows: Vec<DownlinkRow>,
    /// Perfect-steering gain, dB (10·log10 M).
    pub perfect_gain_db: f64,
    /// Median realized gain, dB.
    pub median_gain_db: f64,
    /// Fraction of clients within 1 dB of the perfect beam.
    pub frac_within_1db: f64,
    /// The array's 3 dB bearing tolerance, degrees.
    pub tolerance_3db_deg: f64,
}

/// Run E11 over all 20 clients.
pub fn run(seed: u64) -> DownlinkResult {
    let tb = Testbed::single_ap(ApArray::Circular, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xd01);
    let array = tb.nodes[0].ap.config().array.clone();
    let perfect = beamforming_gain_db(&array, 1.0, 1.0);

    let mut rows = Vec::new();
    for spec in tb.office.clients.clone() {
        let truth_deg = tb.office.ground_truth_azimuth_deg(spec.id);
        let buf = tb.client_capture(0, spec.id, 1, 0.0, &mut rng);
        let Ok(obs) = tb.nodes[0].ap.observe(&buf) else {
            continue;
        };
        let Some(az_hat) = obs.global_azimuth else {
            continue;
        };
        let realized = beamforming_gain_db(&array, az_hat, truth_deg.to_radians());
        rows.push(DownlinkRow {
            client: spec.id,
            bearing_error_deg: sa_aoa::pseudospectrum::angle_diff_deg(
                az_hat.to_degrees(),
                truth_deg,
                true,
            ),
            realized_gain_db: realized,
            loss_vs_perfect_db: perfect - realized,
        });
    }

    let gains: Vec<f64> = rows.iter().map(|r| r.realized_gain_db).collect();
    DownlinkResult {
        perfect_gain_db: perfect,
        median_gain_db: sa_linalg::stats::median(&gains),
        frac_within_1db: rows.iter().filter(|r| r.loss_vs_perfect_db <= 1.0).count() as f64
            / rows.len().max(1) as f64,
        tolerance_3db_deg: bearing_tolerance_deg(&array, 1.0, 3.0),
        rows,
    }
}

/// Render E11.
pub fn render(r: &DownlinkResult) -> String {
    let mut out = String::new();
    out.push_str("E11 — downlink beamforming gain from uplink AoA (8-antenna octagon)\n");
    out.push_str(&format!(
        "perfect-steering gain: {:.2} dB; 3 dB bearing tolerance: ±{:.1} deg\n\n",
        r.perfect_gain_db, r.tolerance_3db_deg
    ));
    out.push_str("client | brg err(deg) | gain(dB) | loss vs perfect(dB)\n");
    out.push_str("-------+--------------+----------+--------------------\n");
    for row in &r.rows {
        out.push_str(&format!(
            "{:6} | {:12.2} | {:8.2} | {:18.2}\n",
            row.client, row.bearing_error_deg, row.realized_gain_db, row.loss_vs_perfect_db
        ));
    }
    out.push_str(&format!(
        "\nmedian realized gain: {:.2} dB over omni; {:.0}% of clients within 1 dB of perfect\n",
        r.median_gain_db,
        100.0 * r.frac_within_1db
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_clients_get_near_full_gain() {
        let r = run(91);
        assert!(r.rows.len() >= 18, "rows {}", r.rows.len());
        assert!((r.perfect_gain_db - 9.03).abs() < 0.01);
        assert!(
            r.median_gain_db > r.perfect_gain_db - 1.5,
            "median gain {:.2} vs perfect {:.2}",
            r.median_gain_db,
            r.perfect_gain_db
        );
        assert!(
            r.frac_within_1db > 0.6,
            "within 1 dB: {}",
            r.frac_within_1db
        );
    }

    #[test]
    fn gain_correlates_with_bearing_error() {
        let r = run(93);
        // The worst-bearing client should lose the most gain.
        let worst = r
            .rows
            .iter()
            .max_by(|a, b| {
                a.bearing_error_deg
                    .partial_cmp(&b.bearing_error_deg)
                    .unwrap()
            })
            .unwrap();
        let best = r
            .rows
            .iter()
            .min_by(|a, b| {
                a.bearing_error_deg
                    .partial_cmp(&b.bearing_error_deg)
                    .unwrap()
            })
            .unwrap();
        assert!(
            worst.loss_vs_perfect_db >= best.loss_vs_perfect_db,
            "worst {:?} best {:?}",
            worst,
            best
        );
    }
}
