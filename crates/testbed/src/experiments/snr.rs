//! Experiment E9 — robustness of the single-packet operating point.
//!
//! The paper's §2.3.1 accuracy claim is "after overhearing just one
//! packet". This experiment maps where that holds: bearing error and
//! packet-detection rate as functions of SNR, and the improvement from
//! averaging bearings over multiple packets.

use crate::sim::{ApArray, Testbed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_aoa::pseudospectrum::angle_diff_deg;
use serde::Serialize;

/// One SNR operating point.
#[derive(Debug, Clone, Serialize)]
pub struct SnrPoint {
    /// Nominal SNR at the AP for the probe client, dB.
    pub snr_db: f64,
    /// Fraction of packets detected.
    pub detection_rate: f64,
    /// Median absolute bearing error over detected packets, degrees.
    pub median_error_deg: f64,
    /// 90th-percentile absolute error, degrees.
    pub p90_error_deg: f64,
}

/// One packet-averaging operating point.
#[derive(Debug, Clone, Serialize)]
pub struct AveragingPoint {
    /// Packets averaged per bearing estimate.
    pub packets: usize,
    /// Median absolute error of the averaged bearing, degrees.
    pub median_error_deg: f64,
}

/// The E9 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct SnrResult {
    /// Probe client.
    pub client: usize,
    /// SNR sweep.
    pub sweep: Vec<SnrPoint>,
    /// Packet-averaging sweep at the default noise floor.
    pub averaging: Vec<AveragingPoint>,
}

/// Run E9 on a mid-range client with `trials` packets per point.
pub fn run(seed: u64, client: usize, trials: usize) -> SnrResult {
    let base = Testbed::single_ap(ApArray::Circular, seed);
    let truth = base.office.ground_truth_azimuth_deg(client);
    // Reference received power for this client (sets SNR per noise floor).
    let rx_pow = base.rx_power_from(0, base.office.client(client).position);

    let mut sweep = Vec::new();
    for &snr_db in &[-5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
        let mut tb = Testbed::single_ap(ApArray::Circular, seed);
        // Rebuild the front end with the noise floor for this SNR and
        // recalibrate.
        let noise = rx_pow / sa_sigproc::iq::from_db(snr_db);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x539 ^ snr_db.to_bits());
        let fe = sa_array::rf::FrontEnd::random(8, noise, &mut rng);
        tb.nodes[0].ap.calibrate(&fe, &mut rng);
        tb.nodes[0].front_end = fe;

        let mut errors = Vec::new();
        let mut detected = 0usize;
        for p in 0..trials {
            let buf = tb.client_capture(0, client, p as u16, 0.0, &mut rng);
            if let Ok(obs) = tb.nodes[0].ap.observe(&buf) {
                detected += 1;
                errors.push(angle_diff_deg(obs.bearing_deg, truth, true));
            }
        }
        sweep.push(SnrPoint {
            snr_db,
            detection_rate: detected as f64 / trials as f64,
            median_error_deg: sa_linalg::stats::median(&errors),
            p90_error_deg: sa_linalg::stats::percentile(&errors, 0.9),
        });
    }

    // Packet averaging at the default floor.
    let mut averaging = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xaea);
    for &k in &[1usize, 2, 5, 10] {
        let mut errs = Vec::new();
        for trial in 0..trials.max(4) / 2 {
            let mut sin_sum = 0.0;
            let mut cos_sum = 0.0;
            let mut got = 0;
            for p in 0..k {
                let buf = base.client_capture(0, client, (trial * 32 + p) as u16, 0.0, &mut rng);
                if let Ok(obs) = base.nodes[0].ap.observe(&buf) {
                    let az = obs.bearing_deg.to_radians();
                    sin_sum += az.sin();
                    cos_sum += az.cos();
                    got += 1;
                }
            }
            if got > 0 {
                let mean_deg = sin_sum.atan2(cos_sum).to_degrees().rem_euclid(360.0);
                errs.push(angle_diff_deg(mean_deg, truth, true));
            }
        }
        averaging.push(AveragingPoint {
            packets: k,
            median_error_deg: sa_linalg::stats::median(&errs),
        });
    }

    SnrResult {
        client,
        sweep,
        averaging,
    }
}

/// Render E9.
pub fn render(r: &SnrResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E9 — SNR robustness of single-packet bearings (client {})\n",
        r.client
    ));
    out.push_str("SNR(dB) | detect rate | median err(deg) | p90 err(deg)\n");
    out.push_str("--------+-------------+-----------------+-------------\n");
    for p in &r.sweep {
        out.push_str(&format!(
            "{:7.0} | {:11.2} | {:15.2} | {:11.2}\n",
            p.snr_db, p.detection_rate, p.median_error_deg, p.p90_error_deg
        ));
    }
    out.push_str("\npackets averaged | median err(deg)\n");
    out.push_str("-----------------+----------------\n");
    for a in &r.averaging {
        out.push_str(&format!("{:16} | {:14.2}\n", a.packets, a.median_error_deg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_improves_with_snr() {
        let r = run(71, 5, 4);
        let lo = r.sweep.first().unwrap();
        let hi = r.sweep.last().unwrap();
        assert!(hi.detection_rate >= lo.detection_rate);
        assert!(
            hi.detection_rate > 0.9,
            "high-SNR detection {:.2}",
            hi.detection_rate
        );
    }

    #[test]
    fn high_snr_bearings_are_accurate() {
        let r = run(73, 5, 4);
        let hi = r.sweep.last().unwrap();
        assert!(
            hi.median_error_deg < 5.0,
            "30 dB median error {:.2}",
            hi.median_error_deg
        );
    }

    #[test]
    fn averaging_never_hurts_much() {
        let r = run(75, 5, 4);
        let one = r.averaging.first().unwrap().median_error_deg;
        let ten = r.averaging.last().unwrap().median_error_deg;
        assert!(
            ten <= one + 1.0,
            "averaging made it worse: 1 pkt {:.2} vs 10 pkt {:.2}",
            one,
            ten
        );
    }
}
