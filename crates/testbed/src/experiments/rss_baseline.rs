//! Experiment E7 — RSS signalprints vs AoA signatures (§4).
//!
//! The paper's related-work argument, made quantitative: "attackers with
//! directional antennas can subvert RSS-based systems" while the same
//! attacker cannot move its angle-of-arrival. For each attacker
//! position, the directional attacker aims at the AP and power-controls
//! so the AP's received power matches the victim's; we then ask both
//! detectors — RSS signalprint and SecureAngle — whether they flag the
//! injected frames.

use crate::sim::{ApArray, Testbed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use secureangle::attacker::{Attacker, AttackerGear};
use secureangle::rss::{RssDetector, RssPrint};
use secureangle::signature::MatchConfig;
use serde::Serialize;

/// One attacker position's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct RssTrial {
    /// Attacker stand-in client id (position source).
    pub position_of: usize,
    /// RSS error after power matching, dB.
    pub rss_error_db: f64,
    /// Did the RSS detector flag the attacker?
    pub rss_flagged: bool,
    /// SecureAngle match score of the attacker.
    pub aoa_score: f64,
    /// Did SecureAngle flag the attacker?
    pub aoa_flagged: bool,
}

/// The E7 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct RssBaselineResult {
    /// Victim client id.
    pub victim: usize,
    /// Per-packet RSS jitter (std dev, dB) of the *legitimate* victim —
    /// sets the floor for any usable RSS tolerance.
    pub victim_rss_std_db: f64,
    /// RSS tolerance used, dB.
    pub rss_tolerance_db: f64,
    /// Trials.
    pub trials: Vec<RssTrial>,
    /// Fraction of attackers the RSS detector missed.
    pub rss_miss_rate: f64,
    /// Fraction of attackers SecureAngle missed.
    pub aoa_miss_rate: f64,
}

/// Run E7: victim trains both detectors; a directional, power-matching
/// attacker tries from every other client position.
pub fn run(seed: u64, victim: usize) -> RssBaselineResult {
    let tb = Testbed::single_ap(ApArray::Circular, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x255b);
    let mcfg = MatchConfig::default();
    let aoa_threshold = secureangle::spoof::SpoofConfig::default().threshold;

    // --- Train both detectors on the victim -------------------------
    let victim_pos = tb.office.client(victim).position;
    let buf = tb.client_capture(0, victim, 0, 0.0, &mut rng);
    let obs = tb.nodes[0].ap.observe(&buf).expect("victim training");
    let profile_sig = obs.signature.clone();

    // Victim RSS statistics over a few packets (for the print and its
    // natural jitter).
    let mut rss_samples = Vec::new();
    for p in 0..8 {
        let buf = tb.client_capture(0, victim, 1 + p, 0.0, &mut rng);
        if let Ok(o) = tb.nodes[0].ap.observe(&buf) {
            rss_samples.push(o.rss_db);
        }
    }
    let victim_rss_mean = sa_linalg::stats::mean(&rss_samples);
    let victim_rss_std = sa_linalg::stats::std_dev(&rss_samples);
    // Tolerance: 3× the victim's own jitter, at least 3 dB — tighter
    // would false-flag the victim itself.
    let tol = (3.0 * victim_rss_std).max(3.0);
    let mut rss_det = RssDetector::new(tol, 0.2);
    rss_det.train(
        Testbed::client_mac(victim),
        RssPrint::single(victim_rss_mean),
    );

    // --- Attack from every other position ----------------------------
    let ap_pos = tb.nodes[0].ap.config().position;
    let victim_rx_pow = tb.rx_power_from(0, victim_pos);
    let frame = tb.client_frame(victim, 500);
    let mut trials = Vec::new();
    for other in tb.office.clients.clone() {
        if other.id == victim {
            continue;
        }
        let mut attacker = Attacker::new(
            other.position,
            AttackerGear::Directional {
                gain_dbi: 14.0,
                order: 4.0,
            },
            Testbed::client_mac(victim),
        );
        let own_pow = tb.rx_power_from(0, other.position);
        if own_pow <= 0.0 {
            continue;
        }
        // The directional pattern changes the effective radiated power;
        // account for boresight gain when power matching (the attacker
        // calibrates with its real antenna, so it would too).
        let antenna = attacker.antenna_toward(ap_pos);
        let boresight = antenna.power_gain(other.position.azimuth_to(ap_pos));
        attacker.match_rss(victim_rx_pow, own_pow * boresight);

        let buf = tb.capture(
            0,
            attacker.position,
            &antenna,
            attacker.tx_power,
            &frame,
            0.0,
            &mut rng,
        );
        let Ok(obs) = tb.nodes[0].ap.observe(&buf) else {
            continue;
        };
        let rss_verdict = rss_det.check(Testbed::client_mac(victim), &RssPrint::single(obs.rss_db));
        let aoa_score = profile_sig.compare(&obs.signature, &mcfg).score;
        trials.push(RssTrial {
            position_of: other.id,
            rss_error_db: (obs.rss_db - victim_rss_mean).abs(),
            rss_flagged: rss_verdict.is_mismatch(),
            aoa_score,
            aoa_flagged: aoa_score < aoa_threshold,
        });
    }

    let n = trials.len().max(1) as f64;
    RssBaselineResult {
        victim,
        victim_rss_std_db: victim_rss_std,
        rss_tolerance_db: tol,
        rss_miss_rate: trials.iter().filter(|t| !t.rss_flagged).count() as f64 / n,
        aoa_miss_rate: trials.iter().filter(|t| !t.aoa_flagged).count() as f64 / n,
        trials,
    }
}

/// Render E7.
pub fn render(r: &RssBaselineResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E7 — RSS signalprint vs SecureAngle under a power-matching directional attacker (victim: client {})\n",
        r.victim
    ));
    out.push_str(&format!(
        "victim RSS jitter: {:.2} dB; RSS tolerance: {:.2} dB\n",
        r.victim_rss_std_db, r.rss_tolerance_db
    ));
    out.push_str("attacker at | RSS err(dB) | RSS flags? | AoA score | AoA flags?\n");
    out.push_str("------------+-------------+------------+-----------+-----------\n");
    for t in &r.trials {
        out.push_str(&format!(
            "client {:4} | {:11.2} | {:^10} | {:9.3} | {:^9}\n",
            t.position_of,
            t.rss_error_db,
            if t.rss_flagged { "yes" } else { "NO" },
            t.aoa_score,
            if t.aoa_flagged { "yes" } else { "NO" }
        ));
    }
    out.push_str(&format!(
        "\nRSS miss rate: {:.1}%   AoA miss rate: {:.1}%   (paper: directional antennas subvert RSS; AoA holds)\n",
        100.0 * r.rss_miss_rate,
        100.0 * r.aoa_miss_rate
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_subverted_aoa_is_not() {
        let r = run(51, 5);
        assert!(r.trials.len() >= 15, "only {} trials", r.trials.len());
        // The headline comparison: the power-matching attacker slips
        // past RSS far more often than past the AoA signature.
        assert!(
            r.rss_miss_rate > r.aoa_miss_rate + 0.3,
            "RSS miss {:.2} vs AoA miss {:.2}",
            r.rss_miss_rate,
            r.aoa_miss_rate
        );
        assert!(
            r.aoa_miss_rate < 0.25,
            "AoA missed too many: {:.2}",
            r.aoa_miss_rate
        );
    }

    #[test]
    fn power_matching_actually_matches() {
        let r = run(53, 5);
        let median_err =
            sa_linalg::stats::median(&r.trials.iter().map(|t| t.rss_error_db).collect::<Vec<_>>());
        assert!(
            median_err < r.rss_tolerance_db,
            "median RSS error {:.2} dB exceeds tolerance {:.2}",
            median_err,
            r.rss_tolerance_db
        );
    }
}
