//! Experiment E3 — Figure 6: stability of AoA signatures over time.
//!
//! Paper: "each subplot of Figure 6 is composed of pseudospectra
//! generated from packets recorded zero, one, 10, 100 and 1000 seconds,
//! as well as one hour and one day later, all from the same client …
//! the direct-path peak is quite stable while the multipath reflection
//! peaks (smaller peaks) sometimes vary. From minute to minute,
//! pseudospectra are quite stable."
//!
//! Clients 2 (another room), 5 (near, same room) and 10 (far, same
//! room), linear AP arrangement — exactly the paper's pick.

use crate::sim::{ApArray, Testbed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_aoa::pseudospectrum::angle_diff_deg;
use secureangle::signature::{AoaSignature, MatchConfig};
use serde::Serialize;

/// The paper's capture schedule, seconds.
pub const TIME_POINTS_S: [f64; 7] = [0.0, 1.0, 10.0, 100.0, 1000.0, 3600.0, 86_400.0];

/// One pseudospectrum capture at one time point.
#[derive(Debug, Clone, Serialize)]
pub struct SpectrumCapture {
    /// Seconds after the first capture.
    pub dt_s: f64,
    /// Scan angles, degrees (broadside convention, linear array).
    pub angles_deg: Vec<f64>,
    /// Spectrum in dB (peak = 0, floored at −30 dB) — the paper's y-axis.
    pub db: Vec<f64>,
    /// Direct-path (strongest-peak) bearing, degrees.
    pub peak_deg: f64,
    /// Match score against the dt = 0 signature.
    pub score_vs_t0: f64,
}

/// One client's Fig-6 subplot.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Client {
    /// Client id.
    pub client: usize,
    /// Captures at each time point (same order as [`TIME_POINTS_S`]).
    pub captures: Vec<SpectrumCapture>,
    /// Maximum drift of the strongest peak across time, degrees.
    pub max_peak_drift_deg: f64,
    /// Minimum self-match score across time.
    pub min_score: f64,
}

/// The full Fig-6 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Result {
    /// Per-client subplots (clients 2, 5, 10).
    pub clients: Vec<Fig6Client>,
}

/// Run E3 on the paper's three clients.
pub fn run(seed: u64) -> Fig6Result {
    run_for_clients(seed, &[2, 5, 10])
}

/// Run E3 for an arbitrary client set.
pub fn run_for_clients(seed: u64, ids: &[usize]) -> Fig6Result {
    let tb = Testbed::single_ap(ApArray::Linear(8), seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF166);
    let mcfg = MatchConfig::default();

    let mut clients = Vec::with_capacity(ids.len());
    for &id in ids {
        let mut captures: Vec<SpectrumCapture> = Vec::with_capacity(TIME_POINTS_S.len());
        let mut base_sig: Option<AoaSignature> = None;
        for &dt in &TIME_POINTS_S {
            let buf = tb.client_capture(0, id, 1, dt, &mut rng);
            let obs = tb.nodes[0]
                .ap
                .observe(&buf)
                .unwrap_or_else(|e| panic!("client {} dt {}: {}", id, dt, e));
            let sig = obs.signature.clone();
            let score = match &base_sig {
                None => {
                    base_sig = Some(sig.clone());
                    1.0
                }
                Some(b) => b.compare(&sig, &mcfg).score,
            };
            let spec = sig.spectrum();
            captures.push(SpectrumCapture {
                dt_s: dt,
                angles_deg: spec.angles_deg.clone(),
                db: spec.db(-30.0),
                peak_deg: obs.bearing_deg,
                score_vs_t0: score,
            });
        }
        let p0 = captures[0].peak_deg;
        let max_drift = captures
            .iter()
            .map(|c| angle_diff_deg(c.peak_deg, p0, false))
            .fold(0.0, f64::max);
        let min_score = captures
            .iter()
            .map(|c| c.score_vs_t0)
            .fold(f64::INFINITY, f64::min);
        clients.push(Fig6Client {
            client: id,
            captures,
            max_peak_drift_deg: max_drift,
            min_score,
        });
    }
    Fig6Result { clients }
}

/// Render a text version of Fig 6: per client, the peak bearing and the
/// self-match score at each time offset.
pub fn render(r: &Fig6Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 6 — AoA signature stability (linear 8-antenna array)\n");
    for c in &r.clients {
        out.push_str(&format!("\nclient {}:\n", c.client));
        out.push_str("      Δt | peak bearing (deg) | match vs t0\n");
        out.push_str("---------+--------------------+------------\n");
        for cap in &c.captures {
            let label = match cap.dt_s {
                dt if dt < 1.0 => "0 s".to_string(),
                dt if dt < 3600.0 => format!("{:.0} s", dt),
                dt if dt < 86_400.0 => "1 hour".to_string(),
                _ => "1 day".to_string(),
            };
            out.push_str(&format!(
                "{:>8} | {:18.1} | {:10.3}\n",
                label, cap.peak_deg, cap.score_vs_t0
            ));
        }
        out.push_str(&format!(
            "max direct-peak drift: {:.1} deg; min self-match: {:.3}\n",
            c.max_peak_drift_deg, c.min_score
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_peak_is_stable_for_near_client() {
        let r = run_for_clients(11, &[5]);
        let c = &r.clients[0];
        assert_eq!(c.captures.len(), TIME_POINTS_S.len());
        // The paper's core observation: the direct-path peak barely
        // moves even a day later.
        assert!(
            c.max_peak_drift_deg <= 6.0,
            "direct peak drifted {} deg",
            c.max_peak_drift_deg
        );
        // Minute-scale spectra are "quite stable": scores stay high for
        // the early captures.
        for cap in c.captures.iter().take(4) {
            assert!(
                cap.score_vs_t0 > 0.6,
                "dt {} score {}",
                cap.dt_s,
                cap.score_vs_t0
            );
        }
    }

    #[test]
    fn long_horizons_change_more_than_short() {
        let r = run_for_clients(13, &[10]);
        let c = &r.clients[0];
        let early = c.captures[1].score_vs_t0; // 1 s
        let day = c.captures.last().unwrap().score_vs_t0;
        assert!(
            day <= early + 0.05,
            "1-day score {} unexpectedly above 1-s score {}",
            day,
            early
        );
    }

    #[test]
    fn render_contains_all_time_labels() {
        let r = run_for_clients(15, &[2]);
        let txt = render(&r);
        for label in ["0 s", "1 s", "1 hour", "1 day"] {
            assert!(txt.contains(label), "missing {}", label);
        }
    }
}
