//! Experiment E8 — ablations of the design choices (§2.1–2.2).
//!
//! * **E8a calibration** — the §2.2 claim: without cancelling the
//!   per-chain downconverter phases, AoA is inoperable.
//! * **E8b decorrelation** — MUSIC with and without forward–backward /
//!   spatial smoothing (and mode space vs the physical circular
//!   manifold) on coherent indoor multipath.
//! * **E8c source count** — AIC vs MDL vs fixed-K.
//! * **E8d grid resolution** — scan-step sweep.
//! * **E8e Equation 1** — the paper's two-antenna arcsin method in pure
//!   line-of-sight vs real multipath.

use crate::sim::{ApArray, Testbed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_aoa::estimator::{AoaConfig, CircularHandling, Smoothing};
use sa_aoa::pseudospectrum::angle_diff_deg;
use sa_aoa::source_count::SourceCount;
use sa_array::calib::Calibration;
use serde::Serialize;

/// Error statistics for one pipeline variant.
#[derive(Debug, Clone, Serialize)]
pub struct VariantStats {
    /// Variant label.
    pub variant: String,
    /// Median absolute bearing error, degrees.
    pub median_error_deg: f64,
    /// 90th-percentile absolute error, degrees.
    pub p90_error_deg: f64,
    /// Number of (client, packet) trials.
    pub n: usize,
}

/// The E8 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// E8a: calibrated vs uncalibrated.
    pub calibration: Vec<VariantStats>,
    /// E8b: smoothing variants.
    pub smoothing: Vec<VariantStats>,
    /// E8c: source-count policies.
    pub source_count: Vec<VariantStats>,
    /// E8d: grid steps (label carries the step).
    pub grid: Vec<VariantStats>,
    /// E8e: Equation-1 two-antenna method, LoS vs multipath.
    pub equation_one: Vec<VariantStats>,
}

/// Clients used for the sweeps (a spread of easy/hard cases).
const CLIENTS: [usize; 6] = [1, 5, 7, 10, 12, 16];

/// Run all ablations with `packets` packets per client per variant.
pub fn run(seed: u64, packets: usize) -> AblationResult {
    AblationResult {
        calibration: ablate_calibration(seed, packets),
        smoothing: ablate_smoothing(seed, packets),
        source_count: ablate_source_count(seed, packets),
        grid: ablate_grid(seed, packets),
        equation_one: ablate_equation_one(seed, packets),
    }
}

/// Collect bearing errors over `CLIENTS` × packets under a config
/// transformation applied to the testbed AP.
fn errors_with(
    seed: u64,
    packets: usize,
    strip_calibration: bool,
    patch: impl Fn(&mut AoaConfig),
) -> Vec<f64> {
    let mut tb = Testbed::single_ap(ApArray::Circular, seed);
    // Patch the AoA configuration on the node.
    {
        let node = &mut tb.nodes[0];
        let mut cfg = node.ap.config().clone();
        patch(&mut cfg.aoa);
        let acl = std::mem::take(&mut node.ap.acl);
        let cal = node.ap.calibration().clone();
        let mut ap = secureangle::pipeline::AccessPoint::new(cfg, acl);
        if strip_calibration {
            ap.set_calibration(Calibration::identity(8));
        } else {
            ap.set_calibration(cal);
        }
        node.ap = ap;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xab1a);
    let mut errors = Vec::new();
    for &id in &CLIENTS {
        let truth = tb.office.ground_truth_azimuth_deg(id);
        for p in 0..packets {
            let buf = tb.client_capture(0, id, p as u16, 0.0, &mut rng);
            if let Ok(obs) = tb.nodes[0].ap.observe(&buf) {
                errors.push(angle_diff_deg(obs.bearing_deg, truth, true));
            }
        }
    }
    errors
}

fn stats(variant: &str, errors: &[f64]) -> VariantStats {
    VariantStats {
        variant: variant.to_string(),
        median_error_deg: sa_linalg::stats::median(errors),
        p90_error_deg: sa_linalg::stats::percentile(errors, 0.9),
        n: errors.len(),
    }
}

fn ablate_calibration(seed: u64, packets: usize) -> Vec<VariantStats> {
    vec![
        stats(
            "calibrated (§2.2)",
            &errors_with(seed, packets, false, |_| {}),
        ),
        stats("uncalibrated", &errors_with(seed, packets, true, |_| {})),
    ]
}

fn ablate_smoothing(seed: u64, packets: usize) -> Vec<VariantStats> {
    vec![
        stats(
            "mode space + FB + spatial (default)",
            &errors_with(seed, packets, false, |_| {}),
        ),
        stats(
            "mode space + FB only",
            &errors_with(seed, packets, false, |c| {
                c.smoothing = Smoothing::ForwardBackward;
            }),
        ),
        stats(
            "mode space, no smoothing",
            &errors_with(seed, packets, false, |c| {
                c.smoothing = Smoothing::None;
            }),
        ),
        stats(
            "physical circular manifold",
            &errors_with(seed, packets, false, |c| {
                c.circular = CircularHandling::Physical;
                c.smoothing = Smoothing::None;
            }),
        ),
    ]
}

fn ablate_source_count(seed: u64, packets: usize) -> Vec<VariantStats> {
    vec![
        stats(
            "MDL (default)",
            &errors_with(seed, packets, false, |c| {
                c.source_count = SourceCount::Mdl;
            }),
        ),
        stats(
            "AIC",
            &errors_with(seed, packets, false, |c| {
                c.source_count = SourceCount::Aic;
            }),
        ),
        stats(
            "fixed K=1",
            &errors_with(seed, packets, false, |c| {
                c.source_count = SourceCount::Fixed(1);
            }),
        ),
        stats(
            "fixed K=3",
            &errors_with(seed, packets, false, |c| {
                c.source_count = SourceCount::Fixed(3);
            }),
        ),
    ]
}

fn ablate_grid(seed: u64, packets: usize) -> Vec<VariantStats> {
    [0.25, 0.5, 1.0, 2.0, 5.0]
        .iter()
        .map(|&step| {
            stats(
                &format!("grid {step} deg"),
                &errors_with(seed, packets, false, |c| {
                    c.grid_step_deg = step;
                }),
            )
        })
        .collect()
}

fn ablate_equation_one(seed: u64, packets: usize) -> Vec<VariantStats> {
    use sa_aoa::two_antenna::two_antenna_bearing;
    use sa_array::geometry::Array;
    use sa_channel::apply::{apply_channel, ApplyConfig};
    use sa_channel::pattern::TxAntenna;
    use sa_channel::plan::FloorPlan;
    use sa_channel::trace::{trace_paths, TraceConfig};
    use sa_linalg::complex::ZERO;
    use sa_phy::ppdu::Transmitter;

    let office = crate::office::Office::paper_figure4();
    let array = Array::paper_linear(2);
    let tx = Transmitter::new(sa_phy::Modulation::Qpsk);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xe91);

    let mut los_errors = Vec::new();
    let mut mp_errors = Vec::new();
    for &id in &CLIENTS {
        let pos = office.client(id).position;
        let truth_broadside =
            crate::experiments::fig7::fold_to_broadside_deg(office.ground_truth_azimuth_deg(id));
        for p in 0..packets {
            let wave = {
                let payload = vec![p as u8; 16];
                let mut w = vec![ZERO; 40];
                w.extend(tx.encode(&payload));
                w
            };
            for (free_space, errs) in [(true, &mut los_errors), (false, &mut mp_errors)] {
                let empty = FloorPlan::new();
                let plan = if free_space { &empty } else { &office.plan };
                let paths = trace_paths(plan, pos, office.ap_position, &TraceConfig::default());
                let out = apply_channel(
                    &paths,
                    &TxAntenna::Omni,
                    &array,
                    &wave,
                    &ApplyConfig::default(),
                );
                let mut x1 = out.snapshots.row(0);
                let mut x2 = out.snapshots.row(1);
                let nv = 2e-9;
                sa_sigproc::noise::add_noise(&mut rng, &mut x1, nv);
                sa_sigproc::noise::add_noise(&mut rng, &mut x2, nv);
                let est = two_antenna_bearing(&x1, &x2);
                errs.push((est.theta.to_degrees() - truth_broadside).abs());
            }
        }
    }
    vec![
        stats("Eq. 1, pure line of sight", &los_errors),
        stats("Eq. 1, office multipath", &mp_errors),
    ]
}

/// Render E8.
pub fn render(r: &AblationResult) -> String {
    let mut out = String::new();
    out.push_str("E8 — ablations (median / p90 absolute bearing error, deg)\n");
    for (title, group) in [
        ("a) array calibration (§2.2)", &r.calibration),
        ("b) coherent-multipath decorrelation", &r.smoothing),
        ("c) source-count estimator", &r.source_count),
        ("d) scan-grid resolution", &r.grid),
        ("e) Equation 1 (two antennas)", &r.equation_one),
    ] {
        out.push_str(&format!("\n{}\n", title));
        out.push_str("variant                              | median | p90   | n\n");
        out.push_str("-------------------------------------+--------+-------+----\n");
        for v in group {
            out.push_str(&format!(
                "{:<37}| {:6.2} | {:5.1} | {}\n",
                v.variant, v.median_error_deg, v.p90_error_deg, v.n
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matters() {
        let r = ablate_calibration(61, 2);
        let cal = &r[0];
        let uncal = &r[1];
        assert!(
            uncal.median_error_deg > 3.0 * cal.median_error_deg.max(1.0),
            "uncalibrated {:.1} vs calibrated {:.1}",
            uncal.median_error_deg,
            cal.median_error_deg
        );
    }

    #[test]
    fn equation_one_breaks_down_under_multipath() {
        let r = ablate_equation_one(63, 2);
        let los = &r[0];
        let mp = &r[1];
        assert!(
            los.median_error_deg < 3.0,
            "LoS Eq.1 error {:.2}",
            los.median_error_deg
        );
        assert!(
            mp.median_error_deg > 2.0 * los.median_error_deg.max(0.5),
            "multipath {:.1} vs LoS {:.1}",
            mp.median_error_deg,
            los.median_error_deg
        );
    }

    #[test]
    fn default_smoothing_is_at_least_as_good() {
        let r = ablate_smoothing(65, 2);
        let default = &r[0];
        let none = &r[2];
        assert!(
            default.median_error_deg <= none.median_error_deg + 1.0,
            "default {:.1} vs none {:.1}",
            default.median_error_deg,
            none.median_error_deg
        );
    }

    #[test]
    fn grid_sweep_has_all_steps() {
        let r = ablate_grid(67, 1);
        assert_eq!(r.len(), 5);
        for v in &r {
            assert!(v.n > 0);
        }
    }
}
