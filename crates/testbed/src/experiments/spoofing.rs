//! Experiment E5 — address-spoofing detection (§2.3.2).
//!
//! "The experimental hypothesis being that there is a significant
//! difference between `S_cl` and an attacker's signature, so that they
//! can be discriminated from each other." This experiment quantifies
//! that hypothesis: train a signature per victim, measure match-score
//! distributions for (a) the victim's own later frames and (b) frames
//! injected by attackers at other positions with each equipment class of
//! the §1 threat model, then compute the ROC and equal-error rate.

use crate::sim::{ApArray, Testbed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_channel::pattern::TxAntenna;
use secureangle::attacker::{Attacker, AttackerGear};
use secureangle::signature::MatchConfig;
use serde::Serialize;

/// Score samples for one attacker-gear class.
#[derive(Debug, Clone, Serialize)]
pub struct GearScores {
    /// Gear label.
    pub gear: String,
    /// Match scores of attack frames against the victim profile.
    pub scores: Vec<f64>,
    /// Detection rate at the default threshold.
    pub detection_rate: f64,
}

/// The E5 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct SpoofingResult {
    /// Scores of legitimate re-measurements against their own profiles.
    pub legit_scores: Vec<f64>,
    /// Per-gear attack scores.
    pub attacks: Vec<GearScores>,
    /// The detector threshold used for the detection/false-alarm rates.
    pub threshold: f64,
    /// False-alarm rate on legitimate frames at the threshold.
    pub false_alarm_rate: f64,
    /// Equal-error rate over all attack classes pooled.
    pub equal_error_rate: f64,
    /// Threshold achieving the EER.
    pub eer_threshold: f64,
}

/// Run E5.
///
/// * `victims` — client ids to train and attack (each victim is attacked
///   from every *other* client position);
/// * `legit_packets` — per-victim legitimate re-measurements.
pub fn run(seed: u64, victims: &[usize], legit_packets: usize) -> SpoofingResult {
    let tb = Testbed::single_ap(ApArray::Circular, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5b00f);
    let mcfg = MatchConfig::default();
    let threshold = secureangle::spoof::SpoofConfig::default().threshold;

    let gears = [
        ("omni", AttackerGear::Omni),
        (
            "directional 14 dBi",
            AttackerGear::Directional {
                gain_dbi: 14.0,
                order: 4.0,
            },
        ),
        ("8-element array", AttackerGear::Array { n_elements: 8 }),
    ];

    let mut legit_scores = Vec::new();
    let mut attack_scores: Vec<Vec<f64>> = vec![Vec::new(); gears.len()];

    for &victim in victims {
        // Train the profile from one authentication-time packet.
        let buf = tb.client_capture(0, victim, 0, 0.0, &mut rng);
        let train_obs = tb.nodes[0].ap.observe(&buf).expect("training capture");
        let profile = train_obs.signature.clone();

        // Legitimate re-measurements, spread over a session with
        // environment churn (same cadence as the Fig-5 campaign) — the
        // matcher must tolerate exactly this drift.
        for p in 0..legit_packets {
            let dt_s = 15.0 * (1 + p) as f64;
            let buf = tb.client_capture(0, victim, 1 + p as u16, dt_s, &mut rng);
            if let Ok(obs) = tb.nodes[0].ap.observe(&buf) {
                legit_scores.push(profile.compare(&obs.signature, &mcfg).score);
            }
        }

        // Attacks from every other client position, with each gear.
        let frame = tb.client_frame(victim, 999); // spoofed source MAC
        let ap_pos = tb.nodes[0].ap.config().position;
        for other in tb.office.clients.clone() {
            if other.id == victim {
                continue;
            }
            for (gi, (_, gear)) in gears.iter().enumerate() {
                let mut attacker =
                    Attacker::new(other.position, *gear, Testbed::client_mac(victim));
                // Power-match the victim so RSS cannot give the attacker
                // away — isolates the AoA signature's contribution.
                let victim_pow = tb.rx_power_from(0, tb.office.client(victim).position);
                let own_pow = tb.rx_power_from(0, other.position);
                if own_pow > 0.0 {
                    attacker.match_rss(victim_pow, own_pow);
                }
                let antenna = match gear {
                    AttackerGear::Omni => TxAntenna::Omni,
                    _ => attacker.antenna_toward(ap_pos),
                };
                // The injection happens some minutes after training.
                let buf = tb.capture(
                    0,
                    attacker.position,
                    &antenna,
                    attacker.tx_power,
                    &frame,
                    120.0,
                    &mut rng,
                );
                if let Ok(obs) = tb.nodes[0].ap.observe(&buf) {
                    attack_scores[gi].push(profile.compare(&obs.signature, &mcfg).score);
                }
            }
        }
    }

    let false_alarm_rate = legit_scores.iter().filter(|&&s| s < threshold).count() as f64
        / legit_scores.len().max(1) as f64;
    let attacks: Vec<GearScores> = gears
        .iter()
        .zip(attack_scores.iter())
        .map(|((name, _), scores)| GearScores {
            gear: name.to_string(),
            detection_rate: scores.iter().filter(|&&s| s < threshold).count() as f64
                / scores.len().max(1) as f64,
            scores: scores.clone(),
        })
        .collect();

    let pooled: Vec<f64> = attack_scores.iter().flatten().copied().collect();
    let (eer, eer_thr) = equal_error_rate(&legit_scores, &pooled);

    SpoofingResult {
        legit_scores,
        attacks,
        threshold,
        false_alarm_rate,
        equal_error_rate: eer,
        eer_threshold: eer_thr,
    }
}

/// Equal-error rate: the operating point where the false-alarm rate on
/// legitimate scores equals the miss rate on attack scores. Returns
/// `(rate, threshold)`.
pub fn equal_error_rate(legit: &[f64], attack: &[f64]) -> (f64, f64) {
    if legit.is_empty() || attack.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mut candidates: Vec<f64> = legit.iter().chain(attack.iter()).copied().collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut best = (f64::INFINITY, 0.0, 0.0); // |fa − miss|, rate, thr
    for &thr in &candidates {
        let fa = legit.iter().filter(|&&s| s < thr).count() as f64 / legit.len() as f64;
        let miss = attack.iter().filter(|&&s| s >= thr).count() as f64 / attack.len() as f64;
        let gap = (fa - miss).abs();
        if gap < best.0 {
            best = (gap, (fa + miss) / 2.0, thr);
        }
    }
    (best.1, best.2)
}

/// Render E5 as a summary table.
pub fn render(r: &SpoofingResult) -> String {
    let mut out = String::new();
    out.push_str("E5 — address-spoofing detection (signature match scores)\n");
    let lm = sa_linalg::stats::mean(&r.legit_scores);
    out.push_str(&format!(
        "legitimate frames: n = {}, mean score {:.3}, false-alarm rate {:.1}% @ thr {:.2}\n",
        r.legit_scores.len(),
        lm,
        100.0 * r.false_alarm_rate,
        r.threshold
    ));
    out.push_str("attacker gear      | n    | mean score | detection rate\n");
    out.push_str("-------------------+------+------------+---------------\n");
    for g in &r.attacks {
        out.push_str(&format!(
            "{:<19}| {:4} | {:10.3} | {:12.1}%\n",
            g.gear,
            g.scores.len(),
            sa_linalg::stats::mean(&g.scores),
            100.0 * g.detection_rate
        ));
    }
    out.push_str(&format!(
        "pooled equal-error rate: {:.1}% at threshold {:.3}\n",
        100.0 * r.equal_error_rate,
        r.eer_threshold
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eer_of_separable_distributions_is_zero() {
        let legit = vec![0.9, 0.95, 0.85];
        let attack = vec![0.1, 0.2, 0.3];
        let (eer, thr) = equal_error_rate(&legit, &attack);
        assert!(eer < 0.01, "eer {}", eer);
        assert!(thr > 0.3 && thr < 0.9);
    }

    #[test]
    fn eer_of_identical_distributions_is_half() {
        let xs = vec![0.5, 0.6, 0.7, 0.8];
        let (eer, _) = equal_error_rate(&xs, &xs);
        assert!((eer - 0.5).abs() < 0.15, "eer {}", eer);
    }

    #[test]
    fn small_run_discriminates() {
        // Two victims, few packets — the shape must already be visible:
        // legit scores above attack scores on average, detection over
        // 60%, false alarms modest.
        let r = run(31, &[5, 9], 4);
        assert!(!r.legit_scores.is_empty());
        let lm = sa_linalg::stats::mean(&r.legit_scores);
        for g in &r.attacks {
            assert!(!g.scores.is_empty());
            let am = sa_linalg::stats::mean(&g.scores);
            assert!(
                lm > am + 0.1,
                "{}: legit {:.3} vs attack {:.3}",
                g.gear,
                lm,
                am
            );
            assert!(
                g.detection_rate > 0.6,
                "{}: detection {:.2}",
                g.gear,
                g.detection_rate
            );
        }
        assert!(
            r.false_alarm_rate < 0.4,
            "false alarms {:.2}",
            r.false_alarm_rate
        );
        assert!(r.equal_error_rate < 0.3, "EER {:.2}", r.equal_error_rate);
    }
}
