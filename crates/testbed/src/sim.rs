//! Testbed simulation driver: office + APs + packet captures.
//!
//! Wires the whole stack together the way the paper's prototype is
//! wired: clients encode OFDM frames, the geometric channel carries them
//! to each AP's antenna array, the RF front end adds its impairments and
//! noise, and each [`AccessPoint`] runs detection → calibration →
//! correlation → MUSIC. Experiments drive this with deterministic seeds.

use crate::office::Office;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_array::geometry::{Array, ArrayKind};
use sa_array::rf::FrontEnd;
use sa_channel::apply::{apply_channel, ApplyConfig};
use sa_channel::geom::Point;
use sa_channel::pattern::TxAntenna;
use sa_channel::temporal::TemporalModel;
use sa_channel::trace::{trace_paths, Path, TraceConfig};
use sa_linalg::complex::ZERO;
use sa_linalg::CMat;
use sa_mac::{AccessControlList, AclPolicy, Frame, MacAddr};
use sa_phy::ppdu::Transmitter;
use sa_phy::Modulation;
use secureangle::pipeline::{AccessPoint, ApConfig};

/// Simulation-wide parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Client modulation.
    pub modulation: Modulation,
    /// Per-chain complex noise variance (absolute; the channel produces
    /// absolute Friis-scaled powers). The default puts a ~5 m in-room
    /// client at roughly 30 dB SNR and the farthest through-wall clients
    /// in the low teens — consistent with a short-range office WLAN.
    pub noise_floor: f64,
    /// Ray-tracing parameters.
    pub trace: TraceConfig,
    /// Temporal channel evolution (Fig 6).
    pub temporal: TemporalModel,
    /// Payload bytes carried by test frames.
    pub payload_len: usize,
    /// Idle lead-in samples before the packet in each capture.
    pub lead_in: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            modulation: Modulation::Qpsk,
            noise_floor: 2e-9,
            trace: TraceConfig::default(),
            temporal: TemporalModel::default(),
            payload_len: 18,
            lead_in: 120,
        }
    }
}

/// One AP with its front end.
#[derive(Debug)]
pub struct ApNode {
    /// The SecureAngle access point.
    pub ap: AccessPoint,
    /// Its RF front end (per-chain offsets + noise).
    pub front_end: FrontEnd,
}

/// A fully-wired testbed.
#[derive(Debug)]
pub struct Testbed {
    /// The floor plan and client roster.
    pub office: Office,
    /// Simulation parameters.
    pub cfg: SimConfig,
    /// AP nodes; node 0 is the primary (Fig 4 "AP").
    pub nodes: Vec<ApNode>,
}

/// Which array the AP(s) use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApArray {
    /// The paper's circular arrangement (octagon, Figs 4–5).
    Circular,
    /// The paper's linear arrangement (λ/2 ULA, Figs 6–7), with the
    /// given element count.
    Linear(usize),
}

impl Testbed {
    /// Single-AP testbed with the chosen array, calibrated, all 20
    /// clients on the ACL. Deterministic in `seed`.
    pub fn single_ap(array: ApArray, seed: u64) -> Self {
        Self::build(array, false, seed)
    }

    /// Three-AP testbed (primary + the two extra positions) for the
    /// virtual-fence / localization experiments.
    pub fn multi_ap(seed: u64) -> Self {
        Self::build(ApArray::Circular, true, seed)
    }

    /// An `n_aps`-node deployment testbed: circular arrays at
    /// [`Office::deployment_ap_positions`], every AP calibrated against
    /// its own front end, all 20 clients on every ACL. Node 0 is the
    /// primary Fig-4 AP. Deterministic in `seed`.
    pub fn deployment(n_aps: usize, seed: u64) -> Self {
        let office = Office::paper_figure4();
        let positions = office.deployment_ap_positions(n_aps);
        Self::build_at(ApArray::Circular, office, positions, seed, |_| {})
    }

    /// A fleet-scale campus-hall testbed: four circular-array APs over
    /// [`Office::campus`]'s `n_clients` clients, every client on every
    /// ACL. The client layout is a pure function of `n_clients`; the RF
    /// build (front ends, calibration) is deterministic in `seed`.
    pub fn campus(n_clients: usize, seed: u64) -> Self {
        Self::campus_with(n_clients, 4, seed)
    }

    /// [`Testbed::campus`] with an explicit AP count (`1..=8`, from
    /// [`Office::deployment_ap_positions`] over the campus hall).
    pub fn campus_with(n_clients: usize, n_aps: usize, seed: u64) -> Self {
        Self::campus_customized(n_clients, n_aps, seed, |_| {})
    }

    /// [`Testbed::campus_with`] with a configuration hook applied to
    /// every AP's [`ApConfig`] after the standard prototype setup —
    /// e.g. selecting an AoA scan backend or confidence model for a
    /// whole fleet. The hook runs before calibration, so calibrated
    /// state always matches the final configuration.
    pub fn campus_customized(
        n_clients: usize,
        n_aps: usize,
        seed: u64,
        customize: impl Fn(&mut ApConfig),
    ) -> Self {
        let office = Office::campus(n_clients);
        let positions = office.deployment_ap_positions(n_aps);
        Self::build_at(ApArray::Circular, office, positions, seed, customize)
    }

    fn build(array: ApArray, multi: bool, seed: u64) -> Self {
        let office = Office::paper_figure4();
        let mut positions = vec![office.ap_position];
        if multi {
            positions.extend(office.extra_ap_positions.iter().copied());
        }
        Self::build_at(array, office, positions, seed, |_| {})
    }

    fn build_at(
        array: ApArray,
        office: Office,
        positions: Vec<Point>,
        seed: u64,
        customize: impl Fn(&mut ApConfig),
    ) -> Self {
        let cfg = SimConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut nodes = Vec::with_capacity(positions.len());
        for pos in positions {
            let arr = match array {
                ApArray::Circular => Array::paper_octagon(),
                ApArray::Linear(n) => Array::paper_linear(n),
            };
            let mut acl = AccessControlList::new(AclPolicy::AllowListed);
            for c in &office.clients {
                acl.add(client_mac(c.id));
            }
            let mut ap_cfg = ApConfig::paper_prototype(pos);
            ap_cfg.array = arr;
            ap_cfg.modulation = cfg.modulation;
            customize(&mut ap_cfg);
            let mut ap = AccessPoint::new(ap_cfg, acl);
            let front_end = FrontEnd::random(ap.config().array.len(), cfg.noise_floor, &mut rng);
            ap.calibrate(&front_end, &mut rng);
            nodes.push(ApNode { ap, front_end });
        }

        Self { office, cfg, nodes }
    }

    /// The MAC address of a testbed client.
    pub fn client_mac(id: usize) -> MacAddr {
        client_mac(id)
    }

    /// A data frame as client `id` would send it.
    pub fn client_frame(&self, id: usize, seq: u16) -> Frame {
        let payload: Vec<u8> = (0..self.cfg.payload_len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(id as u8))
            .collect();
        Frame::data(
            client_mac(id),
            MacAddr::BROADCAST,
            MacAddr::local_from_index(0),
            seq,
            &payload,
        )
    }

    /// Trace the paths from a transmit position to AP node `node`,
    /// optionally evolved forward `dt_s` seconds of environment time.
    pub fn paths_to(&self, node: usize, from: Point, dt_s: f64, rng: &mut ChaCha8Rng) -> Vec<Path> {
        let ap_pos = self.nodes[node].ap.config().position;
        let base = trace_paths(&self.office.plan, from, ap_pos, &self.cfg.trace);
        if dt_s > 0.0 {
            self.cfg.temporal.evolve(&base, dt_s, rng)
        } else {
            base
        }
    }

    /// Produce the multi-antenna capture AP node `node` records for a
    /// frame transmitted from `from`.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        &self,
        node: usize,
        from: Point,
        antenna: &TxAntenna,
        tx_power: f64,
        frame: &Frame,
        dt_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> CMat {
        let tx = Transmitter::new(self.cfg.modulation);
        let wave = tx.encode(&frame.encode());
        let mut padded = vec![ZERO; self.cfg.lead_in];
        padded.extend_from_slice(&wave);
        padded.extend_from_slice(&vec![ZERO; 80]);

        let paths = self.paths_to(node, from, dt_s, rng);
        let ap = &self.nodes[node].ap;
        let out = apply_channel(
            &paths,
            antenna,
            &ap.config().array,
            &padded,
            &ApplyConfig {
                tx_power,
                cfo_rad_per_sample: cfo_for(rng),
                array_orientation: ap.config().orientation,
                ..Default::default()
            },
        );
        self.nodes[node].front_end.receive(&out.snapshots, rng)
    }

    /// Convenience: client `id` transmits one frame (omni, unit power)
    /// to AP node `node`; returns the capture.
    pub fn client_capture(
        &self,
        node: usize,
        id: usize,
        seq: u16,
        dt_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> CMat {
        let frame = self.client_frame(id, seq);
        self.capture(
            node,
            self.office.client(id).position,
            &TxAntenna::Omni,
            1.0,
            &frame,
            dt_s,
            rng,
        )
    }

    /// Captures of **one** transmission at **every** AP node: the same
    /// frame from the same position, carried to each node over its own
    /// traced channel with its own front-end noise. This is the unit a
    /// multi-AP deployment ingests — `result[k]` is what node `k`
    /// recorded. Order of nodes is fixed, so the draw sequence (and the
    /// captures) are deterministic in `rng`.
    pub fn transmission(
        &self,
        from: Point,
        antenna: &TxAntenna,
        tx_power: f64,
        frame: &Frame,
        dt_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<CMat> {
        let nodes: Vec<usize> = (0..self.nodes.len()).collect();
        self.transmission_for(&nodes, from, antenna, tx_power, frame, dt_s, rng)
    }

    /// [`Testbed::transmission`] for a *subset* of the AP nodes —
    /// `result[k]` is what `nodes[k]` recorded. This is the capture
    /// unit for a deployment under churn: after an AP is removed (or
    /// before a joiner is added), windows carry captures for the live
    /// membership only. RNG draws happen only for the listed nodes, in
    /// list order, so the captures are deterministic in `rng` given the
    /// same node list.
    #[allow(clippy::too_many_arguments)]
    pub fn transmission_for(
        &self,
        nodes: &[usize],
        from: Point,
        antenna: &TxAntenna,
        tx_power: f64,
        frame: &Frame,
        dt_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<CMat> {
        nodes
            .iter()
            .map(|&node| self.capture(node, from, antenna, tx_power, frame, dt_s, rng))
            .collect()
    }

    /// One observation window of deployment traffic: each listed client
    /// transmits once (omni, unit power, frame sequence `seq`), in
    /// order, at environment time `dt_s`. Returns one
    /// transmission-worth of per-node captures per client —
    /// `result[i][k]` is node `k`'s capture of client `clients[i]`.
    pub fn window_traffic(
        &self,
        clients: &[usize],
        seq: u16,
        dt_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<CMat>> {
        let nodes: Vec<usize> = (0..self.nodes.len()).collect();
        self.window_traffic_for(&nodes, clients, seq, dt_s, rng)
    }

    /// [`Testbed::window_traffic`] heard by a *subset* of the AP nodes
    /// (`result[i][k]` is `nodes[k]`'s capture of client `clients[i]`)
    /// — the churn-scenario generator: drive a deployment whose live
    /// membership no longer matches the full testbed.
    pub fn window_traffic_for(
        &self,
        nodes: &[usize],
        clients: &[usize],
        seq: u16,
        dt_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<CMat>> {
        clients
            .iter()
            .map(|&id| {
                let frame = self.client_frame(id, seq);
                self.transmission_for(
                    nodes,
                    self.office.client(id).position,
                    &TxAntenna::Omni,
                    1.0,
                    &frame,
                    dt_s,
                    rng,
                )
            })
            .collect()
    }

    /// A deterministic per-AP clock-skew profile for an `n_aps`
    /// deployment: returns `(window_offset, seq_offset)` per AP, with
    /// window offsets alternating `±max_offset_windows` (scaled down
    /// across the fleet so not every AP sits at the extreme) and seq
    /// offsets spread as if each AP's packet counter had been running
    /// since a different boot time. Deterministic in `seed`; node 0 is
    /// left unskewed (the reference the paper's prototype would sync
    /// against).
    pub fn skew_profile(n_aps: usize, max_offset_windows: i64, seed: u64) -> Vec<(i64, u64)> {
        (0..n_aps)
            .map(|k| {
                if k == 0 {
                    (0, 0)
                } else {
                    let magnitude = 1 + (k as i64 + seed as i64) % max_offset_windows.max(1);
                    let sign = if k % 2 == 1 { 1 } else { -1 };
                    let seq = (seed ^ k as u64).wrapping_mul(2654435761) % 1000;
                    (sign * magnitude, seq)
                }
            })
            .collect()
    }

    /// Total received power (linear) node `node` would measure from a
    /// unit-power transmitter at `from` — used by RSS experiments and
    /// attackers probing for power matching.
    pub fn rx_power_from(&self, node: usize, from: Point) -> f64 {
        let ap_pos = self.nodes[node].ap.config().position;
        trace_paths(&self.office.plan, from, ap_pos, &self.cfg.trace)
            .iter()
            .map(|p| p.gain.norm_sqr())
            .sum()
    }

    /// Is this testbed's node array linear (Fig 6/7 presentations)?
    pub fn is_linear(&self, node: usize) -> bool {
        self.nodes[node].ap.config().array.kind() == ArrayKind::Linear
    }
}

/// Deterministic testbed MAC for a client id.
fn client_mac(id: usize) -> MacAddr {
    MacAddr::local_from_index(id as u32)
}

/// Small random residual CFO per packet (± ~2 kHz at 20 MHz sampling):
/// Soekris client oscillators are not locked to the AP.
fn cfo_for<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.gen::<f64>() - 0.5) * 2.0 * 6.3e-4
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_aoa::pseudospectrum::angle_diff_deg;

    #[test]
    fn testbed_builds_and_calibrates() {
        let tb = Testbed::single_ap(ApArray::Circular, 1);
        assert_eq!(tb.nodes.len(), 1);
        assert_eq!(tb.nodes[0].ap.config().array.len(), 8);
        // Calibration is non-identity (front end has random offsets).
        let cal = tb.nodes[0].ap.calibration();
        assert!(cal
            .corrections()
            .iter()
            .skip(1)
            .any(|c| (c.arg()).abs() > 1e-3));
    }

    #[test]
    fn multi_ap_has_three_nodes() {
        let tb = Testbed::multi_ap(2);
        assert_eq!(tb.nodes.len(), 3);
    }

    #[test]
    fn client_5_bearing_recovers_ground_truth() {
        let tb = Testbed::single_ap(ApArray::Circular, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let buf = tb.client_capture(0, 5, 1, 0.0, &mut rng);
        let obs = tb.nodes[0].ap.observe(&buf).expect("observation");
        let truth = tb.office.ground_truth_azimuth_deg(5);
        assert!(
            angle_diff_deg(obs.bearing_deg, truth, true) < 4.0,
            "bearing {} truth {}",
            obs.bearing_deg,
            truth
        );
        // Frame decodes and carries the right MAC.
        assert_eq!(obs.frame.as_ref().unwrap().src, Testbed::client_mac(5));
    }

    #[test]
    fn far_client_is_still_detected() {
        let tb = Testbed::single_ap(ApArray::Circular, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let buf = tb.client_capture(0, 6, 1, 0.0, &mut rng);
        let obs = tb.nodes[0].ap.observe(&buf);
        assert!(obs.is_ok(), "client 6 undetected: {:?}", obs.err());
    }

    #[test]
    fn linear_testbed_reports_broadside_angles() {
        let tb = Testbed::single_ap(ApArray::Linear(8), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let buf = tb.client_capture(0, 5, 1, 0.0, &mut rng);
        let obs = tb.nodes[0].ap.observe(&buf).expect("observation");
        assert!(obs.bearing_deg.abs() <= 90.0, "bearing {}", obs.bearing_deg);
        assert!(
            obs.global_azimuth.is_none(),
            "ULA has no unambiguous azimuth"
        );
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let tb = Testbed::single_ap(ApArray::Circular, 9);
        let mut r1 = ChaCha8Rng::seed_from_u64(10);
        let mut r2 = ChaCha8Rng::seed_from_u64(10);
        let b1 = tb.client_capture(0, 7, 1, 0.0, &mut r1);
        let b2 = tb.client_capture(0, 7, 1, 0.0, &mut r2);
        assert!(b1.approx_eq(&b2, 0.0));
    }

    #[test]
    fn deployment_testbed_spreads_aps_and_stays_deterministic() {
        let tb = Testbed::deployment(4, 21);
        assert_eq!(tb.nodes.len(), 4);
        let expected = tb.office.deployment_ap_positions(4);
        for (node, &want) in tb.nodes.iter().zip(&expected) {
            assert_eq!(node.ap.config().position, want);
        }
        // Window traffic is deterministic in the rng and covers every node.
        let mut r1 = ChaCha8Rng::seed_from_u64(22);
        let mut r2 = ChaCha8Rng::seed_from_u64(22);
        let w1 = tb.window_traffic(&[5, 7], 1, 0.0, &mut r1);
        let w2 = tb.window_traffic(&[5, 7], 1, 0.0, &mut r2);
        assert_eq!(w1.len(), 2);
        assert_eq!(w1[0].len(), 4);
        for (a, b) in w1.iter().flatten().zip(w2.iter().flatten()) {
            assert!(a.approx_eq(b, 0.0));
        }
    }

    #[test]
    fn every_node_hears_a_window_transmission() {
        let tb = Testbed::deployment(4, 23);
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let w = tb.window_traffic(&[5], 1, 0.0, &mut rng);
        for (node, cap) in w[0].iter().enumerate() {
            let obs = tb.nodes[node]
                .ap
                .observe(cap)
                .unwrap_or_else(|e| panic!("node {}: {}", node, e));
            assert_eq!(obs.frame.unwrap().src, Testbed::client_mac(5));
        }
    }

    #[test]
    fn subset_traffic_matches_the_listed_nodes() {
        let tb = Testbed::deployment(4, 25);
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let w = tb.window_traffic_for(&[0, 2, 3], &[5, 7], 1, 0.0, &mut rng);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].len(), 3);
        // Every listed node decodes the right client.
        for (slot, &node) in [0usize, 2, 3].iter().enumerate() {
            let obs = tb.nodes[node].ap.observe(&w[0][slot]).expect("observation");
            assert_eq!(obs.frame.unwrap().src, Testbed::client_mac(5));
        }
        // Deterministic in the rng given the same node list.
        let mut r2 = ChaCha8Rng::seed_from_u64(26);
        let w2 = tb.window_traffic_for(&[0, 2, 3], &[5, 7], 1, 0.0, &mut r2);
        for (a, b) in w.iter().flatten().zip(w2.iter().flatten()) {
            assert!(a.approx_eq(b, 0.0));
        }
    }

    #[test]
    fn skew_profile_is_bounded_and_deterministic() {
        let p = Testbed::skew_profile(6, 2, 42);
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], (0, 0), "node 0 is the unskewed reference");
        assert!(p.iter().any(|&(w, _)| w > 0));
        assert!(p.iter().any(|&(w, _)| w < 0));
        for &(w, _) in &p {
            assert!(w.abs() <= 2, "offset {} beyond bound", w);
        }
        assert_eq!(p, Testbed::skew_profile(6, 2, 42));
        assert_ne!(p, Testbed::skew_profile(6, 2, 43));
    }

    #[test]
    fn campus_testbed_scales_and_decodes() {
        let tb = Testbed::campus_with(40, 3, 31);
        assert_eq!(tb.nodes.len(), 3);
        assert_eq!(tb.office.clients.len(), 40);
        // The farthest-from-primary client still decodes at every node.
        let far = tb
            .office
            .clients
            .iter()
            .max_by(|a, b| {
                let da = tb.office.ap_position.dist(a.position);
                let db = tb.office.ap_position.dist(b.position);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap()
            .id;
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let w = tb.window_traffic(&[far], 1, 0.0, &mut rng);
        for (node, cap) in w[0].iter().enumerate() {
            let obs = tb.nodes[node]
                .ap
                .observe(cap)
                .unwrap_or_else(|e| panic!("node {}: {}", node, e));
            assert_eq!(obs.frame.unwrap().src, Testbed::client_mac(far));
        }
    }

    #[test]
    fn rx_power_decreases_with_distance() {
        let tb = Testbed::single_ap(ApArray::Circular, 11);
        let p5 = tb.rx_power_from(0, tb.office.client(5).position);
        let p6 = tb.rx_power_from(0, tb.office.client(6).position);
        assert!(p5 > p6, "near client should be louder");
    }

    #[test]
    fn evolved_capture_differs_but_decodes() {
        let tb = Testbed::single_ap(ApArray::Circular, 12);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let buf = tb.client_capture(0, 5, 1, 3600.0, &mut rng);
        let obs = tb.nodes[0].ap.observe(&buf).expect("evolved observation");
        assert!(obs.frame.is_some());
    }
}
