//! # sa-testbed — the Figure-4 office and the paper's experiments
//!
//! * [`office`] — a floor plan consistent with every statement the paper
//!   makes about its testbed (20 clients, the cement pillar, near/far
//!   and other-room clients);
//! * [`sim`] — the wired-up simulation: clients → OFDM → geometric
//!   channel → RF front ends → SecureAngle APs;
//! * [`experiments`] — runners that regenerate every evaluation figure
//!   and claim (E1–E9; the `experiments` binary in `sa-bench` drives
//!   them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod office;
pub mod sim;

pub use office::{ClientSpec, Office};
pub use sim::{ApArray, ApNode, SimConfig, Testbed};
