//! Property-based tests for the numerical kernels: whatever the inputs,
//! the algebraic invariants must hold.

use proptest::prelude::*;
use sa_linalg::complex::{c64, C64};
use sa_linalg::eigen::{eigh, eigh_jacobi, hermitian_inverse};
use sa_linalg::fft::{dft_naive, fft_owned, ifft_owned, FftPlan};
use sa_linalg::matrix::{vdot, vnorm};
use sa_linalg::stats;
use sa_linalg::CMat;

fn finite_c64() -> impl Strategy<Value = C64> {
    (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| c64(re, im))
}

fn hermitian(n: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(finite_c64(), n * n).prop_map(move |v| {
        let g = CMat::from_rows(n, n, &v);
        &g + &g.hermitian()
    })
}

/// Random Hermitian PSD matrix (`G·G^H`, normalised) of size `n` —
/// the shape of every covariance the estimator hands the eigensolver.
fn hermitian_psd(n: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(finite_c64(), n * n).prop_map(move |v| {
        let g = CMat::from_rows(n, n, &v);
        g.matmul(&g.hermitian()).scale(1.0 / n as f64)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- complex field axioms ----------------

    #[test]
    fn complex_mul_commutes_and_distributes(a in finite_c64(), b in finite_c64(), c in finite_c64()) {
        prop_assert!((a * b).approx_eq(b * a, 1e-6));
        prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-6));
    }

    #[test]
    fn complex_conj_is_multiplicative(a in finite_c64(), b in finite_c64()) {
        prop_assert!(((a * b).conj()).approx_eq(a.conj() * b.conj(), 1e-6));
    }

    #[test]
    fn complex_abs_is_multiplicative(a in finite_c64(), b in finite_c64()) {
        let lhs = (a * b).abs();
        let rhs = a.abs() * b.abs();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn polar_roundtrip(
        r in 0.001f64..1e3,
        th in (-std::f64::consts::PI + 1e-3)..(std::f64::consts::PI - 1e-3),
    ) {
        let z = C64::from_polar(r, th);
        prop_assert!((z.abs() - r).abs() < 1e-9 * r.max(1.0));
        prop_assert!((z.arg() - th).abs() < 1e-9);
    }

    // ---------------- eigendecomposition ----------------

    #[test]
    fn eigh_invariants(a in hermitian(6)) {
        let e = eigh(&a);
        // Real, sorted eigenvalues.
        prop_assert!(e.values.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        // Unitary eigenvectors.
        let vhv = e.vectors.hermitian().matmul(&e.vectors);
        prop_assert!(vhv.approx_eq(&CMat::identity(6), 1e-7));
        // A·v = λ·v.
        for k in 0..6 {
            let v = e.vector(k);
            let av = a.matvec(&v);
            let lv: Vec<C64> = v.iter().map(|z| z.scale(e.values[k])).collect();
            let resid: f64 = av.iter().zip(&lv).map(|(x, y)| (*x - *y).norm_sqr()).sum();
            prop_assert!(resid.sqrt() < 1e-6 * a.fro_norm().max(1.0), "residual {}", resid.sqrt());
        }
        // Trace = Σλ.
        let tr = a.trace().re;
        let s: f64 = e.values.iter().sum();
        prop_assert!((tr - s).abs() < 1e-7 * tr.abs().max(1.0));
    }

    #[test]
    fn eigh_of_psd_is_nonnegative(v in proptest::collection::vec(finite_c64(), 24)) {
        // G·G^H is PSD for any G (4×6).
        let g = CMat::from_rows(4, 6, &v);
        let a = g.matmul(&g.hermitian());
        let e = eigh(&a);
        let scale = a.fro_norm().max(1.0);
        for &l in &e.values {
            prop_assert!(l > -1e-7 * scale, "negative eigenvalue {}", l);
        }
    }

    #[test]
    fn hermitian_inverse_roundtrip(v in proptest::collection::vec(finite_c64(), 16)) {
        let g = CMat::from_rows(4, 4, &v);
        // Well-conditioned PSD: G·G^H + scale·I.
        let scale = g.fro_norm().max(1.0);
        let a = &g.matmul(&g.hermitian()) + &CMat::identity(4).scale(scale);
        let inv = hermitian_inverse(&a, 1e-12);
        prop_assert!(a.matmul(&inv).approx_eq(&CMat::identity(4), 1e-6));
    }

    // The PR-5 oracle pin: the tridiagonal production solver against
    // the cyclic Jacobi reference, on random Hermitian PSD input at
    // every size the antenna arrays produce (M ∈ 2..=16).
    #[test]
    fn tridiagonal_eigh_matches_jacobi_oracle(
        a in (2usize..=16).prop_flat_map(hermitian_psd)
    ) {
        let n = a.rows();
        let fast = eigh(&a);
        let oracle = eigh_jacobi(&a);
        let scale = oracle.values[n - 1].abs().max(1.0);

        // Eigenvalues agree to 1e-10 relative.
        for k in 0..n {
            prop_assert!(
                (fast.values[k] - oracle.values[k]).abs() <= 1e-10 * scale,
                "λ[{}]: {} vs {} (scale {})", k, fast.values[k], oracle.values[k], scale
            );
        }

        // Subspaces agree up to phase (and up to rotation inside
        // near-degenerate clusters): compare the projectors of each
        // eigenvalue cluster, which are phase- and basis-free.
        let mut start = 0usize;
        for k in 1..=n {
            let boundary = k == n || (oracle.values[k] - oracle.values[k - 1]).abs() > 1e-6 * scale;
            if !boundary {
                continue;
            }
            let mut p_fast = CMat::zeros(n, n);
            let mut p_oracle = CMat::zeros(n, n);
            for c in start..k {
                p_fast = &p_fast + &CMat::outer(&fast.vector(c), &fast.vector(c));
                p_oracle = &p_oracle + &CMat::outer(&oracle.vector(c), &oracle.vector(c));
            }
            prop_assert!(
                p_fast.approx_eq(&p_oracle, 1e-6),
                "cluster {}..{} projectors diverge (n = {})", start, k, n
            );
            start = k;
        }
    }

    // ---------------- FFT ----------------

    #[test]
    fn fft_roundtrip(v in proptest::collection::vec(finite_c64(), 64)) {
        let back = ifft_owned(&fft_owned(&v));
        for (x, y) in v.iter().zip(&back) {
            prop_assert!(x.approx_eq(*y, 1e-6 * vnorm(&v).max(1.0)));
        }
    }

    #[test]
    fn fft_matches_naive(v in proptest::collection::vec(finite_c64(), 32)) {
        let fast = fft_owned(&v);
        let slow = dft_naive(&v);
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!(x.approx_eq(*y, 1e-6 * vnorm(&v).max(1.0)));
        }
    }

    // The PR-5 plan pin: a precomputed FftPlan against the naive DFT
    // at every power-of-two size the modem could ask for, both
    // directions, and bit-identical to the cached free functions.
    #[test]
    fn fft_plan_matches_naive_dft(
        (v, _) in (0usize..=8).prop_flat_map(|log_n| {
            let n = 1usize << log_n;
            (proptest::collection::vec(finite_c64(), n), Just(n))
        })
    ) {
        let plan = FftPlan::new(v.len());
        let fast = plan.fft_owned(&v);
        let slow = dft_naive(&v);
        let tol = 1e-6 * vnorm(&v).max(1.0);
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!(x.approx_eq(*y, tol), "{} vs {}", x, y);
        }
        // Round trip through the same plan.
        let back = plan.ifft_owned(&fast);
        for (x, y) in v.iter().zip(&back) {
            prop_assert!(x.approx_eq(*y, tol));
        }
        // The free functions run on the cached plan of the same size —
        // identical to the last bit.
        prop_assert_eq!(fft_owned(&v), fast);
    }

    #[test]
    fn parseval(v in proptest::collection::vec(finite_c64(), 128)) {
        let f = fft_owned(&v);
        let et: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        let ef: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((et - ef).abs() <= 1e-6 * et.max(1.0));
    }

    // ---------------- matrix algebra ----------------

    #[test]
    fn matmul_associative(
        a in proptest::collection::vec(finite_c64(), 9),
        b in proptest::collection::vec(finite_c64(), 9),
        c in proptest::collection::vec(finite_c64(), 9),
    ) {
        let a = CMat::from_rows(3, 3, &a);
        let b = CMat::from_rows(3, 3, &b);
        let c = CMat::from_rows(3, 3, &c);
        let l = a.matmul(&b).matmul(&c);
        let r = a.matmul(&b.matmul(&c));
        let scale = a.fro_norm() * b.fro_norm() * c.fro_norm();
        prop_assert!(l.approx_eq(&r, 1e-7 * scale.max(1.0)));
    }

    #[test]
    fn hermitian_of_product(
        a in proptest::collection::vec(finite_c64(), 6),
        b in proptest::collection::vec(finite_c64(), 6),
    ) {
        // (AB)^H = B^H A^H
        let a = CMat::from_rows(2, 3, &a);
        let b = CMat::from_rows(3, 2, &b);
        let lhs = a.matmul(&b).hermitian();
        let rhs = b.hermitian().matmul(&a.hermitian());
        prop_assert!(lhs.approx_eq(&rhs, 1e-6 * (a.fro_norm() * b.fro_norm()).max(1.0)));
    }

    #[test]
    fn cauchy_schwarz(u in proptest::collection::vec(finite_c64(), 8), v in proptest::collection::vec(finite_c64(), 8)) {
        let d = vdot(&u, &v).abs();
        prop_assert!(d <= vnorm(&u) * vnorm(&v) * (1.0 + 1e-9) + 1e-9);
    }

    // ---------------- statistics ----------------

    #[test]
    fn percentile_is_bounded_and_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 2..50)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = xs[0];
        let hi = xs[xs.len() - 1];
        let p25 = stats::percentile(&xs, 0.25);
        let p50 = stats::percentile(&xs, 0.50);
        let p75 = stats::percentile(&xs, 0.75);
        prop_assert!(lo <= p25 && p25 <= p50 && p50 <= p75 && p75 <= hi);
    }

    #[test]
    fn variance_is_translation_invariant(xs in proptest::collection::vec(-1e3f64..1e3, 3..30), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v1 = stats::variance(&xs);
        let v2 = stats::variance(&shifted);
        prop_assert!((v1 - v2).abs() <= 1e-6 * v1.abs().max(1.0));
    }

    #[test]
    fn confidence_interval_contains_mean(xs in proptest::collection::vec(-1e3f64..1e3, 2..40)) {
        let ci = stats::t_confidence_interval(&xs, 0.95);
        prop_assert!(ci.contains(stats::mean(&xs)));
        // Higher confidence ⇒ wider interval.
        let ci99 = stats::t_confidence_interval(&xs, 0.99);
        prop_assert!(ci99.half_width >= ci.half_width - 1e-12);
    }

    #[test]
    fn t_cdf_is_monotone(nu in 1.0f64..50.0, a in -8.0f64..8.0, d in 0.01f64..4.0) {
        prop_assert!(stats::t_cdf(a + d, nu) >= stats::t_cdf(a, nu));
    }
}
