//! Complex polynomial root finding: Laguerre iteration with deflation.
//!
//! Root-MUSIC trades the MUSIC grid scan for the roots of the
//! noise-subspace polynomial `D(z) = a(1/z)ᵀ·E_n·E_nᴴ·a(z)` — a degree
//! `2(L−1)` complex polynomial for an `L`-element (virtual) ULA, so at
//! most degree 30 here (`L ≤ 16`). At these sizes a companion-matrix
//! eigensolve would drag in a general non-Hermitian eigenroutine; the
//! classic Laguerre-with-deflation ladder (Numerical Recipes `zroots`
//! lineage) is simpler, has cubic local convergence, and is guaranteed
//! to converge to *some* root from any start for polynomials — which
//! deflation then removes.
//!
//! Everything is deterministic: fixed starting points, a fixed
//! cycle-breaking fraction schedule instead of random kicks, and a
//! final polish of every root against the *undeflated* polynomial to
//! wash out deflation error. Same coefficients in, bit-identical roots
//! out — the property the estimator determinism suite relies on.
//!
//! ```
//! use sa_linalg::poly::PolyRootFinder;
//! use sa_linalg::C64;
//!
//! // p(z) = z² − 1: coefficients low → high degree.
//! let p = [C64::new(-1.0, 0.0), C64::new(0.0, 0.0), C64::new(1.0, 0.0)];
//! let mut finder = PolyRootFinder::new();
//! let mut roots = Vec::new();
//! finder.roots(&p, &mut roots);
//! assert_eq!(roots.len(), 2);
//! assert!(roots.iter().any(|r| (*r - C64::new(1.0, 0.0)).abs() < 1e-12));
//! assert!(roots.iter().any(|r| (*r + C64::new(1.0, 0.0)).abs() < 1e-12));
//! ```

use crate::complex::{C64, ZERO};

/// Maximum Laguerre iterations per root (far beyond what degree ≤ 30
/// polynomials need; cubic convergence typically lands in < 10).
const MAX_ITERS: usize = 80;

/// Every `CYCLE_PERIOD` iterations the full Laguerre step is replaced by
/// a fixed fraction of it, breaking the rare limit cycles the pure
/// iteration can enter. The schedule is fixed — no randomness.
const CYCLE_PERIOD: usize = 10;
const CYCLE_FRACTIONS: [f64; 8] = [0.5, 0.25, 0.75, 0.13, 0.38, 0.62, 0.88, 1.0];

/// Relative round-off scale for the "on a root" stopping test.
const EPS: f64 = 1e-15;

/// Reusable workspace for [`PolyRootFinder::roots`] — the polynomial
/// analogue of `eigen::EighWorkspace`: the deflation ladder reuses one
/// scratch coefficient buffer across calls, so the per-packet root-MUSIC
/// path allocates nothing once the buffers have grown to the problem
/// size.
#[derive(Debug, Clone, Default)]
pub struct PolyRootFinder {
    /// Deflated coefficients, low → high degree.
    work: Vec<C64>,
}

impl PolyRootFinder {
    /// New workspace with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// All complex roots of the polynomial with coefficients `coeffs`
    /// (low → high degree; `coeffs[k]` multiplies `z^k`), appended into
    /// `out` (cleared first, allocation reused).
    ///
    /// Leading zero coefficients are trimmed; a polynomial of effective
    /// degree `d` yields exactly `d` roots. Degree-0 (and empty) input
    /// yields no roots. Roots are polished against the original
    /// polynomial after deflation and emitted in deflation order —
    /// deterministic for fixed input, but not sorted; callers impose
    /// their own order.
    ///
    /// Panics if any coefficient is non-finite.
    pub fn roots(&mut self, coeffs: &[C64], out: &mut Vec<C64>) {
        out.clear();
        assert!(
            coeffs.iter().all(|c| c.is_finite()),
            "PolyRootFinder: non-finite coefficient"
        );
        // Effective degree: trim high-order coefficients that are exactly
        // zero (a root-MUSIC polynomial's leading coefficient is a real
        // diagonal sum and never vanishes unless the projector is rank
        // deficient).
        let mut deg = coeffs.len();
        while deg > 0 && coeffs[deg - 1] == ZERO {
            deg -= 1;
        }
        if deg <= 1 {
            return;
        }
        let deg = deg - 1;

        self.work.clear();
        self.work.extend_from_slice(&coeffs[..=deg]);

        for m in (1..=deg).rev() {
            // Deflation start at the origin: the next root found is
            // biased toward the smallest-magnitude remaining root,
            // which keeps deflation well conditioned (Wilkinson).
            let x = laguerre(&self.work[..=m], ZERO);
            // Polish against the *original* polynomial so accumulated
            // deflation error never reaches the caller.
            let x = laguerre(&coeffs[..=deg], x);
            out.push(x);
            // Synthetic division of the deflated polynomial by (z − x).
            let mut rem = self.work[m];
            for j in (0..m).rev() {
                let c = self.work[j];
                self.work[j] = rem;
                rem = c + rem * x;
            }
        }
    }
}

/// One Laguerre solve: iterate from `start` until the polynomial value
/// is at round-off level or the step vanishes. `coeffs` is low → high
/// degree with at least degree 1.
fn laguerre(coeffs: &[C64], start: C64) -> C64 {
    let m = coeffs.len() - 1;
    let mf = m as f64;
    let mut x = start;
    for it in 1..=MAX_ITERS {
        // Evaluate p, p′, p″/2 by nested Horner, tracking the running
        // round-off bound `err` (Adams' criterion) so we can stop when
        // |p(x)| is indistinguishable from zero.
        let mut b = coeffs[m];
        let mut err = b.abs();
        let mut d = ZERO;
        let mut f = ZERO;
        let abx = x.abs();
        for j in (0..m).rev() {
            f = x * f + d;
            d = x * d + b;
            b = x * b + coeffs[j];
            err = b.abs() + abx * err;
        }
        if b.abs() <= err * EPS {
            return x;
        }
        let g = d / b;
        let g2 = g * g;
        let h = g2 - (f / b) * 2.0;
        let sq = ((h * mf - g2) * (mf - 1.0)).sqrt();
        let gp = g + sq;
        let gm = g - sq;
        let (abp, abm) = (gp.abs(), gm.abs());
        let denom = if abp >= abm { gp } else { gm };
        let dx = if abp.max(abm) > 0.0 {
            C64::new(mf, 0.0) / denom
        } else {
            // p′ and p″ both vanished (e.g. start at the center of a
            // symmetric root constellation): take a deterministic step
            // out whose direction rotates with the iteration count.
            C64::from_polar(1.0 + abx, it as f64)
        };
        let x1 = x - dx;
        if x == x1 {
            return x;
        }
        if it % CYCLE_PERIOD != 0 {
            x = x1;
        } else {
            let frac = CYCLE_FRACTIONS[(it / CYCLE_PERIOD - 1) % CYCLE_FRACTIONS.len()];
            x -= dx * frac;
        }
    }
    // Laguerre converges from any start in exact arithmetic; hitting the
    // iteration cap means a pathological (e.g. near-zero) polynomial.
    // Return the best iterate — callers validate roots by magnitude.
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, ONE};

    /// Evaluate the polynomial at `x` (Horner).
    fn eval(coeffs: &[C64], x: C64) -> C64 {
        coeffs.iter().rev().fold(ZERO, |acc, &c| acc * x + c)
    }

    /// Expand a monic polynomial from its roots (ascending coefficients).
    fn from_roots(roots: &[C64]) -> Vec<C64> {
        let mut coeffs = vec![ONE];
        for &r in roots {
            let mut next = vec![ZERO; coeffs.len() + 1];
            for (j, &cj) in coeffs.iter().enumerate() {
                next[j + 1] += cj;
                next[j] += cj * (-r);
            }
            coeffs = next;
        }
        coeffs
    }

    fn assert_roots_match(found: &[C64], expected: &[C64], tol: f64) {
        assert_eq!(found.len(), expected.len());
        let mut used = vec![false; expected.len()];
        for f in found {
            let (best, dist) = expected
                .iter()
                .enumerate()
                .filter(|(i, _)| !used[*i])
                .map(|(i, e)| (i, (*f - *e).abs()))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert!(
                dist < tol,
                "root {:?} off by {} from {:?}",
                f,
                dist,
                expected
            );
            used[best] = true;
        }
    }

    #[test]
    fn quadratic_real_roots() {
        let mut finder = PolyRootFinder::new();
        let mut roots = Vec::new();
        // (z − 2)(z + 3) = z² + z − 6
        finder.roots(&[c64(-6.0, 0.0), c64(1.0, 0.0), ONE], &mut roots);
        assert_roots_match(&roots, &[c64(2.0, 0.0), c64(-3.0, 0.0)], 1e-12);
    }

    #[test]
    fn unit_circle_constellation() {
        // The shape root-MUSIC produces: conjugate-reciprocal pairs on
        // and near the unit circle.
        let expected: Vec<C64> = [0.3f64, 1.7, 2.9, -1.2]
            .iter()
            .flat_map(|&phi| [C64::from_polar(0.95, phi), C64::from_polar(1.0 / 0.95, phi)])
            .collect();
        let coeffs = from_roots(&expected);
        let mut finder = PolyRootFinder::new();
        let mut roots = Vec::new();
        finder.roots(&coeffs, &mut roots);
        assert_roots_match(&roots, &expected, 1e-8);
    }

    #[test]
    fn clustered_roots_resolved() {
        let expected = vec![
            c64(1.0, 0.0),
            c64(1.0 + 1e-4, 0.0),
            c64(-0.5, 0.8),
            c64(-0.5, -0.8),
        ];
        let coeffs = from_roots(&expected);
        let mut finder = PolyRootFinder::new();
        let mut roots = Vec::new();
        finder.roots(&coeffs, &mut roots);
        // Clustered pair limits attainable accuracy; 1e-2 separates the
        // cluster from the far roots.
        assert_roots_match(&roots, &expected, 1e-2);
    }

    #[test]
    fn residuals_are_tiny() {
        let expected: Vec<C64> = (0..10)
            .map(|i| C64::from_polar(0.5 + 0.1 * i as f64, 0.7 * i as f64))
            .collect();
        let coeffs = from_roots(&expected);
        let mut finder = PolyRootFinder::new();
        let mut roots = Vec::new();
        finder.roots(&coeffs, &mut roots);
        assert_eq!(roots.len(), 10);
        let scale: f64 = coeffs.iter().map(|c| c.abs()).fold(0.0, f64::max);
        for &r in &roots {
            assert!(
                eval(&coeffs, r).abs() < 1e-9 * scale,
                "residual {} at {:?}",
                eval(&coeffs, r).abs(),
                r
            );
        }
    }

    #[test]
    fn deterministic_across_calls_and_workspaces() {
        let expected: Vec<C64> = (0..8)
            .map(|i| C64::from_polar(1.0, 0.1 + 0.77 * i as f64))
            .collect();
        let coeffs = from_roots(&expected);
        let mut a = PolyRootFinder::new();
        let mut b = PolyRootFinder::new();
        let (mut r1, mut r2, mut r3) = (Vec::new(), Vec::new(), Vec::new());
        a.roots(&coeffs, &mut r1);
        a.roots(&coeffs, &mut r2); // reused workspace
        b.roots(&coeffs, &mut r3); // fresh workspace
        let key = |v: &[C64]| format!("{:?}", v);
        assert_eq!(key(&r1), key(&r2));
        assert_eq!(key(&r1), key(&r3));
    }

    #[test]
    fn leading_zeros_trimmed_and_degenerate_inputs_empty() {
        let mut finder = PolyRootFinder::new();
        let mut roots = Vec::new();
        // z + 1 padded with zero high-order coefficients: one root.
        finder.roots(&[ONE, ONE, ZERO, ZERO], &mut roots);
        assert_eq!(roots.len(), 1);
        assert!((roots[0] + ONE).abs() < 1e-12);
        // Constants and empty input: no roots.
        finder.roots(&[c64(3.0, 1.0)], &mut roots);
        assert!(roots.is_empty());
        finder.roots(&[], &mut roots);
        assert!(roots.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_non_finite_coefficients() {
        let mut finder = PolyRootFinder::new();
        let mut roots = Vec::new();
        finder.roots(&[ONE, c64(f64::NAN, 0.0)], &mut roots);
    }
}
