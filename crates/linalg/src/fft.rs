//! Radix-2 fast Fourier transform with precomputed plans.
//!
//! The OFDM modem in `sa-phy` builds 64-subcarrier symbols (the 802.11
//! 20 MHz grid), so only power-of-two sizes are required. We implement the
//! standard iterative in-place Cooley–Tukey algorithm with bit-reversal
//! permutation. An [`FftPlan`] precomputes the per-size setup — the
//! bit-reversal table and every butterfly's twiddle factor — so the hot
//! loop is pure multiply-add with no trigonometry; the free [`fft`]/
//! [`ifft`] functions run on a process-wide plan cache keyed by size, so
//! every call site gets the planned path without API churn. The naive
//! `O(n²)` DFT is kept (non-`cfg(test)`, it is also useful for odd-sized
//! diagnostics) as the reference implementation the tests and the
//! property suite compare against.
//!
//! Convention: `fft` computes `X[k] = Σ_n x[n]·e^{−j2πkn/N}` (no scaling);
//! `ifft` applies the `1/N` factor so `ifft(fft(x)) == x`.

use crate::complex::{C64, ZERO};
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

/// A precomputed radix-2 FFT of one size: bit-reversal permutation table
/// plus per-stage twiddle factors for both directions. Building a plan
/// costs one pass of trigonometry; running it is pure arithmetic. Plans
/// are immutable and shareable (`Arc`) across threads; get a cached one
/// from [`plan_for`], or build an owned one with [`FftPlan::new`].
///
/// ```
/// use sa_linalg::complex::c64;
/// use sa_linalg::fft::{plan_for, dft_naive};
///
/// let plan = plan_for(8);
/// let x: Vec<_> = (0..8).map(|i| c64(i as f64, 0.0)).collect();
/// let mut y = x.clone();
/// plan.fft(&mut y);
/// let slow = dft_naive(&x);
/// assert!(y.iter().zip(&slow).all(|(a, b)| a.approx_eq(*b, 1e-9)));
/// ```
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// `bitrev[i]` = bit-reversed index of `i` (swap targets).
    bitrev: Vec<u32>,
    /// Forward twiddles, packed per stage: for `len = 2, 4, …, n` the
    /// stage's `len/2` roots `e^{−j2πk/len}` — `n − 1` entries total.
    tw_fwd: Vec<C64>,
    /// Inverse twiddles (the conjugates), same layout.
    tw_inv: Vec<C64>,
}

impl FftPlan {
    /// Build a plan for transforms of length `n`. Panics unless `n` is a
    /// power of two (`n == 1` is the trivial identity plan).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "fft: length {} is not a power of two",
            n
        );
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| ((i.reverse_bits() >> (usize::BITS - bits.max(1))) & (n - 1)) as u32)
            .collect();
        let mut tw_fwd = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let ang = -2.0 * PI / len as f64;
            for k in 0..len / 2 {
                tw_fwd.push(C64::cis(ang * k as f64));
            }
            len <<= 1;
        }
        let tw_inv = tw_fwd.iter().map(|w| w.conj()).collect();
        Self {
            n,
            bitrev,
            tw_fwd,
            tw_inv,
        }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — a plan's length is at least 1 (this exists only to
    /// pair with [`FftPlan::len`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT. Panics if `x.len()` differs from the plan's.
    pub fn fft(&self, x: &mut [C64]) {
        self.run(x, false);
    }

    /// In-place inverse FFT (includes the `1/N` normalisation). Panics
    /// if `x.len()` differs from the plan's.
    pub fn ifft(&self, x: &mut [C64]) {
        self.run(x, true);
        let inv = 1.0 / self.n as f64;
        for z in x.iter_mut() {
            *z = z.scale(inv);
        }
    }

    /// Out-of-place convenience wrapper over [`FftPlan::fft`].
    pub fn fft_owned(&self, x: &[C64]) -> Vec<C64> {
        let mut y = x.to_vec();
        self.fft(&mut y);
        y
    }

    /// Out-of-place convenience wrapper over [`FftPlan::ifft`].
    pub fn ifft_owned(&self, x: &[C64]) -> Vec<C64> {
        let mut y = x.to_vec();
        self.ifft(&mut y);
        y
    }

    fn run(&self, x: &mut [C64], inverse: bool) {
        let n = self.n;
        assert_eq!(
            x.len(),
            n,
            "fft: buffer length {} for plan of {}",
            x.len(),
            n
        );
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation from the table.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                x.swap(i, j);
            }
        }
        // Butterflies with precomputed twiddles.
        let tw = if inverse { &self.tw_inv } else { &self.tw_fwd };
        let mut len = 2;
        let mut base = 0;
        while len <= n {
            let half = len / 2;
            let stage = &tw[base..base + half];
            let mut i = 0;
            while i < n {
                for (k, w) in stage.iter().enumerate() {
                    let u = x[i + k];
                    let v = x[i + k + half] * *w;
                    x[i + k] = u + v;
                    x[i + k + half] = u - v;
                }
                i += len;
            }
            base += half;
            len <<= 1;
        }
    }
}

/// The process-wide plan cache behind the free [`fft`]/[`ifft`]
/// functions: one immutable [`FftPlan`] per size, built on first use and
/// shared from then on (the modem asks for the 64-point plan once per
/// packet instead of re-deriving twiddles per symbol).
pub fn plan_for(n: usize) -> Arc<FftPlan> {
    assert!(
        n.is_power_of_two(),
        "fft: length {} is not a power of two",
        n
    );
    static PLANS: OnceLock<Mutex<Vec<Option<Arc<FftPlan>>>>> = OnceLock::new();
    let cache = PLANS.get_or_init(|| Mutex::new(Vec::new()));
    let slot = n.trailing_zeros() as usize;
    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
    if cache.len() <= slot {
        cache.resize(slot + 1, None);
    }
    cache[slot]
        .get_or_insert_with(|| Arc::new(FftPlan::new(n)))
        .clone()
}

/// In-place forward FFT on the cached plan for `x.len()`. Panics unless
/// `x.len()` is a power of two.
pub fn fft(x: &mut [C64]) {
    if x.len() <= 1 {
        return;
    }
    plan_for(x.len()).fft(x);
}

/// In-place inverse FFT (includes the `1/N` normalisation), on the
/// cached plan for `x.len()`. Panics unless `x.len()` is a power of two.
pub fn ifft(x: &mut [C64]) {
    if x.len() <= 1 {
        return;
    }
    plan_for(x.len()).ifft(x);
}

/// Out-of-place convenience wrapper over [`fft`].
pub fn fft_owned(x: &[C64]) -> Vec<C64> {
    let mut y = x.to_vec();
    fft(&mut y);
    y
}

/// Out-of-place convenience wrapper over [`ifft`].
pub fn ifft_owned(x: &[C64]) -> Vec<C64> {
    let mut y = x.to_vec();
    ifft(&mut y);
    y
}

/// Naive `O(n²)` DFT, any length. Reference implementation for tests and
/// odd-length diagnostics.
pub fn dft_naive(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    let mut out = vec![ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (i, &xi) in x.iter().enumerate() {
            let ang = -2.0 * PI * (k * i) as f64 / n as f64;
            *o += xi * C64::cis(ang);
        }
    }
    out
}

/// Swap the two halves of a spectrum so DC moves to the centre — the usual
/// presentation order for OFDM subcarrier grids.
pub fn fftshift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn assert_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                x.approx_eq(*y, tol),
                "mismatch: {} vs {} (tol {})",
                x,
                y,
                tol
            );
        }
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let mut x = vec![ZERO; 8];
        x[0] = c64(1.0, 0.0);
        fft(&mut x);
        for z in &x {
            assert!(z.approx_eq(c64(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn dc_transforms_to_impulse() {
        let mut x = vec![c64(1.0, 0.0); 16];
        fft(&mut x);
        assert!(x[0].approx_eq(c64(16.0, 0.0), 1e-12));
        for z in &x[1..] {
            assert!(z.approx_eq(ZERO, 1e-12));
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::cis(2.0 * PI * (k0 * i) as f64 / n as f64))
            .collect();
        let y = fft_owned(&x);
        for (k, z) in y.iter().enumerate() {
            if k == k0 {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<C64> = (0..32)
            .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let fast = fft_owned(&x);
        let slow = dft_naive(&x);
        assert_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<C64> = (0..128)
            .map(|i| c64((i as f64 * 1.1).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let y = ifft_owned(&fft_owned(&x));
        assert_close(&x, &y, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<C64> = (0..64)
            .map(|i| c64((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let y = fft_owned(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn linearity() {
        let a: Vec<C64> = (0..16).map(|i| c64(i as f64, -(i as f64))).collect();
        let b: Vec<C64> = (0..16).map(|i| c64((i as f64).cos(), 0.5)).collect();
        let sum: Vec<C64> = a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect();
        let fa = fft_owned(&a);
        let fb = fft_owned(&b);
        let fsum = fft_owned(&sum);
        let fa_fb: Vec<C64> = fa.iter().zip(fb.iter()).map(|(x, y)| *x + *y).collect();
        assert_close(&fsum, &fa_fb, 1e-9);
    }

    #[test]
    fn tiny_sizes() {
        let mut x1 = vec![c64(2.5, -1.0)];
        fft(&mut x1);
        assert!(x1[0].approx_eq(c64(2.5, -1.0), 0.0));

        let mut x2 = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        fft(&mut x2);
        assert!(x2[0].approx_eq(c64(1.0, 1.0), 1e-14));
        assert!(x2[1].approx_eq(c64(1.0, -1.0), 1e-14));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn plan_matches_free_functions_bitwise() {
        // The free functions run on the cached plan; an owned plan of
        // the same size must agree exactly.
        for n in [1usize, 2, 8, 64, 256] {
            let x: Vec<C64> = (0..n)
                .map(|i| c64((i as f64 * 0.7).sin(), (i as f64 * 0.2).cos()))
                .collect();
            let plan = FftPlan::new(n);
            assert_eq!(plan.len(), n);
            assert!(!plan.is_empty());
            assert_eq!(plan.fft_owned(&x), fft_owned(&x), "fft n={}", n);
            assert_eq!(plan.ifft_owned(&x), ifft_owned(&x), "ifft n={}", n);
        }
    }

    #[test]
    fn plan_cache_returns_shared_plans() {
        let a = plan_for(64);
        let b = plan_for(64);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(plan_for(128).len(), 128);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn plan_rejects_wrong_length() {
        let plan = FftPlan::new(8);
        let mut x = vec![ZERO; 16];
        plan.fft(&mut x);
    }

    #[test]
    fn plan_matches_naive_dft() {
        for n in [4usize, 32, 128] {
            let x: Vec<C64> = (0..n)
                .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
                .collect();
            let fast = FftPlan::new(n).fft_owned(&x);
            let slow = dft_naive(&x);
            assert_close(&fast, &slow, 1e-9);
        }
    }

    #[test]
    fn fftshift_even_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn naive_dft_handles_odd_lengths() {
        let x: Vec<C64> = (0..7).map(|i| c64(i as f64, 0.0)).collect();
        let y = dft_naive(&x);
        // DC bin is the plain sum.
        assert!((y[0].re - 21.0).abs() < 1e-9);
        assert!(y[0].im.abs() < 1e-9);
    }
}
