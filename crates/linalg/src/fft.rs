//! Radix-2 fast Fourier transform.
//!
//! The OFDM modem in `sa-phy` builds 64-subcarrier symbols (the 802.11
//! 20 MHz grid), so only power-of-two sizes are required. We implement the
//! standard iterative in-place Cooley–Tukey algorithm with bit-reversal
//! permutation; the naive `O(n²)` DFT is kept (non-`cfg(test)`, it is also
//! useful for odd-sized diagnostics) as the reference implementation the
//! tests compare against.
//!
//! Convention: `fft` computes `X[k] = Σ_n x[n]·e^{−j2πkn/N}` (no scaling);
//! `ifft` applies the `1/N` factor so `ifft(fft(x)) == x`.

use crate::complex::{C64, ZERO};
use std::f64::consts::PI;

/// In-place forward FFT. Panics unless `x.len()` is a power of two.
pub fn fft(x: &mut [C64]) {
    fft_dir(x, -1.0);
}

/// In-place inverse FFT (includes the `1/N` normalisation).
pub fn ifft(x: &mut [C64]) {
    fft_dir(x, 1.0);
    let n = x.len() as f64;
    for z in x.iter_mut() {
        *z = z.scale(1.0 / n);
    }
}

/// Out-of-place convenience wrapper over [`fft`].
pub fn fft_owned(x: &[C64]) -> Vec<C64> {
    let mut y = x.to_vec();
    fft(&mut y);
    y
}

/// Out-of-place convenience wrapper over [`ifft`].
pub fn ifft_owned(x: &[C64]) -> Vec<C64> {
    let mut y = x.to_vec();
    ifft(&mut y);
    y
}

fn fft_dir(x: &mut [C64], sign: f64) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "fft: length {} is not a power of two",
        n
    );

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = C64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = C64::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = x[i + k];
                let v = x[i + k + len / 2] * w;
                x[i + k] = u + v;
                x[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Naive `O(n²)` DFT, any length. Reference implementation for tests and
/// odd-length diagnostics.
pub fn dft_naive(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    let mut out = vec![ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (i, &xi) in x.iter().enumerate() {
            let ang = -2.0 * PI * (k * i) as f64 / n as f64;
            *o += xi * C64::cis(ang);
        }
    }
    out
}

/// Swap the two halves of a spectrum so DC moves to the centre — the usual
/// presentation order for OFDM subcarrier grids.
pub fn fftshift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn assert_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                x.approx_eq(*y, tol),
                "mismatch: {} vs {} (tol {})",
                x,
                y,
                tol
            );
        }
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let mut x = vec![ZERO; 8];
        x[0] = c64(1.0, 0.0);
        fft(&mut x);
        for z in &x {
            assert!(z.approx_eq(c64(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn dc_transforms_to_impulse() {
        let mut x = vec![c64(1.0, 0.0); 16];
        fft(&mut x);
        assert!(x[0].approx_eq(c64(16.0, 0.0), 1e-12));
        for z in &x[1..] {
            assert!(z.approx_eq(ZERO, 1e-12));
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::cis(2.0 * PI * (k0 * i) as f64 / n as f64))
            .collect();
        let y = fft_owned(&x);
        for (k, z) in y.iter().enumerate() {
            if k == k0 {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<C64> = (0..32)
            .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let fast = fft_owned(&x);
        let slow = dft_naive(&x);
        assert_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<C64> = (0..128)
            .map(|i| c64((i as f64 * 1.1).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let y = ifft_owned(&fft_owned(&x));
        assert_close(&x, &y, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<C64> = (0..64)
            .map(|i| c64((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let y = fft_owned(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn linearity() {
        let a: Vec<C64> = (0..16).map(|i| c64(i as f64, -(i as f64))).collect();
        let b: Vec<C64> = (0..16).map(|i| c64((i as f64).cos(), 0.5)).collect();
        let sum: Vec<C64> = a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect();
        let fa = fft_owned(&a);
        let fb = fft_owned(&b);
        let fsum = fft_owned(&sum);
        let fa_fb: Vec<C64> = fa.iter().zip(fb.iter()).map(|(x, y)| *x + *y).collect();
        assert_close(&fsum, &fa_fb, 1e-9);
    }

    #[test]
    fn tiny_sizes() {
        let mut x1 = vec![c64(2.5, -1.0)];
        fft(&mut x1);
        assert!(x1[0].approx_eq(c64(2.5, -1.0), 0.0));

        let mut x2 = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        fft(&mut x2);
        assert!(x2[0].approx_eq(c64(1.0, 1.0), 1e-14));
        assert!(x2[1].approx_eq(c64(1.0, -1.0), 1e-14));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn fftshift_even_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn naive_dft_handles_odd_lengths() {
        let x: Vec<C64> = (0..7).map(|i| c64(i as f64, 0.0)).collect();
        let y = dft_naive(&x);
        // DC bin is the plain sum.
        assert!((y[0].re - 21.0).abs() < 1e-9);
        assert!(y[0].im.abs() < 1e-9);
    }
}
