//! Descriptive statistics and Student-t confidence intervals.
//!
//! The paper reports bearing estimates as "the mean obtained bearing as
//! well as 99% confidence interval" over 10 packets per client (Fig 5) and
//! accuracy claims "with 95% confidence" (§2.3.1). Those intervals are
//! classical Student-t intervals on small samples, so we need t quantiles;
//! they are computed exactly (regularised incomplete beta + bisection)
//! rather than from a hard-coded table so any confidence level works.

/// Arithmetic mean. Returns NaN for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (divides by `n − 1`). NaN for `n < 2`.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation percentile, `p` in `[0, 1]`. Sorts a copy.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile: p must be in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = p * (v.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = idx - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// Empirical CDF evaluated at `x`: fraction of samples `<= x`.
pub fn ecdf(xs: &[f64], x: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().filter(|&&v| v <= x).count() as f64 / xs.len() as f64
}

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval (`mean ± half_width`).
    pub half_width: f64,
    /// Confidence level used, e.g. `0.99`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }
    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }
    /// True if `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// Student-t confidence interval for the mean of `xs` at the given
/// two-sided `level` (e.g. `0.99` for the paper's Fig-5 error bars).
///
/// For `n == 1` the half-width is infinite (no variance information).
pub fn t_confidence_interval(xs: &[f64], level: f64) -> ConfidenceInterval {
    assert!((0.0..1.0).contains(&level) && level > 0.0);
    let n = xs.len();
    let m = mean(xs);
    if n < 2 {
        return ConfidenceInterval {
            mean: m,
            half_width: f64::INFINITY,
            level,
        };
    }
    let s = std_dev(xs);
    let t = t_quantile(1.0 - (1.0 - level) / 2.0, (n - 1) as f64);
    ConfidenceInterval {
        mean: m,
        half_width: t * s / (n as f64).sqrt(),
        level,
    }
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the Lanczos approximation.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularised incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes `betacf` scheme).
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "inc_beta: x must be in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry that makes the continued fraction converge fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `nu` degrees of freedom.
pub fn t_cdf(t: f64, nu: f64) -> f64 {
    assert!(nu > 0.0);
    if t == 0.0 {
        return 0.5;
    }
    let x = nu / (nu + t * t);
    let p = 0.5 * inc_beta(nu / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Quantile (inverse CDF) of the Student-t distribution, by bisection on
/// [`t_cdf`]. `p` in `(0, 1)`.
pub fn t_quantile(p: f64, nu: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "t_quantile: p in (0,1)");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Bracket: |t| quantiles are modest for p <= 0.9999 and nu >= 1.
    let (mut lo, mut hi) = (-1e4, 1e4);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, nu) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.abs().max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal CDF (via the relationship to the error function,
/// computed from the incomplete gamma–free Abramowitz–Stegun 7.1.26
/// rational approximation; |error| < 1.5e-7, ample for reporting).
pub fn normal_cdf(x: f64) -> f64 {
    // erf via A&S 7.1.26.
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z.abs());
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-z * z).exp();
    let erf = if z >= 0.0 { y } else { -y };
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance with n−1 = 7: Σ(x−5)² = 32 → 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(percentile(&[], 0.5).is_nan());
        assert!(ecdf(&[], 0.0).is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        // Order must not matter.
        let sh = [4.0, 1.0, 3.0, 2.0];
        assert!((median(&sh) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_counts_fraction() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((ecdf(&xs, 2.5) - 0.5).abs() < 1e-12);
        assert!((ecdf(&xs, 0.0) - 0.0).abs() < 1e-12);
        assert!((ecdf(&xs, 4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let v = inc_beta(2.5, 1.5, 0.3);
        let w = 1.0 - inc_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
        // I_x(1,1) = x (uniform distribution).
        assert!((inc_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_symmetry_and_midpoint() {
        assert!((t_cdf(0.0, 5.0) - 0.5).abs() < 1e-14);
        let p = t_cdf(1.3, 7.0);
        let q = t_cdf(-1.3, 7.0);
        assert!((p + q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_quantile_reference_values() {
        // Classical table values.
        assert!((t_quantile(0.975, 9.0) - 2.2621571628).abs() < 1e-6);
        assert!((t_quantile(0.995, 9.0) - 3.2498355416).abs() < 1e-6);
        assert!((t_quantile(0.975, 1.0) - 12.7062047364).abs() < 1e-4);
        // Large nu approaches the normal quantile 1.95996.
        assert!((t_quantile(0.975, 1e6) - 1.959964).abs() < 1e-3);
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for &nu in &[1.0, 4.0, 9.0, 30.0] {
            for &p in &[0.05, 0.25, 0.5, 0.9, 0.995] {
                let t = t_quantile(p, nu);
                assert!(
                    (t_cdf(t, nu) - p).abs() < 1e-9,
                    "roundtrip failed nu={} p={}",
                    nu,
                    p
                );
            }
        }
    }

    #[test]
    fn confidence_interval_matches_hand_computation() {
        // n=10, s known ⇒ half-width = t(0.995, 9)·s/√10.
        let xs: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let ci = t_confidence_interval(&xs, 0.99);
        let s = std_dev(&xs);
        let expect = 3.2498355416 * s / 10f64.sqrt();
        assert!((ci.mean - 5.5).abs() < 1e-12);
        assert!((ci.half_width - expect).abs() < 1e-6);
        assert!(ci.contains(5.5));
        assert!(!ci.contains(100.0));
    }

    #[test]
    fn single_sample_interval_is_infinite() {
        let ci = t_confidence_interval(&[3.0], 0.95);
        assert_eq!(ci.mean, 3.0);
        assert!(ci.half_width.is_infinite());
    }

    #[test]
    fn normal_cdf_reference() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.15865525).abs() < 1e-5);
    }
}
