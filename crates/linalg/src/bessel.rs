//! Bessel functions of the first kind, integer order.
//!
//! Needed by the Davies phase-mode transform (`sa-array::modespace`) that
//! maps the paper's circular (octagonal) antenna array onto a virtual
//! uniform linear array: mode `m` is scaled by `jᵐ·J_m(kr)` where `k` is
//! the wavenumber and `r` the array radius. For the paper's geometry
//! `kr ≈ 3.09` and `|m| ≤ 4`, comfortably inside the ascending series'
//! fast-convergence region (`x ≲ 15`).

/// `J_n(x)` for integer `n ≥ 0` via the ascending power series
/// `Σ_m (−1)^m / (m!·(m+n)!) · (x/2)^{2m+n}`.
///
/// Accuracy is ~1e-14 for `|x| ≤ 15`; callers in this workspace never leave
/// that range (debug builds assert it).
pub fn bessel_j(n: u32, x: f64) -> f64 {
    debug_assert!(
        x.abs() <= 40.0,
        "bessel_j: ascending series unsuitable for |x| = {}",
        x.abs()
    );
    // J_n(-x) = (-1)^n J_n(x)
    let sign = if x < 0.0 && n % 2 == 1 { -1.0 } else { 1.0 };
    let x = x.abs();

    let half = x / 2.0;
    // First term: (x/2)^n / n!
    let mut term = 1.0;
    for k in 1..=n {
        term *= half / k as f64;
    }
    let mut sum = term;
    // term_{m} = term_{m-1} * (−(x/2)²) / (m·(m+n))
    let neg_q = -(half * half);
    let mut m = 1.0f64;
    loop {
        term *= neg_q / (m * (m + n as f64));
        sum += term;
        if term.abs() < 1e-17 * sum.abs().max(1e-300) || m > 200.0 {
            break;
        }
        m += 1.0;
    }
    sign * sum
}

/// `J_n(x)` for possibly-negative integer order, using
/// `J_{−n}(x) = (−1)^n·J_n(x)`.
pub fn bessel_j_int(n: i32, x: f64) -> f64 {
    if n >= 0 {
        bessel_j(n as u32, x)
    } else {
        let m = (-n) as u32;
        let s = if m % 2 == 1 { -1.0 } else { 1.0 };
        s * bessel_j(m, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from Abramowitz & Stegun / DLMF tables.
    #[test]
    fn j0_known_values() {
        assert!((bessel_j(0, 0.0) - 1.0).abs() < 1e-15);
        assert!((bessel_j(0, 1.0) - 0.7651976865579666).abs() < 1e-12);
        assert!((bessel_j(0, 2.0) - 0.22389077914123567).abs() < 1e-12);
        assert!((bessel_j(0, 5.0) - (-0.177_596_771_314_338_3)).abs() < 1e-12);
    }

    #[test]
    fn j1_known_values() {
        assert!(bessel_j(1, 0.0).abs() < 1e-15);
        assert!((bessel_j(1, 1.0) - 0.4400505857449335).abs() < 1e-12);
        assert!((bessel_j(1, 2.0) - 0.5767248077568734).abs() < 1e-12);
    }

    #[test]
    fn higher_orders() {
        assert!((bessel_j(2, 3.0) - 0.4860912605858911).abs() < 1e-12);
        assert!((bessel_j(3, 3.0) - 0.30906272225525164).abs() < 1e-12);
        assert!((bessel_j(4, 3.09) - 0.1442348030445296).abs() < 1e-12);
    }

    #[test]
    fn first_zero_of_j0() {
        // J0's first zero is at x ≈ 2.404825557695773.
        assert!(bessel_j(0, 2.404825557695773).abs() < 1e-12);
    }

    #[test]
    fn negative_argument_parity() {
        for n in 0..5u32 {
            let x = 1.7;
            let expect = if n % 2 == 1 { -1.0 } else { 1.0 } * bessel_j(n, x);
            assert!((bessel_j_int(n as i32, -x) - expect).abs() < 1e-13);
        }
    }

    #[test]
    fn negative_order_identity() {
        for n in 1..5i32 {
            let x = 2.3;
            let expect = if n % 2 == 1 { -1.0 } else { 1.0 } * bessel_j(n as u32, x);
            assert!((bessel_j_int(-n, x) - expect).abs() < 1e-13);
        }
    }

    #[test]
    fn recurrence_holds() {
        // J_{n−1}(x) + J_{n+1}(x) = (2n/x)·J_n(x)
        let x = 3.09;
        for n in 1..6i32 {
            let lhs = bessel_j_int(n - 1, x) + bessel_j_int(n + 1, x);
            let rhs = 2.0 * n as f64 / x * bessel_j_int(n, x);
            assert!(
                (lhs - rhs).abs() < 1e-11,
                "recurrence failed at n={}: {} vs {}",
                n,
                lhs,
                rhs
            );
        }
    }

    #[test]
    fn sum_of_squares_identity() {
        // J0² + 2·Σ_{n≥1} Jn² = 1
        let x = 2.5;
        let mut s = bessel_j(0, x).powi(2);
        for n in 1..40 {
            s += 2.0 * bessel_j(n, x).powi(2);
        }
        assert!((s - 1.0).abs() < 1e-12);
    }
}
