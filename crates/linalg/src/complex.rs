//! Double-precision complex numbers.
//!
//! The whole SecureAngle stack operates on baseband IQ samples, which are
//! complex numbers: the real part is the in-phase (I) component and the
//! imaginary part the quadrature (Q) component of Figure 1(b) in the paper.
//! We implement our own small complex type instead of pulling in a numerics
//! crate; the operation set below is exactly what the signal chain needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// `re` is the in-phase (I) component, `im` the quadrature (Q) component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct C64 {
    /// Real / in-phase component.
    pub re: f64,
    /// Imaginary / quadrature component.
    pub im: f64,
}

/// The imaginary unit `j` (electrical-engineering notation).
pub const J: C64 = C64 { re: 0.0, im: 1.0 };

/// Complex zero.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };

/// Complex one.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

/// Shorthand constructor, `c64(re, im)`.
#[inline]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// Construct from Cartesian components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Construct from polar form: `r * e^{j theta}`.
    ///
    /// This is how propagation applies phase: a path of length `d` multiplies
    /// the transmitted signal by `from_polar(gain, -2*pi*d/lambda)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{j theta}`: a pure phasor of unit magnitude.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, `|z|^2 = z * conj(z)`. Cheaper than [`C64::abs`]
    /// because it avoids the square root; used in power computations.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in `(-pi, pi]`, measured from the positive I axis —
    /// the `∠x` of the paper's Equation 1.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaN components for zero input.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance on both components.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Add for C64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for C64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for C64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for C64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z · w⁻¹ by definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for C64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> Self {
        iter.fold(ZERO, |acc, z| acc + *z)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_accessors() {
        let z = c64(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let th = -PI + 2.0 * PI * (k as f64) / 16.0 + 0.01;
            let z = C64::cis(th);
            assert!((z.abs() - 1.0).abs() < TOL);
            assert!((z.arg() - th).abs() < TOL);
        }
    }

    #[test]
    fn arg_quadrants() {
        assert!((c64(1.0, 0.0).arg()).abs() < TOL);
        assert!((c64(0.0, 1.0).arg() - FRAC_PI_2).abs() < TOL);
        assert!((c64(-1.0, 0.0).arg() - PI).abs() < TOL);
        assert!((c64(0.0, -1.0).arg() + FRAC_PI_2).abs() < TOL);
    }

    #[test]
    fn mul_is_phase_addition() {
        let a = C64::cis(0.5);
        let b = C64::cis(0.8);
        let p = a * b;
        assert!((p.arg() - 1.3).abs() < TOL);
        assert!((p.abs() - 1.0).abs() < TOL);
    }

    #[test]
    fn conjugate_negates_phase() {
        let z = C64::from_polar(3.0, 1.1);
        assert!((z.conj().arg() + 1.1).abs() < TOL);
        assert!((z.conj().abs() - 3.0).abs() < TOL);
    }

    #[test]
    fn division_undoes_multiplication() {
        let a = c64(1.25, -0.5);
        let b = c64(-2.0, 3.5);
        let q = (a * b) / b;
        assert!(q.approx_eq(a, 1e-12));
    }

    #[test]
    fn recip_of_unit_is_conj() {
        let z = C64::cis(0.3);
        assert!(z.recip().approx_eq(z.conj(), TOL));
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let z = c64(0.0, 0.9).exp();
        assert!(z.approx_eq(C64::cis(0.9), TOL));
    }

    #[test]
    fn exp_of_real() {
        let z = c64(1.0, 0.0).exp();
        assert!((z.re - std::f64::consts::E).abs() < 1e-12);
        assert!(z.im.abs() < TOL);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = c64(-3.0, 4.0);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-10));
    }

    #[test]
    fn sum_iterator() {
        let v = [c64(1.0, 2.0), c64(3.0, -1.0), c64(-0.5, 0.5)];
        let s: C64 = v.iter().sum();
        assert!(s.approx_eq(c64(3.5, 1.5), TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1.000000+2.000000j");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1.000000-2.000000j");
    }

    #[test]
    fn real_scalar_ops() {
        let z = c64(2.0, -6.0);
        assert!((z * 0.5).approx_eq(c64(1.0, -3.0), TOL));
        assert!((0.5 * z).approx_eq(c64(1.0, -3.0), TOL));
        assert!((z / 2.0).approx_eq(c64(1.0, -3.0), TOL));
    }

    #[test]
    fn nan_and_finite_predicates() {
        assert!(c64(f64::NAN, 0.0).is_nan());
        assert!(!c64(1.0, 1.0).is_nan());
        assert!(c64(1.0, 1.0).is_finite());
        assert!(!c64(f64::INFINITY, 0.0).is_finite());
    }
}
