//! # sa-linalg — numerics for the SecureAngle reproduction
//!
//! Self-contained numerical kernels used across the workspace:
//!
//! * [`complex`] — `C64`, double-precision complex numbers (baseband IQ
//!   samples, Figure 1(b) of the paper);
//! * [`matrix`] — small dense complex matrices (antenna correlation
//!   matrices are at most 16×16);
//! * [`eigen`] — Hermitian eigendecomposition (Householder tridiagonal +
//!   implicit-shift QL, with the cyclic Jacobi method kept as reference
//!   oracle), the core of MUSIC's eigenstructure analysis;
//! * [`fft`] — radix-2 FFT with precomputed, cached plans for the OFDM
//!   modem;
//! * [`poly`] — complex polynomial rooting (Laguerre with deflation),
//!   the kernel behind the root-MUSIC estimator backend;
//! * [`bessel`] — integer-order `J_n` for the circular-array phase-mode
//!   transform;
//! * [`stats`] — means, percentiles and Student-t confidence intervals
//!   (the paper's Fig-5 error bars and §2.3.1 accuracy claims).
//!
//! Everything is written against stable Rust with no unsafe code and no
//! external numerics dependencies; sizes are small enough that clarity and
//! verifiability win over optimisation (hot paths recycle buffers instead
//! — see [`eigen::EighWorkspace`] and `docs/BENCHMARKS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bessel;
pub mod complex;
pub mod eigen;
pub mod fft;
pub mod matrix;
pub mod poly;
pub mod stats;

pub use complex::{c64, C64};
pub use eigen::{eigh, EigBackend, EigH};
pub use fft::FftPlan;
pub use matrix::CMat;
