//! Hermitian eigendecomposition by the cyclic complex Jacobi method.
//!
//! MUSIC ("the best known AoA estimation algorithms are based on
//! eigenstructure analysis of a correlation matrix", paper §2.1) needs the
//! full eigendecomposition of an `M × M` Hermitian sample-covariance matrix,
//! where `M` is the antenna count (2–16 here). At these sizes the cyclic
//! Jacobi method is simple, numerically robust (it is backward stable and
//! computes small eigenvalues to high relative accuracy, which matters
//! because MUSIC's noise subspace lives in the *smallest* eigenvalues), and
//! has no convergence pathologies that would need escape hatches.
//!
//! The rotation for a Hermitian 2×2 block `[[α, b], [b̄, γ]]` with
//! `b = |b|·e^{jφ}` is the unitary
//! `U = [[c, −s·e^{jφ}], [s·e^{−jφ}, c]]` where `t = s/c` solves
//! `t² − 2τt − 1 = 0`, `τ = (γ−α)/(2|b|)`; we take the root of smaller
//! magnitude for stability (Golub & Van Loan §8.5 adapted to the complex
//! case).

use crate::complex::{c64, C64};
use crate::matrix::CMat;

/// Result of a Hermitian eigendecomposition.
///
/// Invariants (verified by the tests in this module):
/// * `values` is sorted ascending and purely real;
/// * column `k` of `vectors` is a unit-norm eigenvector for `values[k]`;
/// * `vectors` is unitary: `V^H V = I`;
/// * `A = V · diag(values) · V^H` to within the solver tolerance.
#[derive(Debug, Clone)]
pub struct EigH {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, same order as `values`.
    pub vectors: CMat,
}

impl EigH {
    /// Eigenvalues in descending order together with the column indices
    /// into [`EigH::vectors`] — the natural order for MUSIC, which splits
    /// the top-`K` signal subspace from the rest.
    pub fn descending(&self) -> Vec<(f64, usize)> {
        let mut idx: Vec<(f64, usize)> = self.values.iter().cloned().zip(0..).collect();
        idx.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        idx
    }

    /// The eigenvector for sorted-ascending index `k`.
    pub fn vector(&self, k: usize) -> Vec<C64> {
        self.vectors.col(k)
    }
}

/// Tolerance policy for [`eigh`]: iteration stops when every off-diagonal
/// magnitude falls below `rel_tol * ‖A‖_F`, or after `max_sweeps` full
/// cyclic sweeps (whichever comes first).
#[derive(Debug, Clone, Copy)]
pub struct JacobiParams {
    /// Relative off-diagonal tolerance. Default `1e-14`.
    pub rel_tol: f64,
    /// Maximum number of cyclic sweeps. Default 64; Jacobi converges
    /// quadratically, so well-conditioned 16×16 inputs need ~6 sweeps.
    pub max_sweeps: usize,
}

impl Default for JacobiParams {
    fn default() -> Self {
        Self {
            rel_tol: 1e-14,
            max_sweeps: 64,
        }
    }
}

/// Eigendecomposition of a Hermitian matrix with default parameters.
///
/// Panics if `a` is not square. The Hermitian property is *assumed*: only
/// the upper triangle and the real parts of the diagonal are read, matching
/// LAPACK's `zheev` convention, so slightly-asymmetric sample covariance
/// matrices (floating-point accumulation error) are handled gracefully.
pub fn eigh(a: &CMat) -> EigH {
    eigh_with(a, JacobiParams::default())
}

/// [`eigh`] with explicit iteration parameters.
pub fn eigh_with(a: &CMat, params: JacobiParams) -> EigH {
    let mut ws = EighWorkspace::new();
    let mut out = EigH {
        values: Vec::new(),
        vectors: CMat::zeros(0, 0),
    };
    ws.eigh_into(a, params, &mut out);
    out
}

/// Reusable scratch buffers for [`EighWorkspace::eigh_into`].
///
/// The Jacobi solver needs a working copy of the (symmetrised) input, an
/// accumulator for the rotations, and a permutation pass to sort the
/// spectrum. Calling [`eigh`] in a loop re-allocates all three per call;
/// a workspace held across calls turns the whole decomposition into a
/// zero-allocation operation once the buffers have grown to the problem
/// size — which is what the batched AP pipeline does per packet.
#[derive(Debug, Default)]
pub struct EighWorkspace {
    /// Working copy of the symmetrised input (destroyed by rotations);
    /// doubles as the column-permutation scratch after convergence.
    w: CMat,
    /// Sort-order scratch.
    order: Vec<usize>,
    /// Diagonal (eigenvalue) scratch.
    diag: Vec<f64>,
}

impl EighWorkspace {
    /// A new, empty workspace. Buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Eigendecomposition with default parameters, reusing this
    /// workspace's buffers and writing the result into `out` (whose own
    /// allocations are also recycled).
    pub fn eigh(&mut self, a: &CMat, out: &mut EigH) {
        self.eigh_into(a, JacobiParams::default(), out);
    }

    /// [`EighWorkspace::eigh`] with explicit iteration parameters.
    ///
    /// Identical results to the free function [`eigh_with`]; the only
    /// difference is allocation reuse. Panics if `a` is not square.
    pub fn eigh_into(&mut self, a: &CMat, params: JacobiParams, out: &mut EigH) {
        assert!(a.is_square(), "eigh: matrix must be square");
        let n = a.rows();

        // Work on a Hermitian-symmetrised copy: W = (A + A^H)/2.
        let w = &mut self.w;
        w.reset_from_fn(n, n, |i, j| (a[(i, j)] + a[(j, i)].conj()).scale(0.5));
        let v = &mut out.vectors;
        v.reset_identity(n);

        if n <= 1 {
            out.values.clear();
            if n == 1 {
                out.values.push(w[(0, 0)].re);
            }
            return;
        }

        let scale = w.fro_norm().max(f64::MIN_POSITIVE);
        let tol = params.rel_tol * scale;

        for _sweep in 0..params.max_sweeps {
            if w.max_offdiag() <= tol {
                break;
            }
            for p in 0..n - 1 {
                for q in p + 1..n {
                    let b = w[(p, q)];
                    let babs = b.abs();
                    if babs <= tol {
                        continue;
                    }
                    let alpha = w[(p, p)].re;
                    let gamma = w[(q, q)].re;

                    let tau = (gamma - alpha) / (2.0 * babs);
                    // Small-magnitude root of t² − 2τt − 1 = 0 (the two roots
                    // multiply to −1; picking |t| ≤ 1 keeps rotations small and
                    // the iteration stable).
                    let sign = if tau >= 0.0 { 1.0 } else { -1.0 };
                    let t = -sign / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // U acts on columns/rows p and q:
                    //   col_p' =  c*col_p + s e^{-jφ} col_q
                    //   col_q' = -s e^{jφ} col_p + c*col_q
                    let se_m = C64::from_polar(s, -b.arg()); // s·e^{−jφ}
                    let se_p = C64::from_polar(s, b.arg()); // s·e^{+jφ}

                    // Update W = U^H W U.
                    // Rows (left multiply by U^H):
                    for k in 0..n {
                        let wp = w[(p, k)];
                        let wq = w[(q, k)];
                        w[(p, k)] = wp.scale(c) + se_p * wq;
                        w[(q, k)] = wq.scale(c) - se_m * wp;
                    }
                    // Columns (right multiply by U):
                    for k in 0..n {
                        let wp = w[(k, p)];
                        let wq = w[(k, q)];
                        w[(k, p)] = wp.scale(c) + se_m * wq;
                        w[(k, q)] = wq.scale(c) - se_p * wp;
                    }
                    // Clean the eliminated pair and enforce realness of the
                    // rotated diagonal (both are exact in infinite precision).
                    w[(p, q)] = c64(0.0, 0.0);
                    w[(q, p)] = c64(0.0, 0.0);
                    w[(p, p)] = c64(w[(p, p)].re, 0.0);
                    w[(q, q)] = c64(w[(q, q)].re, 0.0);

                    // Accumulate V = V·U.
                    for k in 0..n {
                        let vp = v[(k, p)];
                        let vq = v[(k, q)];
                        v[(k, p)] = vp.scale(c) + se_m * vq;
                        v[(k, q)] = vq.scale(c) - se_p * vp;
                    }
                }
            }
        }

        // Extract and sort ascending.
        let order = &mut self.order;
        order.clear();
        order.extend(0..n);
        let diag = &mut self.diag;
        diag.clear();
        diag.extend((0..n).map(|i| w[(i, i)].re));
        order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).unwrap());

        out.values.clear();
        out.values.extend(order.iter().map(|&i| diag[i]));
        // Permute eigenvector columns into sorted order, reusing `w` (its
        // contents are spent) as the destination, then swap it into the
        // output so no fresh matrix is allocated.
        let order = &self.order;
        w.reset_from_fn(n, n, |i, k| v[(i, order[k])]);
        std::mem::swap(&mut self.w, &mut out.vectors);
    }
}

/// Inverse of a Hermitian positive-(semi)definite matrix via its
/// eigendecomposition, with Tikhonov regularisation: eigenvalues below
/// `ridge` are clamped to `ridge` before inversion.
///
/// Used by the Capon/MVDR beamformer, where the sample covariance from a
/// short packet can be numerically singular.
pub fn hermitian_inverse(a: &CMat, ridge: f64) -> CMat {
    let eig = eigh(a);
    let n = a.rows();
    let v = &eig.vectors;
    // V · diag(1/λ) · V^H
    let mut out = CMat::zeros(n, n);
    for k in 0..n {
        let lam = eig.values[k].max(ridge);
        let col = v.col(k);
        let rank1 = CMat::outer(&col, &col).scale(1.0 / lam);
        out = &out + &rank1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, C64, ZERO};
    use crate::matrix::{vdot, vnorm};

    fn residual(a: &CMat, eig: &EigH) -> f64 {
        // ‖A·v_k − λ_k·v_k‖ summed over k.
        let n = a.rows();
        let mut r = 0.0;
        for k in 0..n {
            let v = eig.vector(k);
            let av = a.matvec(&v);
            let lv: Vec<C64> = v.iter().map(|z| z.scale(eig.values[k])).collect();
            let diff: Vec<C64> = av.iter().zip(lv.iter()).map(|(x, y)| *x - *y).collect();
            r += vnorm(&diff);
        }
        r
    }

    #[test]
    fn empty_and_singleton() {
        let e0 = eigh(&CMat::zeros(0, 0));
        assert!(e0.values.is_empty());
        let e1 = eigh(&CMat::from_rows(1, 1, &[c64(4.2, 0.0)]));
        assert_eq!(e1.values, vec![4.2]);
        assert!(e1.vectors[(0, 0)].approx_eq(c64(1.0, 0.0), 1e-14));
    }

    #[test]
    fn diagonal_matrix_sorted() {
        let a = CMat::from_rows(
            3,
            3,
            &[
                c64(3.0, 0.0),
                ZERO,
                ZERO,
                ZERO,
                c64(1.0, 0.0),
                ZERO,
                ZERO,
                ZERO,
                c64(2.0, 0.0),
            ],
        );
        let e = eigh(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_real() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = CMat::from_rows(
            2,
            2,
            &[c64(2.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0), c64(2.0, 0.0)],
        );
        let e = eigh(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn known_2x2_complex() {
        // [[1, j], [-j, 1]] has eigenvalues 0 and 2.
        let a = CMat::from_rows(
            2,
            2,
            &[c64(1.0, 0.0), c64(0.0, 1.0), c64(0.0, -1.0), c64(1.0, 0.0)],
        );
        let e = eigh(&a);
        assert!(e.values[0].abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn rank_one_outer_product() {
        // u·u^H has eigenvalues {‖u‖², 0, …, 0}.
        let u = vec![c64(1.0, 2.0), c64(-0.5, 0.3), c64(0.0, -1.5)];
        let a = CMat::outer(&u, &u);
        let e = eigh(&a);
        let nrm2 = vnorm(&u).powi(2);
        assert!(e.values[0].abs() < 1e-10);
        assert!(e.values[1].abs() < 1e-10);
        assert!((e.values[2] - nrm2).abs() < 1e-10 * nrm2.max(1.0));
        // Top eigenvector is parallel to u.
        let v = e.vector(2);
        let overlap = vdot(&v, &u).abs() / vnorm(&u);
        assert!((overlap - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = hermitian_from_seed(6, 7);
        let e = eigh(&a);
        let tr = a.trace().re;
        let s: f64 = e.values.iter().sum();
        assert!((tr - s).abs() < 1e-9 * tr.abs().max(1.0));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = hermitian_from_seed(8, 3);
        let e = eigh(&a);
        let vh_v = e.vectors.hermitian().matmul(&e.vectors);
        assert!(vh_v.approx_eq(&CMat::identity(8), 1e-10));
    }

    #[test]
    fn reconstruction() {
        let a = hermitian_from_seed(5, 11);
        let e = eigh(&a);
        let mut rec = CMat::zeros(5, 5);
        for k in 0..5 {
            let v = e.vector(k);
            rec = &rec + &CMat::outer(&v, &v).scale(e.values[k]);
        }
        assert!(rec.approx_eq(&a, 1e-9));
    }

    #[test]
    fn descending_order_helper() {
        let a = hermitian_from_seed(4, 1);
        let e = eigh(&a);
        let d = e.descending();
        for w in d.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
        assert!((d[0].0 - e.values[3]).abs() < 1e-14);
    }

    #[test]
    fn handles_slightly_asymmetric_input() {
        // A sample covariance accumulated in floating point is Hermitian
        // only to round-off; eigh must symmetrise rather than blow up.
        let mut a = hermitian_from_seed(4, 9);
        a[(0, 1)] += c64(1e-13, -1e-13);
        let e = eigh(&a);
        assert!(residual(&a, &e) < 1e-8);
    }

    #[test]
    fn workspace_reuse_matches_free_function_across_sizes() {
        // One workspace driven through shrinking and growing problem
        // sizes must reproduce the free function bit-for-bit.
        let mut ws = EighWorkspace::new();
        let mut out = EigH {
            values: Vec::new(),
            vectors: CMat::zeros(0, 0),
        };
        for (n, seed) in [(8usize, 3u64), (4, 9), (6, 7), (1, 2), (8, 11)] {
            let a = hermitian_from_seed(n, seed);
            ws.eigh(&a, &mut out);
            let free = eigh(&a);
            assert_eq!(out.values, free.values, "values differ at n={}", n);
            assert_eq!(out.vectors, free.vectors, "vectors differ at n={}", n);
        }
    }

    #[test]
    fn hermitian_inverse_is_inverse() {
        // Build a well-conditioned PSD matrix: B = A·A^H + I.
        let a = hermitian_from_seed(4, 5);
        let b = &a.matmul(&a.hermitian()) + &CMat::identity(4);
        let binv = hermitian_inverse(&b, 1e-12);
        let prod = b.matmul(&binv);
        assert!(prod.approx_eq(&CMat::identity(4), 1e-8));
    }

    #[test]
    fn hermitian_inverse_ridge_clamps() {
        // Singular matrix: rank-1. With ridge, inverse stays finite.
        let u = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let a = CMat::outer(&u, &u);
        let inv = hermitian_inverse(&a, 1e-3);
        assert!(inv.data().iter().all(|z| z.is_finite()));
    }

    /// Deterministic pseudo-random Hermitian matrix (no RNG dependency in
    /// unit tests; a simple LCG keeps this crate's dev-deps minimal).
    fn hermitian_from_seed(n: usize, seed: u64) -> CMat {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // map to (-1, 1)
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let g = CMat::from_fn(n, n, |_, _| c64(next(), next()));
        // G + G^H is Hermitian.
        &g + &g.hermitian()
    }
}
