//! Hermitian eigendecomposition: dense tridiagonal solver with a cyclic
//! Jacobi reference path.
//!
//! MUSIC ("the best known AoA estimation algorithms are based on
//! eigenstructure analysis of a correlation matrix", paper §2.1) needs the
//! full eigendecomposition of an `M × M` Hermitian sample-covariance matrix,
//! where `M` is the antenna count (2–16 here) — once per received frame per
//! AP, which makes this the hottest kernel in the whole pipeline.
//!
//! Two backends share one workspace:
//!
//! * [`EigBackend::Tridiagonal`] (default) — the classic dense path:
//!   Householder reduction to Hermitian tridiagonal form, diagonal phase
//!   scaling to a *real* symmetric tridiagonal, then implicit-shift QL
//!   iteration (Golub & Van Loan §8.3, EISPACK `htridi`/`tql2` lineage).
//!   `O(M³)` with a small constant — each off-diagonal is eliminated once,
//!   instead of Jacobi's repeated sweeps over the full matrix.
//! * [`EigBackend::Jacobi`] — the original cyclic complex Jacobi method,
//!   kept verbatim as the bit-for-bit reference oracle (it is backward
//!   stable, computes small eigenvalues to high relative accuracy, and has
//!   no convergence pathologies). The property suite pins the tridiagonal
//!   solver against it; select it per workspace via
//!   [`EighWorkspace::with_backend`] or call [`eigh_jacobi`] directly.
//!
//! The Jacobi rotation for a Hermitian 2×2 block `[[α, b], [b̄, γ]]` with
//! `b = |b|·e^{jφ}` is the unitary
//! `U = [[c, −s·e^{jφ}], [s·e^{−jφ}, c]]` where `t = s/c` solves
//! `t² − 2τt − 1 = 0`, `τ = (γ−α)/(2|b|)`; we take the root of smaller
//! magnitude for stability (Golub & Van Loan §8.5 adapted to the complex
//! case).

use crate::complex::{c64, C64, ONE, ZERO};
use crate::matrix::{CMat, ColView};

/// Result of a Hermitian eigendecomposition.
///
/// Invariants (verified by the tests in this module):
/// * `values` is sorted ascending and purely real;
/// * column `k` of `vectors` is a unit-norm eigenvector for `values[k]`;
/// * `vectors` is unitary: `V^H V = I`;
/// * `A = V · diag(values) · V^H` to within the solver tolerance.
#[derive(Debug, Clone)]
pub struct EigH {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, same order as `values`.
    pub vectors: CMat,
}

impl EigH {
    /// Eigenvalues in descending order together with the column indices
    /// into [`EigH::vectors`] — the natural order for MUSIC, which splits
    /// the top-`K` signal subspace from the rest. Allocates; hot paths
    /// should prefer [`EigH::descending_into`].
    pub fn descending(&self) -> Vec<(f64, usize)> {
        let mut idx = Vec::new();
        self.descending_into(&mut idx);
        idx
    }

    /// [`EigH::descending`] into a caller-owned buffer, reusing its
    /// allocation. Uses [`f64::total_cmp`], so a NaN eigenvalue (a
    /// poisoned covariance) sorts deterministically instead of
    /// panicking mid-pipeline.
    pub fn descending_into(&self, idx: &mut Vec<(f64, usize)>) {
        idx.clear();
        idx.extend(self.values.iter().cloned().zip(0..));
        idx.sort_by(|a, b| b.0.total_cmp(&a.0));
    }

    /// The eigenvector for sorted-ascending index `k`, as a fresh `Vec`.
    /// Allocates; hot paths should prefer [`EigH::vector_view`].
    pub fn vector(&self, k: usize) -> Vec<C64> {
        self.vectors.col(k)
    }

    /// Borrowed view of the eigenvector for sorted-ascending index `k` —
    /// no allocation (see [`CMat::col_view`]).
    pub fn vector_view(&self, k: usize) -> ColView<'_> {
        self.vectors.col_view(k)
    }
}

/// Which algorithm an [`EighWorkspace`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigBackend {
    /// Householder tridiagonalization + implicit-shift QL (default; the
    /// fast dense path).
    #[default]
    Tridiagonal,
    /// Cyclic complex Jacobi — the reference oracle.
    Jacobi,
}

/// Tolerance policy for [`eigh`]: iteration stops when every off-diagonal
/// magnitude falls below `rel_tol * ‖A‖_F`, or after `max_sweeps` full
/// cyclic sweeps (whichever comes first).
#[derive(Debug, Clone, Copy)]
pub struct JacobiParams {
    /// Relative off-diagonal tolerance. Default `1e-14`.
    pub rel_tol: f64,
    /// Maximum number of cyclic sweeps. Default 64; Jacobi converges
    /// quadratically, so well-conditioned 16×16 inputs need ~6 sweeps.
    pub max_sweeps: usize,
}

impl Default for JacobiParams {
    fn default() -> Self {
        Self {
            rel_tol: 1e-14,
            max_sweeps: 64,
        }
    }
}

/// Eigendecomposition of a Hermitian matrix on the default
/// ([`EigBackend::Tridiagonal`]) path.
///
/// Panics if `a` is not square. The Hermitian property is *assumed*: only
/// the upper triangle and the real parts of the diagonal are read, matching
/// LAPACK's `zheev` convention, so slightly-asymmetric sample covariance
/// matrices (floating-point accumulation error) are handled gracefully.
pub fn eigh(a: &CMat) -> EigH {
    let mut ws = EighWorkspace::new();
    let mut out = EigH {
        values: Vec::new(),
        vectors: CMat::zeros(0, 0),
    };
    ws.eigh(a, &mut out);
    out
}

/// Eigendecomposition by the cyclic Jacobi reference path with default
/// parameters — the oracle the tridiagonal solver is pinned against.
pub fn eigh_jacobi(a: &CMat) -> EigH {
    eigh_with(a, JacobiParams::default())
}

/// [`eigh_jacobi`] with explicit iteration parameters.
pub fn eigh_with(a: &CMat, params: JacobiParams) -> EigH {
    let mut ws = EighWorkspace::new();
    let mut out = EigH {
        values: Vec::new(),
        vectors: CMat::zeros(0, 0),
    };
    ws.eigh_into(a, params, &mut out);
    out
}

/// Reusable scratch buffers for [`EighWorkspace::eigh`].
///
/// Both solvers need a working copy of the (symmetrised) input, an
/// accumulator for the transformations, and a permutation pass to sort
/// the spectrum; the tridiagonal path additionally keeps its Householder
/// and QL scratch vectors here. Calling [`eigh`] in a loop re-allocates
/// all of it per call; a workspace held across calls turns the whole
/// decomposition into a zero-allocation operation once the buffers have
/// grown to the problem size — which is what the batched AP pipeline
/// does per packet.
#[derive(Debug, Default)]
pub struct EighWorkspace {
    /// Which solver [`EighWorkspace::eigh`] runs.
    backend: EigBackend,
    /// Working copy of the symmetrised input (destroyed by the solver);
    /// doubles as the column-permutation scratch after convergence.
    w: CMat,
    /// Sort-order scratch.
    order: Vec<usize>,
    /// Diagonal (eigenvalue) scratch.
    diag: Vec<f64>,
    /// Tridiagonal path: real off-diagonal scratch.
    sub: Vec<f64>,
    /// Tridiagonal path: Householder vector scratch.
    hv: Vec<C64>,
    /// Tridiagonal path: Householder update scratch (`p`, then `q`).
    hp: Vec<C64>,
}

impl EighWorkspace {
    /// A new, empty workspace on the default backend
    /// ([`EigBackend::Tridiagonal`]). Buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace running the given backend — pass
    /// [`EigBackend::Jacobi`] to get the reference oracle on the
    /// workspace API (see `docs/ARCHITECTURE.md`, "hot path").
    pub fn with_backend(backend: EigBackend) -> Self {
        Self {
            backend,
            ..Self::default()
        }
    }

    /// The backend this workspace runs.
    pub fn backend(&self) -> EigBackend {
        self.backend
    }

    /// Eigendecomposition on this workspace's backend, reusing its
    /// buffers and writing the result into `out` (whose own allocations
    /// are also recycled). Panics if `a` is not square.
    pub fn eigh(&mut self, a: &CMat, out: &mut EigH) {
        match self.backend {
            EigBackend::Tridiagonal => self.tridiagonal_into(a, out),
            EigBackend::Jacobi => self.eigh_into(a, JacobiParams::default(), out),
        }
    }

    /// The cyclic Jacobi reference path with explicit iteration
    /// parameters — always Jacobi, regardless of this workspace's
    /// backend (it is what [`eigh_with`] and the oracle tests run).
    ///
    /// Identical results to the free function [`eigh_with`]; the only
    /// difference is allocation reuse. Panics if `a` is not square.
    pub fn eigh_into(&mut self, a: &CMat, params: JacobiParams, out: &mut EigH) {
        assert!(a.is_square(), "eigh: matrix must be square");
        let n = a.rows();

        // Work on a Hermitian-symmetrised copy: W = (A + A^H)/2.
        let w = &mut self.w;
        w.reset_from_fn(n, n, |i, j| (a[(i, j)] + a[(j, i)].conj()).scale(0.5));
        let v = &mut out.vectors;
        v.reset_identity(n);

        if n <= 1 {
            out.values.clear();
            if n == 1 {
                out.values.push(w[(0, 0)].re);
            }
            return;
        }

        let scale = w.fro_norm().max(f64::MIN_POSITIVE);
        let tol = params.rel_tol * scale;

        for _sweep in 0..params.max_sweeps {
            if w.max_offdiag() <= tol {
                break;
            }
            for p in 0..n - 1 {
                for q in p + 1..n {
                    let b = w[(p, q)];
                    let babs = b.abs();
                    if babs <= tol {
                        continue;
                    }
                    let alpha = w[(p, p)].re;
                    let gamma = w[(q, q)].re;

                    let tau = (gamma - alpha) / (2.0 * babs);
                    // Small-magnitude root of t² − 2τt − 1 = 0 (the two roots
                    // multiply to −1; picking |t| ≤ 1 keeps rotations small and
                    // the iteration stable).
                    let sign = if tau >= 0.0 { 1.0 } else { -1.0 };
                    let t = -sign / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // U acts on columns/rows p and q:
                    //   col_p' =  c*col_p + s e^{-jφ} col_q
                    //   col_q' = -s e^{jφ} col_p + c*col_q
                    let se_m = C64::from_polar(s, -b.arg()); // s·e^{−jφ}
                    let se_p = C64::from_polar(s, b.arg()); // s·e^{+jφ}

                    // Update W = U^H W U.
                    // Rows (left multiply by U^H):
                    for k in 0..n {
                        let wp = w[(p, k)];
                        let wq = w[(q, k)];
                        w[(p, k)] = wp.scale(c) + se_p * wq;
                        w[(q, k)] = wq.scale(c) - se_m * wp;
                    }
                    // Columns (right multiply by U):
                    for k in 0..n {
                        let wp = w[(k, p)];
                        let wq = w[(k, q)];
                        w[(k, p)] = wp.scale(c) + se_m * wq;
                        w[(k, q)] = wq.scale(c) - se_p * wp;
                    }
                    // Clean the eliminated pair and enforce realness of the
                    // rotated diagonal (both are exact in infinite precision).
                    w[(p, q)] = c64(0.0, 0.0);
                    w[(q, p)] = c64(0.0, 0.0);
                    w[(p, p)] = c64(w[(p, p)].re, 0.0);
                    w[(q, q)] = c64(w[(q, q)].re, 0.0);

                    // Accumulate V = V·U.
                    for k in 0..n {
                        let vp = v[(k, p)];
                        let vq = v[(k, q)];
                        v[(k, p)] = vp.scale(c) + se_m * vq;
                        v[(k, q)] = vq.scale(c) - se_p * vp;
                    }
                }
            }
        }

        // Extract and sort ascending.
        let diag = &mut self.diag;
        diag.clear();
        diag.extend((0..n).map(|i| w[(i, i)].re));
        self.sort_and_emit(out);
    }

    /// The dense tridiagonal path: Householder reduction + phase
    /// normalisation + implicit-shift QL. Same output contract as the
    /// Jacobi path (ascending real eigenvalues, unitary eigenvector
    /// columns); the eigenvector *phases* may differ — both are valid
    /// decompositions, and every consumer (MUSIC projects onto the
    /// subspace) is phase-invariant.
    fn tridiagonal_into(&mut self, a: &CMat, out: &mut EigH) {
        assert!(a.is_square(), "eigh: matrix must be square");
        let n = a.rows();

        // Work on a Hermitian-symmetrised copy: W = (A + A^H)/2.
        let w = &mut self.w;
        w.reset_from_fn(n, n, |i, j| (a[(i, j)] + a[(j, i)].conj()).scale(0.5));
        let v = &mut out.vectors;
        v.reset_identity(n);

        if n <= 1 {
            out.values.clear();
            if n == 1 {
                out.values.push(w[(0, 0)].re);
            }
            return;
        }

        // ---- 1. Householder reduction to Hermitian tridiagonal form.
        //
        // For each column k, a reflector H = I − c·v·v^H (c = 2/v^H v)
        // zeroes W[k+2.., k]; W := H W H keeps the similarity and V := V·H
        // accumulates the basis. Only the trailing block changes, via the
        // standard Hermitian rank-2 update B −= v·q^H + q·v^H with
        // q = p − s·v, p = c·B·v, s = (c/2)·v^H·p.
        let hv = &mut self.hv;
        let hp = &mut self.hp;
        for k in 0..n.saturating_sub(2) {
            let m = n - k - 1; // trailing dimension below the diagonal
            let mut tail2 = 0.0;
            for i in k + 2..n {
                tail2 += w[(i, k)].norm_sqr();
            }
            // Column already tridiagonal (nothing below the subdiagonal)?
            if tail2 <= 0.0 {
                continue;
            }
            let alpha = w[(k + 1, k)];
            let sigma = (tail2 + alpha.norm_sqr()).sqrt();
            let aabs = alpha.abs();
            // Reflect x onto −phase(α)·σ·e1; v = x − β·e1 with
            // β = −phase(α)·σ makes v[0] = phase(α)·(|α| + σ) — the
            // cancellation-free sign choice.
            let phase = if aabs > 0.0 {
                alpha.scale(1.0 / aabs)
            } else {
                ONE
            };
            let beta = -phase.scale(sigma);
            let c = 1.0 / (sigma * (sigma + aabs)); // 2 / v^H v
            hv.clear();
            hv.push(alpha - beta);
            hv.extend((k + 2..n).map(|i| w[(i, k)]));

            // p = c·B·v over the trailing block B = W[k+1.., k+1..]
            // (rows are contiguous in the row-major storage — walk them
            // as slices; this loop is the eigensolver's O(M³) core).
            hp.clear();
            {
                let wd = w.data();
                for i in 0..m {
                    let row = &wd[(k + 1 + i) * n + k + 1..(k + 1 + i) * n + n];
                    let mut acc = ZERO;
                    for j in 0..m {
                        acc += row[j] * hv[j];
                    }
                    hp.push(acc.scale(c));
                }
            }
            // s = (c/2)·v^H·p (real because B is Hermitian).
            let mut s = 0.0;
            for i in 0..m {
                s += (hv[i].conj() * hp[i]).re;
            }
            s *= 0.5 * c;
            // q = p − s·v, then B −= v·q^H + q·v^H.
            for i in 0..m {
                hp[i] -= hv[i].scale(s);
            }
            {
                let wd = w.data_mut();
                for i in 0..m {
                    let row = &mut wd[(k + 1 + i) * n + k + 1..(k + 1 + i) * n + n];
                    let hvi = hv[i];
                    let hpi = hp[i];
                    for j in 0..m {
                        row[j] -= hvi * hp[j].conj() + hpi * hv[j].conj();
                    }
                }
            }
            // The eliminated column/row.
            w[(k + 1, k)] = beta;
            w[(k, k + 1)] = beta.conj();
            for i in k + 2..n {
                w[(i, k)] = ZERO;
                w[(k, i)] = ZERO;
            }
            // V := V·H on columns k+1.. (row-wise: t = Σ V[r,·]·v, then
            // subtract c·t·v^H — again on contiguous row slices).
            {
                let vd = v.data_mut();
                for r in 0..n {
                    let row = &mut vd[r * n + k + 1..r * n + n];
                    let mut t = ZERO;
                    for j in 0..m {
                        t += row[j] * hv[j];
                    }
                    let t = t.scale(c);
                    for j in 0..m {
                        row[j] -= t * hv[j].conj();
                    }
                }
            }
        }

        // ---- 2. Phase-normalise the (complex) subdiagonal to real,
        // folding the diagonal phase matrix D into V: with
        // p[i+1] = p[i]·e_i/|e_i|, D^H·T·D has off-diagonals |e_i|.
        let diag = &mut self.diag;
        diag.clear();
        diag.extend((0..n).map(|i| w[(i, i)].re));
        let sub = &mut self.sub;
        sub.clear();
        let mut p = ONE;
        for i in 0..n - 1 {
            let e = w[(i + 1, i)];
            let eabs = e.abs();
            sub.push(eabs);
            let pnext = if eabs > 0.0 {
                p * e.scale(1.0 / eabs)
            } else {
                p
            };
            if pnext != ONE {
                for r in 0..n {
                    v[(r, i + 1)] *= pnext;
                }
            }
            p = pnext;
        }
        sub.push(0.0);

        // ---- 3. Implicit-shift QL on the real tridiagonal, rotating
        // V's complex columns along. The rotation count is bounded for
        // Hermitian input; if the iteration ever stalls (it should not),
        // fall back to the Jacobi oracle rather than return garbage.
        if !ql_implicit_shift(diag, sub, v) {
            self.eigh_into(a, JacobiParams::default(), out);
            return;
        }

        self.sort_and_emit(out);
    }

    /// Shared tail: sort `self.diag` ascending (deterministically, NaN
    /// included) and emit values + permuted eigenvector columns into
    /// `out`, recycling `self.w` as the permutation destination.
    fn sort_and_emit(&mut self, out: &mut EigH) {
        let n = self.diag.len();
        let order = &mut self.order;
        order.clear();
        order.extend(0..n);
        let diag = &self.diag;
        order.sort_by(|&i, &j| diag[i].total_cmp(&diag[j]));

        out.values.clear();
        out.values.extend(order.iter().map(|&i| diag[i]));
        // Already ascending (common for QL output on near-sorted
        // spectra): the vectors are in place, skip the permutation.
        if order.iter().enumerate().all(|(k, &i)| k == i) {
            return;
        }
        // Permute eigenvector columns into sorted order, reusing `w` (its
        // contents are spent) as the destination, then swap it into the
        // output so no fresh matrix is allocated.
        let order = &self.order;
        let v = &out.vectors;
        self.w.reset_from_fn(n, n, |i, k| v[(i, order[k])]);
        std::mem::swap(&mut self.w, &mut out.vectors);
    }
}

/// Implicit-shift QL iteration on a real symmetric tridiagonal matrix
/// (`d` diagonal, `e` off-diagonal with `e[i]` linking `i` and `i+1`,
/// `e[n-1]` unused), accumulating the real Givens rotations into the
/// complex column basis `v`. Classic `tql2`; returns `false` if any
/// eigenvalue fails to converge within the iteration budget.
fn ql_implicit_shift(d: &mut [f64], e: &mut [f64], v: &mut CMat) -> bool {
    let n = d.len();
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Split point: smallest m ≥ l with a negligible off-diagonal.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return false;
            }
            // Wilkinson-style shift from the leading 2×2.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Rotation annihilated early: deflate and restart.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Rotate eigenvector columns i and i+1 (real plane
                // rotation on complex columns; the two entries are
                // adjacent in each row-major row, so walk rows as
                // slices instead of computing indices per element).
                let cols = v.cols();
                for row in v.data_mut().chunks_exact_mut(cols) {
                    let zi = row[i];
                    let zi1 = row[i + 1];
                    row[i + 1] = c64(s * zi.re + c * zi1.re, s * zi.im + c * zi1.im);
                    row[i] = c64(c * zi.re - s * zi1.re, c * zi.im - s * zi1.im);
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    true
}

/// Inverse of a Hermitian positive-(semi)definite matrix via its
/// eigendecomposition, with Tikhonov regularisation: eigenvalues below
/// `ridge` are clamped to `ridge` before inversion.
///
/// Used by the Capon/MVDR beamformer, where the sample covariance from a
/// short packet can be numerically singular.
pub fn hermitian_inverse(a: &CMat, ridge: f64) -> CMat {
    let eig = eigh(a);
    let n = a.rows();
    let v = &eig.vectors;
    // V · diag(1/λ) · V^H
    let mut out = CMat::zeros(n, n);
    for k in 0..n {
        let lam = eig.values[k].max(ridge);
        let col = v.col(k);
        let rank1 = CMat::outer(&col, &col).scale(1.0 / lam);
        out = &out + &rank1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, C64, ZERO};
    use crate::matrix::{vdot, vnorm};

    fn residual(a: &CMat, eig: &EigH) -> f64 {
        // ‖A·v_k − λ_k·v_k‖ summed over k.
        let n = a.rows();
        let mut r = 0.0;
        for k in 0..n {
            let v = eig.vector(k);
            let av = a.matvec(&v);
            let lv: Vec<C64> = v.iter().map(|z| z.scale(eig.values[k])).collect();
            let diff: Vec<C64> = av.iter().zip(lv.iter()).map(|(x, y)| *x - *y).collect();
            r += vnorm(&diff);
        }
        r
    }

    #[test]
    fn empty_and_singleton() {
        let e0 = eigh(&CMat::zeros(0, 0));
        assert!(e0.values.is_empty());
        let e1 = eigh(&CMat::from_rows(1, 1, &[c64(4.2, 0.0)]));
        assert_eq!(e1.values, vec![4.2]);
        assert!(e1.vectors[(0, 0)].approx_eq(c64(1.0, 0.0), 1e-14));
    }

    #[test]
    fn diagonal_matrix_sorted() {
        let a = CMat::from_rows(
            3,
            3,
            &[
                c64(3.0, 0.0),
                ZERO,
                ZERO,
                ZERO,
                c64(1.0, 0.0),
                ZERO,
                ZERO,
                ZERO,
                c64(2.0, 0.0),
            ],
        );
        let e = eigh(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_real() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = CMat::from_rows(
            2,
            2,
            &[c64(2.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0), c64(2.0, 0.0)],
        );
        let e = eigh(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn known_2x2_complex() {
        // [[1, j], [-j, 1]] has eigenvalues 0 and 2.
        let a = CMat::from_rows(
            2,
            2,
            &[c64(1.0, 0.0), c64(0.0, 1.0), c64(0.0, -1.0), c64(1.0, 0.0)],
        );
        let e = eigh(&a);
        assert!(e.values[0].abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn rank_one_outer_product() {
        // u·u^H has eigenvalues {‖u‖², 0, …, 0}.
        let u = vec![c64(1.0, 2.0), c64(-0.5, 0.3), c64(0.0, -1.5)];
        let a = CMat::outer(&u, &u);
        let e = eigh(&a);
        let nrm2 = vnorm(&u).powi(2);
        assert!(e.values[0].abs() < 1e-10);
        assert!(e.values[1].abs() < 1e-10);
        assert!((e.values[2] - nrm2).abs() < 1e-10 * nrm2.max(1.0));
        // Top eigenvector is parallel to u.
        let v = e.vector(2);
        let overlap = vdot(&v, &u).abs() / vnorm(&u);
        assert!((overlap - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = hermitian_from_seed(6, 7);
        let e = eigh(&a);
        let tr = a.trace().re;
        let s: f64 = e.values.iter().sum();
        assert!((tr - s).abs() < 1e-9 * tr.abs().max(1.0));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = hermitian_from_seed(8, 3);
        let e = eigh(&a);
        let vh_v = e.vectors.hermitian().matmul(&e.vectors);
        assert!(vh_v.approx_eq(&CMat::identity(8), 1e-10));
    }

    #[test]
    fn reconstruction() {
        let a = hermitian_from_seed(5, 11);
        let e = eigh(&a);
        let mut rec = CMat::zeros(5, 5);
        for k in 0..5 {
            let v = e.vector(k);
            rec = &rec + &CMat::outer(&v, &v).scale(e.values[k]);
        }
        assert!(rec.approx_eq(&a, 1e-9));
    }

    #[test]
    fn descending_order_helper() {
        let a = hermitian_from_seed(4, 1);
        let e = eigh(&a);
        let d = e.descending();
        for w in d.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
        assert!((d[0].0 - e.values[3]).abs() < 1e-14);
    }

    #[test]
    fn handles_slightly_asymmetric_input() {
        // A sample covariance accumulated in floating point is Hermitian
        // only to round-off; eigh must symmetrise rather than blow up.
        let mut a = hermitian_from_seed(4, 9);
        a[(0, 1)] += c64(1e-13, -1e-13);
        let e = eigh(&a);
        assert!(residual(&a, &e) < 1e-8);
    }

    #[test]
    fn workspace_reuse_matches_free_function_across_sizes() {
        // One workspace driven through shrinking and growing problem
        // sizes must reproduce the free function bit-for-bit.
        let mut ws = EighWorkspace::new();
        let mut out = EigH {
            values: Vec::new(),
            vectors: CMat::zeros(0, 0),
        };
        for (n, seed) in [(8usize, 3u64), (4, 9), (6, 7), (1, 2), (8, 11)] {
            let a = hermitian_from_seed(n, seed);
            ws.eigh(&a, &mut out);
            let free = eigh(&a);
            assert_eq!(out.values, free.values, "values differ at n={}", n);
            assert_eq!(out.vectors, free.vectors, "vectors differ at n={}", n);
        }
    }

    #[test]
    fn hermitian_inverse_is_inverse() {
        // Build a well-conditioned PSD matrix: B = A·A^H + I.
        let a = hermitian_from_seed(4, 5);
        let b = &a.matmul(&a.hermitian()) + &CMat::identity(4);
        let binv = hermitian_inverse(&b, 1e-12);
        let prod = b.matmul(&binv);
        assert!(prod.approx_eq(&CMat::identity(4), 1e-8));
    }

    #[test]
    fn hermitian_inverse_ridge_clamps() {
        // Singular matrix: rank-1. With ridge, inverse stays finite.
        let u = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let a = CMat::outer(&u, &u);
        let inv = hermitian_inverse(&a, 1e-3);
        assert!(inv.data().iter().all(|z| z.is_finite()));
    }

    #[test]
    fn tridiagonal_matches_jacobi_oracle() {
        // Eigenvalues to 1e-10 relative, and both must decompose the
        // same matrix (residual check covers the subspaces without
        // fixing the per-vector phase, which legitimately differs).
        for (n, seed) in [(2usize, 1u64), (3, 5), (4, 9), (6, 7), (8, 3), (16, 11)] {
            let a = hermitian_from_seed(n, seed);
            let t = eigh(&a);
            let j = eigh_jacobi(&a);
            let scale = a.fro_norm().max(1.0);
            for k in 0..n {
                assert!(
                    (t.values[k] - j.values[k]).abs() <= 1e-10 * scale,
                    "n={} k={}: {} vs {}",
                    n,
                    k,
                    t.values[k],
                    j.values[k]
                );
            }
            assert!(residual(&a, &t) < 1e-9 * scale, "n={} residual", n);
            let vh_v = t.vectors.hermitian().matmul(&t.vectors);
            assert!(vh_v.approx_eq(&CMat::identity(n), 1e-10), "n={} unitary", n);
        }
    }

    #[test]
    fn jacobi_backend_workspace_matches_oracle_bitwise() {
        let mut ws = EighWorkspace::with_backend(EigBackend::Jacobi);
        assert_eq!(ws.backend(), EigBackend::Jacobi);
        let mut out = EigH {
            values: Vec::new(),
            vectors: CMat::zeros(0, 0),
        };
        for (n, seed) in [(4usize, 2u64), (8, 6)] {
            let a = hermitian_from_seed(n, seed);
            ws.eigh(&a, &mut out);
            let oracle = eigh_jacobi(&a);
            assert_eq!(out.values, oracle.values);
            assert_eq!(out.vectors, oracle.vectors);
        }
    }

    #[test]
    fn descending_tolerates_nan() {
        // A poisoned spectrum must sort deterministically, not panic.
        let e = EigH {
            values: vec![1.0, f64::NAN, 3.0],
            vectors: CMat::identity(3),
        };
        let d = e.descending();
        assert_eq!(d.len(), 3);
        let mut buf = Vec::new();
        e.descending_into(&mut buf);
        // NaN != NaN, so compare the index permutations.
        let perm: Vec<usize> = d.iter().map(|&(_, i)| i).collect();
        let perm2: Vec<usize> = buf.iter().map(|&(_, i)| i).collect();
        assert_eq!(perm, perm2);
        // total_cmp sorts NaN above every finite value in descending
        // order — deterministic, whatever the ordering convention.
        assert!(perm.contains(&1));
    }

    #[test]
    fn vector_view_matches_vector() {
        let a = hermitian_from_seed(5, 4);
        let e = eigh(&a);
        for k in 0..5 {
            assert_eq!(e.vector(k), e.vector_view(k).to_vec());
        }
    }

    #[test]
    fn tridiagonal_handles_degenerate_spectra() {
        // Repeated eigenvalues (identity-like) and zero matrices.
        let e = eigh(&CMat::identity(6));
        for v in &e.values {
            assert!((v - 1.0).abs() < 1e-12);
        }
        let z = eigh(&CMat::zeros(5, 5));
        for v in &z.values {
            assert!(v.abs() < 1e-15);
        }
        // Block-diagonal input (zero subdiagonal mid-matrix).
        let mut b = CMat::zeros(4, 4);
        b[(0, 0)] = c64(2.0, 0.0);
        b[(0, 1)] = c64(0.0, 1.0);
        b[(1, 0)] = c64(0.0, -1.0);
        b[(1, 1)] = c64(2.0, 0.0);
        b[(2, 2)] = c64(-1.0, 0.0);
        b[(3, 3)] = c64(5.0, 0.0);
        let e = eigh(&b);
        assert!(residual(&b, &e) < 1e-10);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[3] - 5.0).abs() < 1e-12);
    }

    /// Deterministic pseudo-random Hermitian matrix (no RNG dependency in
    /// unit tests; a simple LCG keeps this crate's dev-deps minimal).
    fn hermitian_from_seed(n: usize, seed: u64) -> CMat {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // map to (-1, 1)
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let g = CMat::from_fn(n, n, |_, _| c64(next(), next()));
        // G + G^H is Hermitian.
        &g + &g.hermitian()
    }
}
