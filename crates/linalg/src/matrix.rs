//! Dense complex matrices and vectors.
//!
//! Sizes in this codebase are tiny by linear-algebra standards — antenna
//! counts are 2–16, so correlation matrices are at most 16×16 — which lets
//! us favour clarity and robustness over blocking/SIMD tricks, per the
//! "simplicity and robustness" design goal this project borrows from
//! smoltcp. Storage is row-major `Vec<C64>`.

use crate::complex::{c64, C64, ZERO};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// `Default` is the empty `0 × 0` matrix — the natural seed for workspace
/// buffers that grow on first use (see [`CMat::reset_zero`]).
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![ZERO; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = c64(1.0, 0.0);
        }
        m
    }

    /// Build from a row-major slice. Panics if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[C64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "CMat::from_rows: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Build from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// A column vector (`n × 1`) from a slice.
    pub fn col_vector(v: &[C64]) -> Self {
        Self::from_rows(v.len(), 1, v)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[C64] {
        &self.data
    }

    /// Raw mutable row-major data — crate-internal so hot kernels (the
    /// QL eigenvector rotations) can walk rows as slices without
    /// per-element index arithmetic.
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Extract row `i` as a `Vec`.
    pub fn row(&self, i: usize) -> Vec<C64> {
        assert!(i < self.rows);
        self.data[i * self.cols..(i + 1) * self.cols].to_vec()
    }

    /// Extract column `j` as a `Vec`. Allocates; hot paths should
    /// prefer the borrowed [`CMat::col_view`].
    pub fn col(&self, j: usize) -> Vec<C64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrowed view of column `j` — a strided window into the row-major
    /// storage, no allocation. This is the hot-path way to walk a matrix
    /// column (MUSIC's noise projector reads eigenvector columns per
    /// scan-grid point; cloning them per packet dominated that loop).
    pub fn col_view(&self, j: usize) -> ColView<'_> {
        assert!(j < self.cols);
        ColView {
            data: &self.data[j..],
            stride: self.cols.max(1),
            len: self.rows,
        }
    }

    /// Conjugate (Hermitian) transpose, `A^H`.
    pub fn hermitian(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose without conjugation, `A^T`.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Reshape in place to `rows × cols` with every element set to zero,
    /// reusing the existing allocation when it is large enough. This is
    /// the buffer-recycling primitive behind the batched pipeline: a
    /// workspace matrix is `reset_zero` once per packet instead of
    /// allocated fresh.
    pub fn reset_zero(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, ZERO);
    }

    /// Reshape in place to the `n × n` identity, reusing the allocation
    /// (see [`CMat::reset_zero`]).
    pub fn reset_identity(&mut self, n: usize) {
        self.reset_zero(n, n);
        for i in 0..n {
            self[(i, i)] = c64(1.0, 0.0);
        }
    }

    /// Reshape in place and fill from a function of the index pair,
    /// reusing the allocation (see [`CMat::reset_zero`]). Each element is
    /// written exactly once — no intermediate zero fill.
    pub fn reset_from_fn(
        &mut self,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> C64,
    ) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.reserve(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                self.data.push(f(i, j));
            }
        }
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Multiply every element by a real scalar.
    pub fn scale(&self, s: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(s)).collect(),
        }
    }

    /// Multiply every element by a real scalar, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }

    /// Multiply every element by a complex scalar.
    pub fn scale_c(&self, s: C64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Reshape in place to a copy of `src`, reusing the existing
    /// allocation (see [`CMat::reset_zero`]). The buffer-recycling
    /// sibling of `Clone::clone`.
    pub fn copy_from(&mut self, src: &Self) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self * rhs`. Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Self) -> Self {
        let mut out = Self::default();
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`CMat::matmul`] written into a caller-provided matrix, reusing
    /// its allocation (identical results — same accumulation order).
    /// Panics on dimension mismatch.
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) {
        assert_eq!(
            self.cols, rhs.rows,
            "CMat::matmul: inner dimensions {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reset_zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(self.cols, v.len(), "CMat::matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = ZERO;
                for j in 0..self.cols {
                    acc += self[(i, j)] * v[j];
                }
                acc
            })
            .collect()
    }

    /// Outer product `u * v^H`, an `len(u) × len(v)` rank-one matrix.
    /// This is the building block of sample covariance estimation.
    pub fn outer(u: &[C64], v: &[C64]) -> Self {
        Self::from_fn(u.len(), v.len(), |i, j| u[i] * v[j].conj())
    }

    /// Sum of diagonal elements.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "CMat::trace: matrix must be square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm, `sqrt(sum |a_ij|^2)`.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute value of any off-diagonal element — the convergence
    /// measure of the Jacobi eigensolver.
    pub fn max_offdiag(&self) -> f64 {
        assert!(self.is_square());
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// True if `‖A − A^H‖_max <= tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            if self[(i, i)].im.abs() > tol {
                return false;
            }
            for j in (i + 1)..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Copy a contiguous block of rows `r0..r1` (half-open) into a new matrix.
    pub fn row_block(&self, r0: usize, r1: usize) -> Self {
        assert!(r0 <= r1 && r1 <= self.rows);
        Self::from_rows(
            r1 - r0,
            self.cols,
            &self.data[r0 * self.cols..r1 * self.cols],
        )
    }

    /// Submatrix of the given rows and columns (used to truncate an
    /// 8-antenna covariance down to the first k antennas for the Fig-7
    /// antenna-count experiment).
    pub fn select(&self, rows: &[usize], cols: &[usize]) -> Self {
        Self::from_fn(rows.len(), cols.len(), |i, j| self[(rows[i], cols[j])])
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.matmul(rhs)
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Borrowed view of one matrix column: a strided window into the
/// row-major storage of a [`CMat`]. Created by [`CMat::col_view`];
/// element `i` is the column's row-`i` entry.
#[derive(Debug, Clone, Copy)]
pub struct ColView<'a> {
    data: &'a [C64],
    stride: usize,
    len: usize,
}

impl ColView<'_> {
    /// Number of elements (the matrix's row count).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a column of a zero-row matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the column's elements top to bottom.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = C64> + '_ {
        self.data
            .iter()
            .step_by(self.stride)
            .take(self.len)
            .copied()
    }

    /// Materialise the column as a `Vec` (same result as [`CMat::col`]).
    pub fn to_vec(&self) -> Vec<C64> {
        self.iter().collect()
    }
}

impl Index<usize> for ColView<'_> {
    type Output = C64;
    #[inline]
    fn index(&self, i: usize) -> &C64 {
        debug_assert!(i < self.len);
        &self.data[i * self.stride]
    }
}

/// Inner product with conjugation on the first argument: `u^H v`.
pub fn vdot(u: &[C64], v: &[C64]) -> C64 {
    assert_eq!(u.len(), v.len(), "vdot: length mismatch");
    u.iter().zip(v.iter()).map(|(a, b)| a.conj() * *b).sum()
}

/// [`vdot`] with a borrowed matrix column as the (conjugated) first
/// argument: `col^H v`, allocation-free. The MUSIC noise-projector
/// inner loop (`|e_k^H a(θ)|²` per grid point) runs on this.
pub fn vdot_col(u: ColView<'_>, v: &[C64]) -> C64 {
    assert_eq!(u.len(), v.len(), "vdot_col: length mismatch");
    let mut acc = ZERO;
    for (i, b) in v.iter().enumerate() {
        acc += u[i].conj() * *b;
    }
    acc
}

/// Euclidean norm of a complex vector.
pub fn vnorm(v: &[C64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Normalise a vector to unit Euclidean norm (no-op on the zero vector).
pub fn vnormalize(v: &mut [C64]) {
    let n = vnorm(v);
    if n > 0.0 {
        for z in v.iter_mut() {
            *z = z.scale(1.0 / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{J, ZERO};

    fn sample() -> CMat {
        CMat::from_rows(
            2,
            2,
            &[c64(1.0, 0.0), c64(0.0, 1.0), c64(0.0, -1.0), c64(2.0, 0.0)],
        )
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample();
        let i = CMat::identity(2);
        assert!(a.matmul(&i).approx_eq(&a, 1e-14));
        assert!(i.matmul(&a).approx_eq(&a, 1e-14));
    }

    #[test]
    fn hermitian_detection() {
        assert!(sample().is_hermitian(1e-14));
        let mut bad = sample();
        bad[(0, 1)] = c64(0.5, 0.5);
        assert!(!bad.is_hermitian(1e-14));
    }

    #[test]
    fn hermitian_transpose_involution() {
        let a = CMat::from_fn(3, 2, |i, j| c64(i as f64, j as f64 + 0.5));
        assert!(a.hermitian().hermitian().approx_eq(&a, 1e-14));
    }

    #[test]
    fn matmul_known_product() {
        // [[1, j], [0, 2]] * [[1, 0], [1, 1]] = [[1+j, j], [2, 2]]
        let a = CMat::from_rows(2, 2, &[c64(1.0, 0.0), J, ZERO, c64(2.0, 0.0)]);
        let b = CMat::from_rows(2, 2, &[c64(1.0, 0.0), ZERO, c64(1.0, 0.0), c64(1.0, 0.0)]);
        let p = a.matmul(&b);
        assert!(p[(0, 0)].approx_eq(c64(1.0, 1.0), 1e-14));
        assert!(p[(0, 1)].approx_eq(J, 1e-14));
        assert!(p[(1, 0)].approx_eq(c64(2.0, 0.0), 1e-14));
        assert!(p[(1, 1)].approx_eq(c64(2.0, 0.0), 1e-14));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = CMat::from_fn(3, 3, |i, j| c64((i + j) as f64, (i as f64) - (j as f64)));
        let v = vec![c64(1.0, 1.0), c64(0.0, -1.0), c64(2.0, 0.5)];
        let mv = a.matvec(&v);
        let col = a.matmul(&CMat::col_vector(&v));
        for i in 0..3 {
            assert!(mv[i].approx_eq(col[(i, 0)], 1e-14));
        }
    }

    #[test]
    fn outer_product_rank_one() {
        let u = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let v = vec![c64(1.0, 1.0), c64(2.0, 0.0)];
        let o = CMat::outer(&u, &v);
        // o[i][j] = u[i] * conj(v[j])
        assert!(o[(0, 0)].approx_eq(c64(1.0, -1.0), 1e-14));
        assert!(o[(1, 1)].approx_eq(c64(0.0, 2.0), 1e-14));
    }

    #[test]
    fn trace_and_fro() {
        let a = sample();
        assert!(a.trace().approx_eq(c64(3.0, 0.0), 1e-14));
        assert!((a.fro_norm() - (1.0f64 + 1.0 + 1.0 + 4.0).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn vdot_conjugates_first_argument() {
        let u = vec![J];
        let v = vec![c64(1.0, 0.0)];
        // conj(j) * 1 = -j
        assert!(vdot(&u, &v).approx_eq(c64(0.0, -1.0), 1e-14));
    }

    #[test]
    fn vdot_self_is_norm_sqr() {
        let v = vec![c64(3.0, 4.0), c64(0.0, 2.0)];
        let d = vdot(&v, &v);
        assert!((d.re - 29.0).abs() < 1e-14);
        assert!(d.im.abs() < 1e-14);
        assert!((vnorm(&v) - 29f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut v = vec![c64(3.0, 0.0), c64(0.0, 4.0)];
        vnormalize(&mut v);
        assert!((vnorm(&v) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![ZERO, ZERO];
        vnormalize(&mut v);
        assert_eq!(v, vec![ZERO, ZERO]);
    }

    #[test]
    fn row_col_extraction() {
        let a = CMat::from_fn(3, 4, |i, j| c64(i as f64, j as f64));
        assert_eq!(a.row(1).len(), 4);
        assert_eq!(a.col(2).len(), 3);
        assert!(a.row(1)[3].approx_eq(c64(1.0, 3.0), 0.0));
        assert!(a.col(2)[2].approx_eq(c64(2.0, 2.0), 0.0));
    }

    #[test]
    fn select_submatrix() {
        let a = CMat::from_fn(4, 4, |i, j| c64((10 * i + j) as f64, 0.0));
        let s = a.select(&[0, 2], &[1, 3]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 2);
        assert_eq!(s[(1, 0)].re, 21.0);
        assert_eq!(s[(1, 1)].re, 23.0);
    }

    #[test]
    fn row_block_slices_rows() {
        let a = CMat::from_fn(4, 2, |i, j| c64(i as f64, j as f64));
        let b = a.row_block(1, 3);
        assert_eq!(b.rows(), 2);
        assert_eq!(b[(0, 0)].re, 1.0);
        assert_eq!(b[(1, 0)].re, 2.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = CMat::from_fn(2, 3, |i, j| c64(i as f64 + 1.0, j as f64 - 1.0));
        let b = CMat::from_fn(2, 3, |i, j| c64(j as f64, i as f64));
        let s = &(&a + &b) - &b;
        assert!(s.approx_eq(&a, 1e-14));
    }
}
