//! # sa-bench — benchmarks and figure regeneration
//!
//! * the `experiments` binary regenerates every evaluation figure/table
//!   (run `cargo run -p sa-bench --release --bin experiments -- all`);
//! * Criterion benches (`cargo bench`) measure the per-stage costs of
//!   the pipeline, one bench file per paper figure plus microbenches.
//!
//! Shared helpers for the benches live here.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_linalg::CMat;
use sa_testbed::{ApArray, Testbed};

/// A ready-made capture for pipeline benches: the testbed plus one
/// multi-antenna buffer holding a client packet.
pub struct BenchCapture {
    /// The testbed (AP node 0 calibrated).
    pub testbed: Testbed,
    /// The captured multi-antenna buffer.
    pub buffer: CMat,
    /// The client id that transmitted.
    pub client: usize,
}

/// Build a deterministic capture from a given client on the circular
/// testbed.
pub fn capture_circular(client: usize, seed: u64) -> BenchCapture {
    let testbed = Testbed::single_ap(ApArray::Circular, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbe9c4);
    let buffer = testbed.client_capture(0, client, 1, 0.0, &mut rng);
    BenchCapture {
        testbed,
        buffer,
        client,
    }
}

/// Build a deterministic capture on the linear testbed with `antennas`
/// elements.
pub fn capture_linear(client: usize, antennas: usize, seed: u64) -> BenchCapture {
    let testbed = Testbed::single_ap(ApArray::Linear(antennas), seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbe9c4);
    let buffer = testbed.client_capture(0, client, 1, 0.0, &mut rng);
    BenchCapture {
        testbed,
        buffer,
        client,
    }
}
