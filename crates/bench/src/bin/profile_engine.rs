//! Per-stage timing of the AoA engine hot path — the dev aid behind
//! the PR-5 optimisation work (not a recorded bench; the criterion
//! suite owns the baseline). Prints each stage's ns/call together
//! with a `matmul_16x16` calibration read from `BENCH_baseline.json`,
//! so host drift can be normalised out of run-to-run comparisons.
use sa_aoa::estimator::{AoaConfig, AoaEngine};
use sa_array::geometry::Array;
use sa_linalg::complex::C64;
use sa_linalg::CMat;
use sa_sigproc::covariance::sample_covariance;
use std::time::Instant;

/// The recorded `matmul_16x16` ns/iter from the checked-in baseline
/// (the host-drift canary), if it can be found and parsed. The
/// baseline's line format is our own (`record_baseline.sh`), so a
/// plain string scan suffices — the vendored serde_json stand-in has
/// no deserializer.
fn baseline_matmul_ns() -> Option<f64> {
    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    let text = std::fs::read_to_string(dir.join("BENCH_baseline.json")).ok()?;
    let line = text.lines().find(|l| l.contains("\"matmul_16x16\""))?;
    let rest = line.split("\"ns_per_iter\": ").nth(1)?;
    rest.split(&[',', '}'][..]).next()?.trim().parse().ok()
}

fn main() {
    let array = Array::paper_octagon();
    let s1 = array.steering(0.8);
    let s2 = array.steering(2.4);
    let x = CMat::from_fn(array.len(), 512, |m, t| {
        let sym = C64::cis(1.1 * t as f64);
        s1[m] * sym + s2[m] * C64::from_polar(0.6, 1.0) * sym
    });
    let r = sample_covariance(&x);
    let cfg = AoaConfig::default();
    let mut engine = AoaEngine::new(&array, &cfg);
    let iters = 20000;
    for _ in 0..100 {
        let _ = engine.estimate_cov(&r, 512);
    }

    // Calibration against the recorded baseline's matmul_16x16
    // (an unchanged kernel) to normalise out host drift.
    let am = {
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        CMat::from_fn(16, 16, |_, _| C64::new(next(), next()))
    };
    let t0 = Instant::now();
    for _ in 0..iters {
        let v = am.matmul(&am);
        std::hint::black_box(&v);
    }
    let matmul_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    match baseline_matmul_ns() {
        Some(base) => println!(
            "matmul_16x16: {:.1} ns (baseline {:.1} -> host factor {:.2}x)",
            matmul_ns,
            base,
            matmul_ns / base
        ),
        None => println!("matmul_16x16: {:.1} ns (no baseline found)", matmul_ns),
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let e = engine.estimate_cov(&r, 512);
        std::hint::black_box(&e);
    }
    println!(
        "estimate_cov total: {:.1} ns",
        t0.elapsed().as_nanos() as f64 / iters as f64
    );

    // Components
    let est = engine.estimate_cov(&r, 512);
    let t0 = Instant::now();
    for _ in 0..iters {
        let p = est.spectrum.find_peaks(1.0, 8);
        std::hint::black_box(&p);
    }
    println!(
        "find_peaks: {:.1} ns",
        t0.elapsed().as_nanos() as f64 / iters as f64
    );

    let ms = sa_array::modespace::ModeSpace::for_array(&array);
    let t0 = Instant::now();
    for _ in 0..iters {
        let v = ms.transform_cov(&r);
        std::hint::black_box(&v);
    }
    println!(
        "transform_cov (alloc): {:.1} ns",
        t0.elapsed().as_nanos() as f64 / iters as f64
    );

    let rv = ms.transform_cov(&r);
    let rs = sa_sigproc::covariance::smooth_fb(&rv, 5);
    let t0 = Instant::now();
    for _ in 0..iters {
        let e = sa_linalg::eigen::eigh(&rs);
        std::hint::black_box(&e);
    }
    println!(
        "eigh 5x5 tridiag: {:.1} ns",
        t0.elapsed().as_nanos() as f64 / iters as f64
    );

    let eig = sa_linalg::eigen::eigh(&rs);
    let space = engine.scan_space();
    let table = space.steering_table(1.0);
    let t0 = Instant::now();
    for _ in 0..iters {
        let s = sa_aoa::music::music_spectrum_from_table(&eig, &table, 2);
        std::hint::black_box(&s);
    }
    println!(
        "music_spectrum_from_table: {:.1} ns",
        t0.elapsed().as_nanos() as f64 / iters as f64
    );
}
