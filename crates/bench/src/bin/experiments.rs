//! Regenerate every table and figure of the SecureAngle evaluation.
//!
//! ```text
//! experiments [--seed N] [--quick] <which>
//!   which ∈ fig5 | claim-accuracy | fig6 | fig7 | spoofing | fence |
//!           rss-baseline | ablations | snr-sweep | mobility | downlink | all
//! ```
//!
//! Each experiment prints its table to stdout and writes two artifacts
//! under `target/experiments/`: `<name>.txt` (the rendered table) and
//! `<name>.json` (the full dataset for plotting). Runs are deterministic
//! in the seed.

use sa_testbed::experiments as exp;
use std::fs;
use std::path::PathBuf;

struct Opts {
    seed: u64,
    quick: bool,
    which: Vec<String>,
}

fn parse_args() -> Opts {
    let mut seed = 2010; // the paper's year; any u64 works
    let mut quick = false;
    let mut which = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--seed N] [--quick] \
                     <fig5|claim-accuracy|fig6|fig7|spoofing|fence|rss-baseline|ablations|snr-sweep|mobility|downlink|all>"
                );
                std::process::exit(0);
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    Opts { seed, quick, which }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {}", msg);
    std::process::exit(2);
}

fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

fn emit<T: serde::Serialize>(name: &str, text: &str, data: &T) {
    println!("{}", text);
    let dir = out_dir();
    fs::write(dir.join(format!("{name}.txt")), text).expect("write txt artifact");
    let json = serde_json::to_string_pretty(data).expect("serialize");
    fs::write(dir.join(format!("{name}.json")), json).expect("write json artifact");
    eprintln!("[artifacts: target/experiments/{name}.{{txt,json}}]");
}

fn main() {
    let opts = parse_args();
    let all = opts.which.iter().any(|w| w == "all");
    let want = |name: &str| all || opts.which.iter().any(|w| w == name);
    let mut ran = false;

    if want("fig5") || want("claim-accuracy") {
        ran = true;
        let packets = if opts.quick { 5 } else { 20 };
        let r = exp::fig5::run(opts.seed, packets);
        emit("fig5", &exp::fig5::render(&r), &r);
    }
    if want("fig6") {
        ran = true;
        let r = exp::fig6::run(opts.seed);
        emit("fig6", &exp::fig6::render(&r), &r);
    }
    if want("fig7") {
        ran = true;
        let r = exp::fig7::run(opts.seed, 12);
        emit("fig7", &exp::fig7::render(&r), &r);
    }
    if want("spoofing") {
        ran = true;
        let (victims, legit): (Vec<usize>, usize) = if opts.quick {
            (vec![5, 9, 16], 5)
        } else {
            ((1..=20).collect(), 10)
        };
        let r = exp::spoofing::run(opts.seed, &victims, legit);
        emit("spoofing", &exp::spoofing::render(&r), &r);
    }
    if want("fence") {
        ran = true;
        let packets = if opts.quick { 2 } else { 5 };
        let r = exp::fence::run(opts.seed, packets);
        emit("fence", &exp::fence::render(&r), &r);
    }
    if want("rss-baseline") {
        ran = true;
        let r = exp::rss_baseline::run(opts.seed, 5);
        emit("rss_baseline", &exp::rss_baseline::render(&r), &r);
    }
    if want("ablations") {
        ran = true;
        let packets = if opts.quick { 2 } else { 6 };
        let r = exp::ablations::run(opts.seed, packets);
        emit("ablations", &exp::ablations::render(&r), &r);
    }
    if want("mobility") {
        ran = true;
        let r = exp::mobility::run(opts.seed, 1.3, if opts.quick { 2.0 } else { 0.5 });
        emit("mobility", &exp::mobility::render(&r), &r);
    }
    if want("downlink") {
        ran = true;
        let r = exp::downlink::run(opts.seed);
        emit("downlink", &exp::downlink::render(&r), &r);
    }
    if want("snr-sweep") {
        ran = true;
        let trials = if opts.quick { 6 } else { 20 };
        let r = exp::snr::run(opts.seed, 5, trials);
        emit("snr_sweep", &exp::snr::render(&r), &r);
    }

    if !ran {
        die(&format!("unknown experiment(s): {:?}", opts.which));
    }
}
