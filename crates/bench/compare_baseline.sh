#!/usr/bin/env sh
# Record a fresh criterion run and diff it against the checked-in
# baseline, printing the worst regressions.
#
#   crates/bench/compare_baseline.sh [-t PCT] [-g] [baseline.json]
#
#   -t PCT   regression threshold in percent (default 10): benches
#            slower than baseline by more than PCT are reported
#   -g       gate: exit non-zero if any bench regresses past the
#            threshold (default is informational — always exit 0)
#
# Respects BENCH_QUICK=1 for fast CI runs (shorter measurement
# windows; noisier, which is why the CI step is non-gating). New
# benches with no baseline entry and baseline entries that no longer
# run are listed but never counted as regressions. See
# docs/BENCHMARKS.md for the host-drift caveats before trusting any
# single run.
set -eu
cd "$(dirname "$0")/../.."

threshold=10
gate=0
baseline="BENCH_baseline.json"
while [ $# -gt 0 ]; do
    case "$1" in
        -t) threshold="$2"; shift 2 ;;
        -g) gate=1; shift ;;
        -*) echo "usage: $0 [-t PCT] [-g] [baseline.json]" >&2; exit 2 ;;
        *) baseline="$1"; shift ;;
    esac
done
[ -f "$baseline" ] || { echo "no baseline at $baseline" >&2; exit 2; }

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# No pipefail in POSIX sh: run cargo to the file first so its exit
# status is what `set -e` sees, then replay the log for the operator.
cargo bench -p sa-bench > "$raw" 2>&1 || {
    cat "$raw" >&2
    echo "compare_baseline: cargo bench failed" >&2
    exit 1
}
cat "$raw" >&2
grep -q '^bench: ' "$raw" || {
    echo "compare_baseline: fresh run produced no bench lines" >&2
    exit 1
}

awk -v threshold="$threshold" -v gate="$gate" '
    # Pass 1: baseline entries ("label": {"ns_per_iter": N, ...}).
    NR == FNR {
        if (match($0, /^[[:space:]]*"[^"]+": \{"ns_per_iter": /)) {
            line = $0
            sub(/^[[:space:]]*"/, "", line)
            label = line
            sub(/".*/, "", label)
            sub(/^[^:]*": \{"ns_per_iter": /, "", line)
            sub(/,.*/, "", line)
            base[label] = line + 0
        }
        next
    }
    # Pass 2: fresh run ("bench: <label> <ns> ns/iter (...)").
    /^bench: / {
        label = $2
        now = $3 + 0
        seen[label] = 1
        if (!(label in base)) {
            added[n_added++] = label
            next
        }
        delta = (now - base[label]) / base[label] * 100
        lines[n++] = sprintf("%+8.1f%%  %12.1f -> %12.1f ns/iter  %s",
                             delta, base[label], now, label)
        deltas[n - 1] = delta
    }
    END {
        # Sort by delta, worst regression first (insertion sort; n ≈ 75).
        for (i = 1; i < n; i++) {
            l = lines[i]; d = deltas[i]
            for (j = i - 1; j >= 0 && deltas[j] < d; j--) {
                lines[j + 1] = lines[j]; deltas[j + 1] = deltas[j]
            }
            lines[j + 1] = l; deltas[j + 1] = d
        }
        regressions = 0
        for (i = 0; i < n; i++) if (deltas[i] > threshold) regressions++
        printf "\n== bench comparison vs baseline (threshold %s%%) ==\n", threshold
        printf "%d benches compared, %d regressed past threshold\n", n, regressions
        if (regressions > 0) {
            print "-- worst regressions --"
            for (i = 0; i < n && deltas[i] > threshold; i++) print lines[i]
        }
        print "-- full spread (worst 10 / best 5) --"
        for (i = 0; i < n && i < 10; i++) print lines[i]
        if (n > 15) print "   ..."
        for (i = (n > 15 ? n - 5 : 10); i < n; i++) print lines[i]
        for (i = 0; i < n_added; i++)
            printf "new bench (no baseline): %s\n", added[i]
        for (label in base) if (!(label in seen))
            printf "baseline entry no longer runs: %s\n", label
        if (gate && regressions > 0) exit 1
    }
' "$baseline" "$raw"
