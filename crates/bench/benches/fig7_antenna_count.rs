//! Bench for experiment E4 (Figure 7): MUSIC cost versus antenna count —
//! the paper's scaling argument ("the trend favors our design") has a
//! compute dimension too, since the eigendecomposition is O(M³) and the
//! scan is O(M·G).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sa_bench::capture_linear;

fn bench_observe_by_antenna_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_observe_by_antennas");
    for k in [2usize, 4, 6, 8] {
        let cap = capture_linear(12, k, 0xF167);
        group.bench_function(format!("{k}_antennas"), |b| {
            b.iter_batched(
                || cap.buffer.clone(),
                |buf| cap.testbed.nodes[0].ap.observe(&buf).expect("observe"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_music_scan_only(c: &mut Criterion) {
    use sa_aoa::manifold::ScanSpace;
    use sa_aoa::music::music_spectrum;
    use sa_array::geometry::Array;
    use sa_linalg::CMat;
    use sa_sigproc::covariance::sample_covariance;

    let mut group = c.benchmark_group("fig7_music_scan");
    for k in [2usize, 4, 6, 8] {
        let array = Array::paper_linear(k);
        let steer = array.steering(1.0);
        let x = CMat::from_fn(k, 256, |m, t| {
            steer[m] * sa_linalg::C64::cis(0.7 * t as f64)
        });
        let r = sample_covariance(&x);
        let space = ScanSpace::physical(&array);
        group.bench_function(format!("{k}_antennas_1deg_grid"), |b| {
            b.iter(|| music_spectrum(&r, &space, 1, 1.0))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_observe_by_antenna_count,
    bench_music_scan_only
);
criterion_main!(benches);
