//! Bench for experiment E1 (Figure 5): the per-packet cost of producing
//! a bearing + signature on the circular-array AP, for the client
//! classes the paper calls out (near, far, through-wall, pillar-blocked).
//!
//! This is the latency that determines whether SecureAngle can keep up
//! with live traffic: one observation = detection + decode + calibration
//! + correlation + MUSIC.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sa_bench::capture_circular;

fn bench_fig5_observation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_bearing_per_packet");
    for (label, client) in [
        ("near_client_5", 5usize),
        ("far_client_6", 6),
        ("other_room_client_2", 2),
        ("pillar_blocked_client_11", 11),
    ] {
        let cap = capture_circular(client, 0xF165);
        group.bench_function(label, |b| {
            b.iter_batched(
                || cap.buffer.clone(),
                |buf| cap.testbed.nodes[0].ap.observe(&buf).expect("observe"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_fig5_full_sweep(c: &mut Criterion) {
    // One complete Fig-5 data point: a client's packet from channel to
    // bearing, including waveform synthesis — the experiment's unit of
    // work.
    let mut group = c.benchmark_group("fig5_end_to_end");
    group.sample_size(20);
    group.bench_function("capture_plus_observe", |b| {
        use rand::SeedableRng;
        let tb = sa_testbed::Testbed::single_ap(sa_testbed::ApArray::Circular, 77);
        let mut seq = 0u16;
        b.iter(|| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seq as u64);
            seq = seq.wrapping_add(1);
            let buf = tb.client_capture(0, 5, seq, 0.0, &mut rng);
            tb.nodes[0].ap.observe(&buf).expect("observe")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5_observation, bench_fig5_full_sweep);
criterion_main!(benches);
