//! The `deploy_telemetry` group: what observability costs.
//!
//! The same 4-AP window workload as `deploy_throughput` pushed through
//! a deployment with telemetry disabled (the default, and the
//! `deploy_throughput` operating point) vs fully enabled
//! (`TelemetryConfig::full()`: registry + stage timers + flight
//! recorder). The telemetry design keeps the hot path to one branch
//! per tap site when disabled and two `Instant::now()` calls plus an
//! atomic add per stage when enabled — the disabled point must sit
//! within run-to-run noise of `deploy_throughput/aps_4`, and the
//! enabled point prices the full instrumented mode for
//! `docs/OBSERVABILITY.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_deploy::{DeployConfig, Deployment, TelemetryConfig, Transmission};
use sa_testbed::Testbed;

const CLIENTS: [usize; 8] = [5, 7, 9, 16, 19, 20, 3, 14];
const TX_PER_WINDOW: usize = 16;
const N_APS: usize = 4;

fn window_for(seed: u64) -> (Vec<secureangle::AccessPoint>, Vec<Transmission>) {
    let mut tb = Testbed::deployment(N_APS, seed);
    tb.cfg.payload_len = 1024;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdeb10);
    let ids: Vec<usize> = (0..TX_PER_WINDOW)
        .map(|i| CLIENTS[i % CLIENTS.len()])
        .collect();
    let txs: Vec<Transmission> = tb
        .window_traffic(&ids, 1, 0.0, &mut rng)
        .into_iter()
        .map(Transmission::new)
        .collect();
    (tb.nodes.into_iter().map(|n| n.ap).collect(), txs)
}

fn bench_deploy_telemetry(c: &mut Criterion) {
    let points = [
        ("aps_4_disabled", TelemetryConfig::disabled()),
        ("aps_4_full", TelemetryConfig::full()),
    ];
    let mut group = c.benchmark_group("deploy_telemetry");
    for (label, telemetry) in points {
        let (aps, txs) = window_for(7001);
        // Same operating point as `deploy_throughput/aps_4` (128
        // snapshots, streamed at depth 2) so the disabled point is
        // directly comparable against that baseline entry.
        let depth = 2;
        let cfg = DeployConfig {
            snapshot_cap: 128,
            windows_in_flight: depth,
            telemetry,
            ..DeployConfig::default()
        };
        let mut deployment = Deployment::new(aps, cfg);
        for _ in 0..4 {
            deployment.run_window(txs.clone()).expect("warmup window");
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                deployment.submit_window(txs.clone()).expect("bench submit");
                while deployment.pending_windows() >= depth {
                    deployment.collect_window().expect("bench collect");
                }
            })
        });
        while deployment.pending_windows() > 0 {
            deployment.collect_window().expect("drain");
        }
        // Sanity line for the docs: how much data the enabled run
        // actually accumulated (stderr info line, not baseline data).
        let (report, _aps) = deployment.finish();
        let snap = &report.telemetry;
        eprintln!(
            "info: deploy_telemetry/{}: {} counters, {} gauges, {} histograms in snapshot",
            label,
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deploy_telemetry);
criterion_main!(benches);
