//! Microbenches for the packet-facing pipeline stages: Schmidl–Cox
//! scanning of a WARP-sized buffer, OFDM encode/decode, MAC framing,
//! calibration, the channel simulator itself, and the headline
//! batched-vs-single AP ingest comparison (`ap_pipeline`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_linalg::complex::ZERO;
use sa_phy::ppdu::{Receiver, Transmitter};
use sa_phy::Modulation;
use sa_sigproc::schmidl_cox::SchmidlCox;

fn bench_schmidl_cox_scan(c: &mut Criterion) {
    // The paper's WARP captures 0.4 ms at 20 MHz = 8000 samples.
    let tx = Transmitter::new(Modulation::Qpsk);
    let wave = tx.encode(&[0xA5; 64]);
    let mut buf = vec![ZERO; 8000];
    buf[2000..2000 + wave.len()].copy_from_slice(&wave);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    sa_sigproc::noise::add_noise(&mut rng, &mut buf, 1e-4);
    let sc = SchmidlCox::new(sa_phy::preamble::SC_HALF_LEN);
    c.bench_function("schmidl_cox_scan_8000_samples", |b| {
        b.iter(|| sc.detect(&buf))
    });
}

fn bench_ofdm_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("ofdm");
    for (label, m) in [
        ("bpsk", Modulation::Bpsk),
        ("qpsk", Modulation::Qpsk),
        ("qam16", Modulation::Qam16),
    ] {
        let tx = Transmitter::new(m);
        let rx = Receiver::new(m);
        let payload: Vec<u8> = (0..256u32).map(|i| (i * 7 % 251) as u8).collect();
        group.bench_function(format!("encode_256B_{label}"), |b| {
            b.iter(|| tx.encode(&payload))
        });
        let wave = tx.encode(&payload);
        let mut buf = vec![ZERO; wave.len() + 200];
        buf[100..100 + wave.len()].copy_from_slice(&wave);
        group.bench_function(format!("decode_256B_{label}"), |b| {
            b.iter(|| rx.decode(&buf).expect("decode"))
        });
    }
    group.finish();
}

fn bench_mac_framing(c: &mut Criterion) {
    use sa_mac::{Frame, MacAddr};
    let f = Frame::data(
        MacAddr::local_from_index(1),
        MacAddr::BROADCAST,
        MacAddr::local_from_index(0),
        7,
        &[0x42; 256],
    );
    c.bench_function("mac_frame_encode_256B", |b| b.iter(|| f.encode()));
    let wire = f.encode();
    c.bench_function("mac_frame_decode_256B", |b| {
        b.iter(|| Frame::decode(&wire).expect("decode"))
    });
}

fn bench_calibration(c: &mut Criterion) {
    use sa_array::calib::Calibration;
    use sa_array::rf::FrontEnd;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let fe = FrontEnd::random(8, 1e-4, &mut rng);
    let capture = fe.receive_calibration_tone(1024, 1.0, &mut rng);
    c.bench_function("calibration_from_1024_sample_tone", |b| {
        b.iter(|| Calibration::from_tone_capture(&capture))
    });
    let cal = Calibration::from_tone_capture(&capture);
    let window = sa_linalg::CMat::from_fn(8, 512, |m, t| {
        sa_linalg::C64::cis(0.1 * m as f64 + 0.2 * t as f64)
    });
    c.bench_function("calibration_apply_8x512", |b| {
        b.iter_batched(
            || window.clone(),
            |mut w| cal.apply(&mut w),
            BatchSize::SmallInput,
        )
    });
}

fn bench_channel_simulation(c: &mut Criterion) {
    use sa_channel::apply::{apply_channel, ApplyConfig};
    use sa_channel::pattern::TxAntenna;
    use sa_channel::trace::{trace_paths, TraceConfig};
    let office = sa_testbed::Office::paper_figure4();
    let array = sa_array::geometry::Array::paper_octagon();

    c.bench_function("ray_trace_office_client10", |b| {
        b.iter(|| {
            trace_paths(
                &office.plan,
                office.client(10).position,
                office.ap_position,
                &TraceConfig::default(),
            )
        })
    });

    let paths = trace_paths(
        &office.plan,
        office.client(10).position,
        office.ap_position,
        &TraceConfig::default(),
    );
    let wave: Vec<sa_linalg::C64> = (0..520)
        .map(|t| sa_linalg::C64::cis(0.23 * t as f64))
        .collect();
    c.bench_function("apply_channel_8ant_520_samples", |b| {
        b.iter(|| {
            apply_channel(
                &paths,
                &TxAntenna::Omni,
                &array,
                &wave,
                &ApplyConfig::default(),
            )
        })
    });
}

/// The tentpole comparison: 16 packets through the synchronous
/// single-packet path (`AccessPoint::observe` per capture, which
/// rebuilds the AoA setup each time) vs the same 16 packets staged
/// through one `PacketBatch` (engine built once, buffers recycled).
/// Both closures do identical signal-processing work per iteration, so
/// the two `x16` numbers divide directly into a per-packet comparison.
fn bench_ap_batched_vs_single(c: &mut Criterion) {
    let caps: Vec<sa_bench::BenchCapture> = (0..4)
        .map(|i| sa_bench::capture_circular(5 + 3 * i, 2010 + i as u64))
        .collect();
    let ap = &caps[0].testbed.nodes[0].ap;
    // 16 captures cycling over 4 distinct clients.
    let buffers: Vec<&sa_linalg::CMat> = (0..16).map(|i| &caps[i % 4].buffer).collect();

    let mut group = c.benchmark_group("ap_pipeline");
    group.bench_function("observe_single_packet", |b| {
        b.iter(|| ap.observe(buffers[0]).expect("observation"))
    });
    group.bench_function("observe_x16_single_path", |b| {
        b.iter(|| {
            buffers
                .iter()
                .map(|buf| ap.observe(buf).expect("observation"))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("observe_x16_batched", |b| {
        b.iter(|| {
            let mut batch = ap.batch();
            for buf in &buffers {
                batch.push(buf).expect("staged packet");
            }
            batch.process()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schmidl_cox_scan,
    bench_ofdm_roundtrip,
    bench_mac_framing,
    bench_calibration,
    bench_channel_simulation,
    bench_ap_batched_vs_single
);
criterion_main!(benches);
