//! The `deploy_fleet` group: fleet-scale serving — one campus-hall
//! window of N clients (N ∈ {20, 200, 2000}) pushed through a 4-AP
//! deployment at decode-shard counts 1 and 4.
//!
//! The headline comparison is `clients_2000_decode_1` vs
//! `clients_2000_decode_4`: the same 2000-transmission window (1024-byte
//! data frames — the realistic regime where stage-1 decode dominates the
//! coordinator) with the stage-1 decode run serially vs fanned across a
//! 4-thread decode pool. Fused output is byte-identical either way (see
//! the `fusion_shards` e2e suite and `tests/proptest_fleet.rs`); only
//! the wall-clock changes. Dividing the per-window time into the
//! `fixes/window` info line printed per operating point gives aggregate
//! fused-fix throughput.
//!
//! **Host caveat**: on a single-core host the decode pool cannot beat
//! serial decode — the 4-shard rows then price the pool's channel
//! overhead, and the multi-core speedup must be read from a multi-core
//! run (see docs/BENCHMARKS.md). Under `BENCH_QUICK=1` (CI) the
//! 2000-client rows are skipped: their setup alone (8 000 captures,
//! ~8 GB) dwarfs the quick measurement budget.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_deploy::{DeployConfig, Deployment, Transmission};
use sa_testbed::Testbed;

const N_APS: usize = 4;
const SEED: u64 = 7011;
const DEPTH: usize = 2;

/// One campus window: every client transmits once (1024-byte frames).
fn campus_window(n_clients: usize) -> Vec<Transmission> {
    let mut tb = Testbed::campus_with(n_clients, N_APS, SEED);
    tb.cfg.payload_len = 1024;
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0xdeb10);
    let clients: Vec<usize> = (1..=n_clients).collect();
    tb.window_traffic(&clients, 1, 0.0, &mut rng)
        .into_iter()
        .map(Transmission::new)
        .collect()
}

/// Fresh APs for a config run (`AccessPoint` is not `Clone`; the build
/// is deterministic in `SEED`, so every run sees identical APs).
fn campus_aps(n_clients: usize) -> Vec<secureangle::AccessPoint> {
    Testbed::campus_with(n_clients, N_APS, SEED)
        .nodes
        .into_iter()
        .map(|n| n.ap)
        .collect()
}

fn bench_deploy_fleet(c: &mut Criterion) {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let mut group = c.benchmark_group("deploy_fleet");
    for n_clients in [20usize, 200, 2000] {
        if quick && n_clients > 200 {
            continue;
        }
        // Generate the traffic once per fleet size; iterations and
        // shard configs reuse it via cheap `Arc` clones.
        let txs = campus_window(n_clients);
        for decode_shards in [1usize, 4] {
            // Small snapshot cap: the per-AP DSP term stays modest so
            // the decode stage — the thing being sharded — dominates.
            let cfg = DeployConfig {
                snapshot_cap: 64,
                windows_in_flight: DEPTH,
                decode_shards,
                fusion_shards: 16,
                ..DeployConfig::default()
            };
            let mut deployment = Deployment::new(campus_aps(n_clients), cfg);
            // Warm up: first window auto-trains every signature (cold
            // stores, first-touch allocations are not representative).
            for _ in 0..2 {
                deployment.run_window(txs.clone()).expect("warmup window");
            }
            group.bench_function(
                format!("clients_{}_decode_{}", n_clients, decode_shards),
                |b| {
                    b.iter(|| {
                        deployment.submit_window(txs.clone()).expect("bench submit");
                        while deployment.pending_windows() >= DEPTH {
                            deployment.collect_window().expect("bench collect");
                        }
                    })
                },
            );
            while deployment.pending_windows() > 0 {
                deployment.collect_window().expect("drain");
            }
            let (report, _aps) = deployment.finish();
            let windows = report.metrics.windows.max(1);
            eprintln!(
                "info: deploy_fleet/clients_{}_decode_{}: {:.1} fixes/window, {} consensus flags, {} decode failures",
                n_clients,
                decode_shards,
                report.metrics.fixes as f64 / windows as f64,
                report.metrics.consensus_flags,
                report.metrics.decode_failures,
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_deploy_fleet);
criterion_main!(benches);
