//! Bench for experiment E3 (Figure 6): signature comparison and temporal
//! channel evolution — the operations an AP performs per uplink frame to
//! track `S_cl` over time.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_bench::capture_linear;
use secureangle::signature::{AoaSignature, MatchConfig, SignatureTracker};

fn signatures() -> (AoaSignature, AoaSignature) {
    let cap0 = capture_linear(5, 8, 0xF166);
    let obs0 = cap0.testbed.nodes[0]
        .ap
        .observe(&cap0.buffer)
        .expect("observe");
    let cap1 = capture_linear(5, 8, 0xF167);
    let obs1 = cap1.testbed.nodes[0]
        .ap
        .observe(&cap1.buffer)
        .expect("observe");
    (obs0.signature, obs1.signature)
}

fn bench_signature_compare(c: &mut Criterion) {
    let (a, b) = signatures();
    let cfg = MatchConfig::default();
    c.bench_function("fig6_signature_compare", |bch| {
        bch.iter(|| a.compare(&b, &cfg))
    });
}

fn bench_tracker_update(c: &mut Criterion) {
    let (a, b) = signatures();
    c.bench_function("fig6_tracker_update", |bch| {
        let mut tracker = SignatureTracker::new(a.clone(), 0.15);
        bch.iter(|| tracker.update(&b))
    });
}

fn bench_temporal_evolution(c: &mut Criterion) {
    use sa_channel::temporal::TemporalModel;
    use sa_channel::trace::{trace_paths, TraceConfig};
    let office = sa_testbed::Office::paper_figure4();
    let paths = trace_paths(
        &office.plan,
        office.client(10).position,
        office.ap_position,
        &TraceConfig::default(),
    );
    let model = TemporalModel::default();
    let mut group = c.benchmark_group("fig6_channel_evolution");
    for dt in [1.0, 1000.0, 86_400.0] {
        group.bench_function(format!("dt_{dt}s"), |bch| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            bch.iter(|| model.evolve(&paths, dt, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_signature_compare,
    bench_tracker_update,
    bench_temporal_evolution
);
criterion_main!(benches);
