//! Microbenches for the numerical kernels: Hermitian eigendecomposition
//! (the heart of MUSIC), FFT (the heart of the OFDM modem), and the
//! matrix products that dominate covariance estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use sa_linalg::complex::C64;
use sa_linalg::eigen::{eigh, eigh_jacobi};
use sa_linalg::fft::{fft_owned, ifft_owned, FftPlan};
use sa_linalg::CMat;

fn hermitian(n: usize, seed: u64) -> CMat {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let g = CMat::from_fn(n, n, |_, _| C64::new(next(), next()));
    &g + &g.hermitian()
}

fn bench_eigh(c: &mut Criterion) {
    // The production path: Householder tridiagonal + implicit-shift QL.
    let mut group = c.benchmark_group("eigh_tridiag");
    for n in [4usize, 8, 16] {
        let a = hermitian(n, 42);
        group.bench_function(format!("{n}x{n}"), |b| b.iter(|| eigh(&a)));
    }
    group.finish();
    // The cyclic Jacobi reference oracle, same inputs — the before/after
    // of the PR-5 eigensolver swap reads straight off these two groups.
    let mut group = c.benchmark_group("eigh_jacobi");
    for n in [4usize, 8, 16] {
        let a = hermitian(n, 42);
        group.bench_function(format!("{n}x{n}"), |b| b.iter(|| eigh_jacobi(&a)));
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    // Free functions run on the process-wide plan cache (one lock +
    // Arc clone per call); the `planned_*` rows hold the plan across
    // calls — the modem's per-packet pattern.
    let mut group = c.benchmark_group("fft_radix2");
    for n in [64usize, 256, 1024] {
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        group.bench_function(format!("forward_{n}"), |b| b.iter(|| fft_owned(&x)));
        group.bench_function(format!("inverse_{n}"), |b| b.iter(|| ifft_owned(&x)));
        let plan = FftPlan::new(n);
        group.bench_function(format!("planned_forward_{n}"), |b| {
            let mut buf = x.clone();
            b.iter(|| {
                buf.copy_from_slice(&x);
                plan.fft(&mut buf);
            })
        });
    }
    group.finish();
}

fn bench_covariance(c: &mut Criterion) {
    use sa_sigproc::covariance::{sample_covariance, smooth_fb};
    let mut group = c.benchmark_group("covariance");
    for (m, n) in [(8usize, 512usize), (8, 2048), (16, 512)] {
        let x = CMat::from_fn(m, n, |i, t| C64::cis(0.3 * i as f64 + 0.11 * t as f64));
        group.bench_function(format!("sample_{m}x{n}"), |b| {
            b.iter(|| sample_covariance(&x))
        });
    }
    let x = CMat::from_fn(8, 512, |i, t| C64::cis(0.3 * i as f64 + 0.11 * t as f64));
    let r = sample_covariance(&x);
    group.bench_function("smooth_fb_8_to_6", |b| b.iter(|| smooth_fb(&r, 6)));
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let a = hermitian(16, 7);
    let b_ = hermitian(16, 9);
    c.bench_function("matmul_16x16", |b| b.iter(|| a.matmul(&b_)));
}

criterion_group!(
    benches,
    bench_eigh,
    bench_fft,
    bench_covariance,
    bench_matmul
);
criterion_main!(benches);
