//! Microbenches for the AoA estimators: MUSIC vs the Bartlett/Capon
//! baselines, the mode-space transform, source counting and peak
//! extraction — the ablation dimensions of experiment E8 measured in
//! time rather than accuracy.

use criterion::{criterion_group, criterion_main, Criterion};
use sa_aoa::estimator::{
    estimate_from_covariance, AoaConfig, AoaEngine, Method, ScanBackend, Smoothing,
};
use sa_aoa::source_count::SourceCount;
use sa_aoa::ConfidenceModel;
use sa_array::geometry::Array;
use sa_array::modespace::ModeSpace;
use sa_linalg::complex::C64;
use sa_linalg::CMat;
use sa_sigproc::covariance::sample_covariance;

fn two_path_cov(array: &Array) -> CMat {
    let s1 = array.steering(0.8);
    let s2 = array.steering(2.4);
    let x = CMat::from_fn(array.len(), 512, |m, t| {
        let sym = C64::cis(1.1 * t as f64);
        s1[m] * sym + s2[m] * C64::from_polar(0.6, 1.0) * sym
    });
    sample_covariance(&x)
}

fn bench_methods(c: &mut Criterion) {
    let array = Array::paper_octagon();
    let r = two_path_cov(&array);
    let mut group = c.benchmark_group("aoa_methods_octagon_1deg");
    for (label, method) in [
        ("music", Method::Music),
        ("bartlett", Method::Bartlett),
        ("capon", Method::Capon),
    ] {
        let cfg = AoaConfig {
            method,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| estimate_from_covariance(&r, 512, &array, &cfg))
        });
    }
    group.finish();
}

fn bench_smoothing_variants(c: &mut Criterion) {
    let array = Array::paper_octagon();
    let r = two_path_cov(&array);
    let mut group = c.benchmark_group("aoa_smoothing");
    for (label, smoothing) in [
        ("none", Smoothing::None),
        ("fb", Smoothing::ForwardBackward),
        ("fb_spatial_auto", Smoothing::FbSpatial { sub_len: 0 }),
    ] {
        let cfg = AoaConfig {
            smoothing,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| estimate_from_covariance(&r, 512, &array, &cfg))
        });
    }
    group.finish();
}

fn bench_modespace_transform(c: &mut Criterion) {
    let array = Array::paper_octagon();
    let ms = ModeSpace::for_array(&array);
    let r = two_path_cov(&array);
    c.bench_function("modespace_cov_transform", |b| {
        b.iter(|| ms.transform_cov(&r))
    });
    c.bench_function("modespace_build", |b| {
        b.iter(|| ModeSpace::for_array(&array))
    });
}

/// The estimator-layer amortisation: one-shot `estimate_from_covariance`
/// (rebuilds manifold + steering table + eigen buffers per call) vs a
/// prebuilt, reused [`AoaEngine`].
fn bench_engine_reuse(c: &mut Criterion) {
    let array = Array::paper_octagon();
    let r = two_path_cov(&array);
    let cfg = AoaConfig::default();
    let mut group = c.benchmark_group("aoa_estimator");
    group.bench_function("one_shot", |b| {
        b.iter(|| estimate_from_covariance(&r, 512, &array, &cfg))
    });
    let mut engine = AoaEngine::new(&array, &cfg);
    group.bench_function("engine_reuse", |b| b.iter(|| engine.estimate_cov(&r, 512)));
    group.finish();
}

/// The spectrum-search backends head to head on the production octagon
/// path, each behind a reused engine so only the scan differs: the
/// exhaustive 1° oracle vs decimated coarse-to-fine refinement vs the
/// grid-free root-MUSIC polynomial.
fn bench_scan_backends(c: &mut Criterion) {
    let array = Array::paper_octagon();
    let r = two_path_cov(&array);
    let mut group = c.benchmark_group("aoa_backends");
    for (label, backend) in [
        ("exhaustive", ScanBackend::Exhaustive),
        ("coarse_to_fine", ScanBackend::coarse_to_fine()),
        ("root_music", ScanBackend::RootMusic),
    ] {
        let cfg = AoaConfig {
            scan_backend: backend,
            ..Default::default()
        };
        let mut engine = AoaEngine::new(&array, &cfg);
        group.bench_function(label, |b| b.iter(|| engine.estimate_cov(&r, 512)));
    }
    group.finish();
}

/// Cost of the CRLB confidence model relative to the historical
/// peak-power path (the sigma is computed either way; `crlb` only adds
/// the `1/(1+σ)` map, so the two should be indistinguishable).
fn bench_confidence_models(c: &mut Criterion) {
    let array = Array::paper_octagon();
    let r = two_path_cov(&array);
    let mut group = c.benchmark_group("aoa_confidence");
    for (label, confidence) in [
        ("peak_power", ConfidenceModel::PeakPower),
        ("crlb", ConfidenceModel::Crlb),
    ] {
        let cfg = AoaConfig {
            confidence,
            ..Default::default()
        };
        let mut engine = AoaEngine::new(&array, &cfg);
        group.bench_function(label, |b| b.iter(|| engine.estimate_cov(&r, 512)));
    }
    group.finish();
}

fn bench_source_count(c: &mut Criterion) {
    let eigs: Vec<f64> = vec![0.9, 1.0, 1.1, 1.05, 0.95, 40.0, 80.0, 120.0];
    let mut group = c.benchmark_group("source_count");
    for (label, sc) in [("mdl", SourceCount::Mdl), ("aic", SourceCount::Aic)] {
        group.bench_function(label, |b| b.iter(|| sc.estimate(&eigs, 512)));
    }
    group.finish();
}

fn bench_peak_extraction(c: &mut Criterion) {
    let array = Array::paper_octagon();
    let r = two_path_cov(&array);
    let est = estimate_from_covariance(&r, 512, &array, &AoaConfig::default());
    c.bench_function("find_peaks_360deg", |b| {
        b.iter(|| est.spectrum.find_peaks(1.0, 8))
    });
}

criterion_group!(
    benches,
    bench_methods,
    bench_smoothing_variants,
    bench_modespace_transform,
    bench_engine_reuse,
    bench_scan_backends,
    bench_confidence_models,
    bench_source_count,
    bench_peak_extraction
);
criterion_main!(benches);
