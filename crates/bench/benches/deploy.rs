//! The `deploy` group: aggregate multi-AP throughput and fusion
//! latency.
//!
//! The headline comparison is `deploy_throughput/aps_1` vs `aps_4` vs
//! `aps_8`: the **same client workload** (16 transmissions of 1024-byte
//! data frames per window) pushed through deployments of 1, 4 and 8
//! APs. An N-AP deployment processes N captures per transmission, so
//! dividing the per-window time by `16·N` gives per-packet cost, and
//! `aps_4` beating `2 × aps_1` wall-clock means aggregate packet
//! throughput more than doubled. Two effects drive it: stage 1
//! (detect + decode) runs once per transmission regardless of N
//! (shared decode), and the per-AP DSP fans out across worker threads
//! where cores allow.
//!
//! `deploy_fusion/window_20_clients_4_aps` isolates the fusion stage:
//! grouping, least-squares intersection, tracker updates and consensus
//! for one closed window, no signal processing involved.
//!
//! `deploy_degraded/*` prices the deployment-realism machinery: the
//! same 4-AP window pushed through a clean deployment, a lossy report
//! link (with and without retransmit recovery), skewed AP clocks (the
//! aligner's remap path), and confidence-weighted fusion. The group
//! also prints an `info:` line per operating point with the fused fix
//! accuracy, so throughput and accuracy degrade visibly side by side.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_deploy::{ApSkew, DeployConfig, Deployment, Fusion, LinkConfig, Transmission};
use sa_testbed::Testbed;

/// Clients spread around the office, cycled to fill a window.
const CLIENTS: [usize; 8] = [5, 7, 9, 16, 19, 20, 3, 14];
const TX_PER_WINDOW: usize = 16;

/// Build one window's worth of 1024-byte-payload transmissions for an
/// `n`-AP testbed. 1024-byte data frames are the realistic regime: at
/// paper-sized 18-byte frames the whole pipeline is preamble-dominated
/// and neither batching nor decode sharing has anything to amortise.
fn window_for(n_aps: usize, seed: u64) -> (Vec<secureangle::AccessPoint>, Vec<Transmission>) {
    let mut tb = Testbed::deployment(n_aps, seed);
    tb.cfg.payload_len = 1024;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdeb10);
    let ids: Vec<usize> = (0..TX_PER_WINDOW)
        .map(|i| CLIENTS[i % CLIENTS.len()])
        .collect();
    let txs: Vec<Transmission> = tb
        .window_traffic(&ids, 1, 0.0, &mut rng)
        .into_iter()
        .map(Transmission::new)
        .collect();
    (tb.nodes.into_iter().map(|n| n.ap).collect(), txs)
}

fn bench_deploy_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("deploy_throughput");
    for n_aps in [1usize, 4, 8] {
        let (aps, txs) = window_for(n_aps, 7001);
        // Throughput-oriented operating point: a 128-snapshot
        // covariance budget (plenty for an 8×8 covariance — the MUSIC
        // accuracy suites run at 96–128 snapshots) keeps the per-AP DSP
        // term small relative to the shared decode. Identical config on
        // every AP count, so the comparison stays apples-to-apples.
        // Since PR 5 the group runs streamed (`windows_in_flight = 2`):
        // each iteration submits one window and collects the oldest, so
        // the steady state overlaps coordinator decode with worker DSP —
        // the production operating mode.
        let depth = 2;
        let cfg = DeployConfig {
            snapshot_cap: 128,
            windows_in_flight: depth,
            ..DeployConfig::default()
        };
        let mut deployment = Deployment::new(aps, cfg);
        // Warm the workers (engine construction, first-touch
        // allocations, signature auto-training, scheduler settling —
        // the first windows on a cold deployment are not
        // representative) and fill the pipeline to its steady depth.
        for _ in 0..4 {
            deployment.run_window(txs.clone()).expect("warmup window");
        }
        group.bench_function(format!("aps_{}", n_aps), |b| {
            b.iter(|| {
                deployment.submit_window(txs.clone()).expect("bench submit");
                while deployment.pending_windows() >= depth {
                    deployment.collect_window().expect("bench collect");
                }
            })
        });
        while deployment.pending_windows() > 0 {
            deployment.collect_window().expect("drain");
        }
    }
    group.finish();
}

/// Pipelining depth ablation at 4 APs: the same 8-window workload run
/// through `run_stream` at depths 1, 2 and 4. Depth 1 is the PR-4
/// submit-then-collect behavior; the depth-2 gain is the coordinator
/// decode / worker DSP overlap the streamed-windows work bought
/// (outputs are byte-identical at every depth — see the deploy e2e
/// suite).
fn bench_deploy_streamed(c: &mut Criterion) {
    let n_aps = 4;
    let mut group = c.benchmark_group("deploy_streamed");
    for depth in [1usize, 2, 4] {
        let (aps, txs) = window_for(n_aps, 7001);
        let cfg = DeployConfig {
            snapshot_cap: 128,
            windows_in_flight: depth,
            ..DeployConfig::default()
        };
        let mut deployment = Deployment::new(aps, cfg);
        for _ in 0..4 {
            deployment.run_window(txs.clone()).expect("warmup window");
        }
        group.bench_function(format!("aps_4_depth_{}", depth), |b| {
            b.iter(|| {
                let windows: Vec<_> = (0..8).map(|_| txs.clone()).collect();
                deployment.run_stream(windows).expect("stream")
            })
        });
    }
    group.finish();
}

/// One named degraded operating point for the 4-AP workload.
struct Degraded {
    label: &'static str,
    link: LinkConfig,
    skew: i64,
    weighted: bool,
}

fn bench_deploy_degraded(c: &mut Criterion) {
    let reliable = LinkConfig {
        loss_rate: 0.0,
        retry_limit: 3,
        seed: 7005,
    };
    let points = [
        Degraded {
            label: "clean",
            link: reliable,
            skew: 0,
            weighted: false,
        },
        Degraded {
            label: "loss_10_retry_3",
            link: LinkConfig {
                loss_rate: 0.10,
                ..reliable
            },
            skew: 0,
            weighted: false,
        },
        Degraded {
            label: "loss_30_retry_0",
            link: LinkConfig {
                loss_rate: 0.30,
                retry_limit: 0,
                ..reliable
            },
            skew: 0,
            weighted: false,
        },
        Degraded {
            label: "skew_2",
            link: reliable,
            skew: 2,
            weighted: false,
        },
        Degraded {
            label: "weighted_fusion",
            link: reliable,
            skew: 0,
            weighted: true,
        },
    ];

    let n_aps = 4;
    let mut group = c.benchmark_group("deploy_degraded");
    for p in points {
        let (aps, txs) = window_for(n_aps, 7001);
        let cfg = DeployConfig {
            snapshot_cap: 128,
            link: p.link,
            max_skew_windows: 2,
            weight_bearings_by_confidence: p.weighted,
            ..DeployConfig::default()
        };
        let mut deployment = if p.skew != 0 {
            let skews: Vec<ApSkew> = Testbed::skew_profile(n_aps, p.skew, 7006)
                .into_iter()
                .map(|(window_offset, seq_offset)| ApSkew {
                    window_offset,
                    seq_offset,
                    drift_ppw: 0.0,
                })
                .collect();
            Deployment::with_skews(aps, cfg, skews)
        } else {
            Deployment::new(aps, cfg)
        };
        for _ in 0..4 {
            deployment.run_window(txs.clone()).expect("warmup window");
        }
        group.bench_function(p.label, |b| {
            b.iter(|| deployment.run_window(txs.clone()).expect("bench window"))
        });
        // Accuracy at this operating point, over the windows the bench
        // actually ran (stderr info line, not part of the baseline).
        let (report, _aps) = deployment.finish();
        let windows = report.metrics.windows.max(1);
        eprintln!(
            "info: deploy_degraded/{}: {:.1} fixes/window, {} reports lost, {} degraded windows / {}",
            p.label,
            report.metrics.fixes as f64 / windows as f64,
            report.metrics.reports_lost,
            report.metrics.degraded_windows,
            windows,
        );
    }
    group.finish();
}

fn bench_fusion_latency(c: &mut Criterion) {
    // One closed 4-AP window of 20 clients, replayed through a fresh
    // fusion stage: pure fusion cost (sort, group, intersect, track,
    // consensus), no DSP.
    let n_aps = 4;
    let tb = Testbed::deployment(n_aps, 7002);
    let mut rng = ChaCha8Rng::seed_from_u64(7003);
    let clients: Vec<usize> = (1..=20).collect();
    let txs: Vec<Transmission> = tb
        .window_traffic(&clients, 1, 0.0, &mut rng)
        .into_iter()
        .map(Transmission::new)
        .collect();
    let positions: Vec<_> = tb.nodes.iter().map(|n| n.ap.config().position).collect();
    let aps: Vec<_> = tb.nodes.into_iter().map(|n| n.ap).collect();

    // Capture one window's ApPackets by fusing it once and replaying
    // the raw reports: easiest to regenerate them through a deployment
    // run per iteration would measure the whole pipeline, so instead
    // synthesise the packets from the fused observations.
    let mut deployment = Deployment::new(aps, DeployConfig::default());
    let fused = deployment.run_window(txs).expect("window");
    let positions_ref = &positions;
    let packets: Vec<sa_deploy::ApPacket> = fused
        .clients
        .iter()
        .flat_map(|c| {
            (0..n_aps).map(move |ap_id| sa_deploy::ApPacket {
                ap_id,
                window: 0,
                seq: 0,
                mac: Some(c.mac),
                report: c.fix.map(|f| secureangle::pipeline::BearingReport {
                    mac: c.mac,
                    azimuth: positions_ref[ap_id].azimuth_to(f.position),
                    confidence: c.mean_confidence,
                    rss_db: -40.0,
                    seq: 0,
                }),
                bearing_deg: 0.0,
                rss_db: -40.0,
                verdict: secureangle::pipeline::FrameVerdict::Admit {
                    spoof: secureangle::spoof::SpoofVerdict::Match { score: 0.9 },
                },
            })
        })
        .collect();
    let (_report, _aps) = deployment.finish();

    let mut group = c.benchmark_group("deploy_fusion");
    group.bench_function("window_20_clients_4_aps", |b| {
        let mut window = 0u64;
        let mut fusion = Fusion::new(positions.clone(), DeployConfig::default());
        b.iter(|| {
            let mut pkts = packets.clone();
            for p in &mut pkts {
                p.window = window;
            }
            let out = fusion.fuse_window(window, pkts);
            window += 1;
            out
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_deploy_throughput,
    bench_deploy_streamed,
    bench_deploy_degraded,
    bench_fusion_latency
);
criterion_main!(benches);
