#!/usr/bin/env sh
# Record the full criterion suite into a machine-readable baseline.
#
#   crates/bench/record_baseline.sh [output.json]
#
# Runs `cargo bench -p sa-bench` (release profile, full measurement
# windows — do NOT set BENCH_QUICK for a baseline) and converts the
# stand-in criterion's `bench: <label> <ns> ns/iter (<n> iters)` lines
# into JSON. The checked-in BENCH_baseline.json at the repo root is the
# reference the docs/BENCHMARKS.md numbers come from; re-record it when
# a PR claims a hot-path win.
set -eu
cd "$(dirname "$0")/../.."
out="${1:-BENCH_baseline.json}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

cargo bench -p sa-bench | tee "$raw" >&2

{
    printf '{\n'
    printf '  "schema": "secureangle-bench-v1",\n'
    printf '  "recorded_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "host": {"kernel": "%s", "arch": "%s", "cpus": %s},\n' \
        "$(uname -r)" "$(uname -m)" "$(nproc 2>/dev/null || echo 0)"
    printf '  "command": "cargo bench -p sa-bench",\n'
    printf '  "unit": "ns_per_iter",\n'
    printf '  "benches": {\n'
    awk '/^bench: / {
        lines[n++] = sprintf("    \"%s\": {\"ns_per_iter\": %s, \"iters\": %s}",
                             $2, $3, substr($5, 2))
    }
    END {
        for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    }' "$raw"
    printf '  }\n'
    printf '}\n'
} > "$out"
echo "wrote $out" >&2
