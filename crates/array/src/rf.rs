//! RF front-end model: the part of the WARP hardware that breaks naive
//! AoA and makes calibration necessary.
//!
//! Paper §2.2: "each radio receiver incorporates a 2.4 GHz oscillator
//! whose purpose is to convert the incoming radio frequency signal to its
//! representation in I-Q space … the downconverters of even phase-locked
//! systems introduce an unknown but constant phase difference to each
//! receiver". We model exactly that: the chains share one LO frequency
//! (phase-locked, so no inter-chain frequency drift) but each chain `m`
//! applies an unknown constant rotation `e^{jψ_m}` plus a small gain
//! error, then adds thermal noise. A shared client↔AP carrier frequency
//! offset (CFO) — identical on every chain because the sampling clocks
//! are shared ("the two WARP boards are also modified to share the same
//! sampling clocks", §3) — is applied upstream by the channel model.

use rand::Rng;
use sa_linalg::complex::C64;
use sa_linalg::matrix::CMat;
use sa_sigproc::noise::cn_sample;

/// One receive chain's constant impairments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfChain {
    /// Downconverter phase offset ψ, radians. Unknown to the AP until
    /// calibration.
    pub phase_offset: f64,
    /// Linear amplitude gain (1.0 nominal).
    pub gain: f64,
}

impl RfChain {
    /// The complex gain this chain multiplies onto every sample.
    pub fn complex_gain(&self) -> C64 {
        C64::from_polar(self.gain, self.phase_offset)
    }
}

/// A bank of receive chains with per-chain thermal noise.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEnd {
    chains: Vec<RfChain>,
    /// Per-sample complex noise variance added by each chain.
    pub noise_var: f64,
}

impl FrontEnd {
    /// An ideal front end: zero phase offsets, unit gains, noiseless.
    /// Useful in tests to isolate other effects.
    pub fn ideal(n: usize) -> Self {
        Self {
            chains: vec![
                RfChain {
                    phase_offset: 0.0,
                    gain: 1.0
                };
                n
            ],
            noise_var: 0.0,
        }
    }

    /// A realistic front end: phase offsets uniform in `[0, 2π)` (the
    /// "unknown but constant phase difference"), gains within ±0.5 dB,
    /// and the given noise variance.
    pub fn random<R: Rng + ?Sized>(n: usize, noise_var: f64, rng: &mut R) -> Self {
        let chains = (0..n)
            .map(|_| RfChain {
                phase_offset: rng.gen::<f64>() * 2.0 * std::f64::consts::PI,
                // ±0.5 dB → gain factor in [10^(−0.025), 10^(0.025)].
                gain: 10f64.powf((rng.gen::<f64>() - 0.5) * 0.05),
            })
            .collect();
        Self { chains, noise_var }
    }

    /// Construct from explicit chains.
    pub fn from_chains(chains: Vec<RfChain>, noise_var: f64) -> Self {
        Self { chains, noise_var }
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True if there are no chains.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Chain parameters.
    pub fn chains(&self) -> &[RfChain] {
        &self.chains
    }

    /// Pass clean per-antenna samples (rows = antennas) through the
    /// front end: apply each chain's complex gain and add noise.
    pub fn receive<R: Rng + ?Sized>(&self, clean: &CMat, rng: &mut R) -> CMat {
        assert_eq!(
            clean.rows(),
            self.chains.len(),
            "FrontEnd::receive: {} rows for {} chains",
            clean.rows(),
            self.chains.len()
        );
        let mut out = clean.clone();
        for (m, chain) in self.chains.iter().enumerate() {
            let g = chain.complex_gain();
            for t in 0..out.cols() {
                let mut z = out[(m, t)] * g;
                if self.noise_var > 0.0 {
                    z += cn_sample(rng, self.noise_var);
                }
                out[(m, t)] = z;
            }
        }
        out
    }

    /// Feed the *same* reference tone into every chain — the cabled
    /// USRP2-through-equal-length-splitter path of Figure 2 with the
    /// switches in the calibration position. Returns per-chain samples of
    /// the tone as each chain sees it (with its offset and noise applied).
    ///
    /// `tone_power` is the per-sample power after the 36 dB attenuator;
    /// what matters for calibration quality is `tone_power / noise_var`.
    pub fn receive_calibration_tone<R: Rng + ?Sized>(
        &self,
        n_samples: usize,
        tone_power: f64,
        rng: &mut R,
    ) -> CMat {
        let amp = tone_power.sqrt();
        let tone: Vec<C64> = (0..n_samples)
            .map(|t| C64::from_polar(amp, 0.1 * t as f64)) // any steady CW tone
            .collect();
        let clean = CMat::from_fn(self.chains.len(), n_samples, |_, t| tone[t]);
        self.receive(&clean, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sa_linalg::c64;

    #[test]
    fn ideal_front_end_is_transparent() {
        let fe = FrontEnd::ideal(3);
        let x = CMat::from_fn(3, 5, |i, t| c64(i as f64, t as f64));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let y = fe.receive(&x, &mut rng);
        assert!(y.approx_eq(&x, 1e-14));
    }

    #[test]
    fn phase_offsets_rotate_each_row() {
        let chains = vec![
            RfChain {
                phase_offset: 0.0,
                gain: 1.0,
            },
            RfChain {
                phase_offset: 1.0,
                gain: 1.0,
            },
        ];
        let fe = FrontEnd::from_chains(chains, 0.0);
        let x = CMat::from_fn(2, 4, |_, _| c64(1.0, 0.0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let y = fe.receive(&x, &mut rng);
        assert!((y[(0, 0)].arg()).abs() < 1e-12);
        assert!((y[(1, 0)].arg() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gains_scale_amplitude() {
        let chains = vec![RfChain {
            phase_offset: 0.0,
            gain: 2.0,
        }];
        let fe = FrontEnd::from_chains(chains, 0.0);
        let x = CMat::from_fn(1, 3, |_, _| c64(1.0, 1.0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let y = fe.receive(&x, &mut rng);
        assert!((y[(0, 1)].abs() - 2.0 * 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn random_front_end_offsets_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let fe = FrontEnd::random(8, 0.01, &mut rng);
        assert_eq!(fe.len(), 8);
        for c in fe.chains() {
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&c.phase_offset));
            assert!(
                (c.gain - 1.0).abs() < 0.07,
                "gain {} outside ±0.5 dB",
                c.gain
            );
        }
    }

    #[test]
    fn noise_raises_received_power() {
        let fe = FrontEnd::from_chains(
            vec![RfChain {
                phase_offset: 0.0,
                gain: 1.0,
            }],
            0.5,
        );
        let x = CMat::from_fn(1, 50_000, |_, _| c64(1.0, 0.0));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let y = fe.receive(&x, &mut rng);
        let p: f64 = (0..y.cols()).map(|t| y[(0, t)].norm_sqr()).sum::<f64>() / y.cols() as f64;
        assert!((p - 1.5).abs() < 0.03, "power {}", p);
    }

    #[test]
    fn calibration_tone_identical_across_chains_when_ideal() {
        let fe = FrontEnd::ideal(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let y = fe.receive_calibration_tone(16, 1.0, &mut rng);
        for t in 0..16 {
            for m in 1..4 {
                assert!(y[(m, t)].approx_eq(y[(0, t)], 1e-12));
            }
        }
    }

    #[test]
    fn calibration_tone_reveals_relative_offsets() {
        let chains = vec![
            RfChain {
                phase_offset: 0.3,
                gain: 1.0,
            },
            RfChain {
                phase_offset: 1.7,
                gain: 1.0,
            },
        ];
        let fe = FrontEnd::from_chains(chains, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let y = fe.receive_calibration_tone(8, 1.0, &mut rng);
        for t in 0..8 {
            let rel = (y[(1, t)] * y[(0, t)].conj()).arg();
            assert!((rel - 1.4).abs() < 1e-12, "relative phase {}", rel);
        }
    }

    #[test]
    #[should_panic(expected = "rows for")]
    fn receive_checks_chain_count() {
        let fe = FrontEnd::ideal(2);
        let x = CMat::zeros(3, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = fe.receive(&x, &mut rng);
    }
}
