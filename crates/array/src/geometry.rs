//! Antenna array geometries and steering vectors.
//!
//! The paper's prototype attaches eight antennas to two WARP boards "in
//! linear or circular arrangements. In the linear arrangement, they are
//! spaced at a half wavelength distance (6.13 cm). The circular
//! arrangement is actually an octagon with 4.7 cm sides and an antenna at
//! each corner." (§3). Both are modelled here as 2-D element position
//! sets; a steering vector evaluates the relative carrier phases a plane
//! wave from a given azimuth produces across the elements.
//!
//! Conventions (used consistently across the workspace):
//! * azimuth `φ` is measured counter-clockwise from the +x axis of the
//!   array's local frame, in radians, and denotes the direction *from
//!   which* the wave arrives;
//! * a linear array lies along the +x axis; its *broadside angle*
//!   `θ ∈ [−90°, 90°]` (the paper's Fig-1(c) bearing) relates to azimuth
//!   by `φ = 90° − θ`, and the array cannot distinguish `φ` from `−φ`
//!   (paper footnote 1 — clients on the two sides of the antenna line are
//!   not differentiable);
//! * a circular array resolves the full `[0°, 360°)`.

use sa_linalg::complex::C64;

/// Speed of light, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Default carrier frequency, Hz. Chosen so that half a wavelength is the
/// paper's quoted 6.13 cm linear spacing (the prototype's "2.4 GHz"
/// oscillators sit in the 2.4 GHz ISM band; 6.13 cm ⇒ 2.445 GHz).
pub const DEFAULT_CARRIER_HZ: f64 = 2.445e9;

/// The paper's WARP capture sample rate: 20 MHz of signal bandwidth.
pub const SAMPLE_RATE_HZ: f64 = 20.0e6;

/// Wavelength for a carrier frequency.
pub fn wavelength(carrier_hz: f64) -> f64 {
    SPEED_OF_LIGHT / carrier_hz
}

/// Shape classification of an array layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayKind {
    /// Elements on a line; ±sign ambiguity, scan range `[−90°, 90°]`
    /// broadside.
    Linear,
    /// Elements on a circle; full `[0°, 360°)` coverage.
    Circular,
}

/// An antenna array: element positions (meters, local frame) plus the
/// carrier the RF chains are tuned to.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    elements: Vec<(f64, f64)>,
    kind: ArrayKind,
    carrier_hz: f64,
}

impl Array {
    /// Uniform linear array of `n` elements along +x with the given
    /// spacing in meters, first element at the origin.
    pub fn ula(n: usize, spacing_m: f64, carrier_hz: f64) -> Self {
        assert!(n >= 1, "ula: need at least one element");
        Self {
            elements: (0..n).map(|m| (m as f64 * spacing_m, 0.0)).collect(),
            kind: ArrayKind::Linear,
            carrier_hz,
        }
    }

    /// The paper's linear arrangement: `n` elements at λ/2 spacing on the
    /// default carrier (6.13 cm).
    pub fn paper_linear(n: usize) -> Self {
        let lam = wavelength(DEFAULT_CARRIER_HZ);
        Self::ula(n, lam / 2.0, DEFAULT_CARRIER_HZ)
    }

    /// Uniform circular array of `n` elements with the given radius,
    /// element `k` at angle `2πk/n`.
    pub fn uca(n: usize, radius_m: f64, carrier_hz: f64) -> Self {
        assert!(n >= 2, "uca: need at least two elements");
        let elements = (0..n)
            .map(|k| {
                let g = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                (radius_m * g.cos(), radius_m * g.sin())
            })
            .collect();
        Self {
            elements,
            kind: ArrayKind::Circular,
            carrier_hz,
        }
    }

    /// The paper's circular arrangement: a regular octagon with 4.7 cm
    /// sides and an antenna at each corner (circumradius
    /// `s / (2·sin(π/8)) ≈ 6.14 cm`).
    pub fn paper_octagon() -> Self {
        let side = 0.047;
        let radius = side / (2.0 * (std::f64::consts::PI / 8.0).sin());
        Self::uca(8, radius, DEFAULT_CARRIER_HZ)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the array has no elements (never constructed that way, but
    /// required by the `len` convention).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Element positions in the local frame, meters.
    pub fn elements(&self) -> &[(f64, f64)] {
        &self.elements
    }

    /// Layout kind.
    pub fn kind(&self) -> ArrayKind {
        self.kind
    }

    /// Carrier frequency, Hz.
    pub fn carrier_hz(&self) -> f64 {
        self.carrier_hz
    }

    /// Carrier wavelength, meters.
    pub fn wavelength(&self) -> f64 {
        wavelength(self.carrier_hz)
    }

    /// Circumradius (0 for a single-element array).
    pub fn radius(&self) -> f64 {
        self.elements
            .iter()
            .map(|&(x, y)| x.hypot(y))
            .fold(0.0, f64::max)
    }

    /// Keep only the first `k` elements — the Fig-7 antenna-count
    /// experiment truncates the 8-antenna linear array to 2/4/6 elements.
    pub fn truncated(&self, k: usize) -> Self {
        assert!(k >= 1 && k <= self.len());
        Self {
            elements: self.elements[..k].to_vec(),
            kind: self.kind,
            carrier_hz: self.carrier_hz,
        }
    }

    /// Steering vector for a plane wave arriving from azimuth `az`
    /// (radians, local frame): element `m` gets phase
    /// `e^{+j·k·(p_m · u(az))}` where `u` is the unit vector pointing from
    /// the array toward the source and `k = 2π/λ`.
    ///
    /// Element 0 of a ULA sits at the origin so its phase is 1; all
    /// measured AoA phases are relative, matching the calibration
    /// convention (offsets measured "relative to antenna one", §2.2).
    pub fn steering(&self, az: f64) -> Vec<C64> {
        let k = 2.0 * std::f64::consts::PI / self.wavelength();
        let (ux, uy) = (az.cos(), az.sin());
        self.elements
            .iter()
            .map(|&(x, y)| C64::cis(k * (x * ux + y * uy)))
            .collect()
    }

    /// Steering vector in the paper's broadside convention for linear
    /// arrays: `θ ∈ [−π/2, π/2]`, `a_m = e^{jπ·m·sinθ}` at λ/2 spacing.
    pub fn steering_broadside(&self, theta: f64) -> Vec<C64> {
        self.steering(std::f64::consts::FRAC_PI_2 - theta)
    }

    /// Scan grid (azimuths in radians) appropriate for this geometry at
    /// the given step (degrees): linear arrays sweep broadside
    /// `[−90°, 90°]` mapped to azimuth; circular arrays sweep
    /// `[0°, 360°)`.
    pub fn scan_grid(&self, step_deg: f64) -> Vec<f64> {
        assert!(step_deg > 0.0);
        let step = step_deg.to_radians();
        match self.kind {
            ArrayKind::Linear => {
                // Broadside −90..=90 ⇒ azimuth 180..=0 (decreasing); emit
                // in increasing broadside order for presentation.
                let n = (std::f64::consts::PI / step).round() as usize;
                (0..=n)
                    .map(|i| {
                        let theta = -std::f64::consts::FRAC_PI_2 + i as f64 * step;
                        std::f64::consts::FRAC_PI_2 - theta
                    })
                    .collect()
            }
            ArrayKind::Circular => {
                let n = (2.0 * std::f64::consts::PI / step).round() as usize;
                (0..n).map(|i| i as f64 * step).collect()
            }
        }
    }
}

/// Convert a linear-array azimuth back to the paper's broadside angle in
/// degrees (`θ = 90° − az`).
pub fn azimuth_to_broadside_deg(az: f64) -> f64 {
    90.0 - az.to_degrees()
}

/// Convert a broadside angle in degrees to local-frame azimuth radians.
pub fn broadside_deg_to_azimuth(theta_deg: f64) -> f64 {
    (90.0 - theta_deg).to_radians()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn paper_constants() {
        let lam = wavelength(DEFAULT_CARRIER_HZ);
        assert!(
            (lam / 2.0 - 0.0613).abs() < 2e-4,
            "half wavelength {} should be ≈6.13 cm",
            lam / 2.0
        );
        let oct = Array::paper_octagon();
        assert_eq!(oct.len(), 8);
        assert!(
            (oct.radius() - 0.0614).abs() < 2e-4,
            "octagon circumradius {} should be ≈6.14 cm",
            oct.radius()
        );
        // kr ≈ 3.15 — drives the mode-space order h = 3.
        let kr = 2.0 * PI / oct.wavelength() * oct.radius();
        assert!((kr - 3.147).abs() < 0.01, "kr = {}", kr);
    }

    #[test]
    fn ula_positions() {
        let a = Array::ula(4, 0.05, 2.4e9);
        assert_eq!(a.len(), 4);
        assert_eq!(a.elements()[0], (0.0, 0.0));
        assert!((a.elements()[3].0 - 0.15).abs() < 1e-12);
        assert_eq!(a.kind(), ArrayKind::Linear);
    }

    #[test]
    fn octagon_side_lengths() {
        let oct = Array::paper_octagon();
        for k in 0..8 {
            let (x1, y1) = oct.elements()[k];
            let (x2, y2) = oct.elements()[(k + 1) % 8];
            let side = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
            assert!((side - 0.047).abs() < 1e-6, "side {} = {}", k, side);
        }
    }

    #[test]
    fn steering_is_unit_modulus() {
        let a = Array::paper_octagon();
        for i in 0..16 {
            let az = 2.0 * PI * i as f64 / 16.0;
            for z in a.steering(az) {
                assert!((z.abs() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_antenna_phase_matches_equation_one() {
        // Paper Fig 1(c)/Eq 1: at λ/2 spacing the inter-antenna phase
        // difference is π·sinθ for broadside bearing θ.
        let a = Array::paper_linear(2);
        for &theta in &[-1.2, -0.5, 0.0, 0.3, 1.0f64] {
            let s = a.steering_broadside(theta);
            let dphi = (s[1] * s[0].conj()).arg();
            let expect = PI * theta.sin();
            // Compare as wrapped phases.
            let diff = (dphi - expect + PI).rem_euclid(2.0 * PI) - PI;
            assert!(
                diff.abs() < 1e-10,
                "θ={}: Δφ={} expected {}",
                theta,
                dphi,
                expect
            );
        }
    }

    #[test]
    fn broadside_azimuth_roundtrip() {
        for &t in &[-80.0, -30.0, 0.0, 45.0, 89.0] {
            let az = broadside_deg_to_azimuth(t);
            assert!((azimuth_to_broadside_deg(az) - t).abs() < 1e-10);
        }
    }

    #[test]
    fn broadside_zero_is_plus_y() {
        let a = Array::paper_linear(3);
        let s = a.steering_broadside(0.0);
        // Wave from broadside hits all elements in phase.
        for z in &s {
            assert!(z.approx_eq(s[0], 1e-12));
        }
        // And that is azimuth 90°.
        let s2 = a.steering(FRAC_PI_2);
        for (x, y) in s.iter().zip(s2.iter()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn ula_front_back_ambiguity() {
        // Azimuth φ and −φ are indistinguishable for a linear array.
        let a = Array::paper_linear(8);
        let s1 = a.steering(0.7);
        let s2 = a.steering(-0.7);
        for (x, y) in s1.iter().zip(s2.iter()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn uca_has_no_front_back_ambiguity() {
        let a = Array::paper_octagon();
        let s1 = a.steering(0.7);
        let s2 = a.steering(-0.7);
        let dist: f64 = s1
            .iter()
            .zip(s2.iter())
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum();
        assert!(dist > 0.1, "UCA steering must differ front/back");
    }

    #[test]
    fn truncation_keeps_prefix() {
        let a = Array::paper_linear(8);
        let t = a.truncated(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.elements(), &a.elements()[..4]);
        assert_eq!(t.kind(), ArrayKind::Linear);
    }

    #[test]
    fn scan_grids() {
        let lin = Array::paper_linear(8);
        let g = lin.scan_grid(1.0);
        assert_eq!(g.len(), 181);
        // First entry is broadside −90°, i.e. azimuth 180°.
        assert!((g[0] - PI).abs() < 1e-9);
        let circ = Array::paper_octagon();
        let g = circ.scan_grid(1.0);
        assert_eq!(g.len(), 360);
        assert!((g[0] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn steering_relative_to_element_zero() {
        let a = Array::paper_linear(4);
        for &az in &[0.3, 1.0, 2.0] {
            assert!(a.steering(az)[0].approx_eq(sa_linalg::c64(1.0, 0.0), 1e-12));
        }
    }
}
