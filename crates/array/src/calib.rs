//! Array calibration from a shared reference tone (paper §2.2, Figure 2).
//!
//! "Our solution is to calibrate the array, measuring each phase offset
//! directly. The USRP2 … transmits a continuous 2.4 GHz carrier through a
//! 36 dB attenuator, which we split into eight signals and feed into the
//! radio front ends. Since each of the eight paths from the USRP2 to a
//! radio receiver is of equal length, the signals we measure … yield
//! seven relative phase offsets for antennas 2–8, relative to antenna one.
//! Subtracting these relative phase offsets from the incoming signals over
//! the air then cancels the unknown phase difference."
//!
//! [`Calibration::from_tone_capture`] is that measurement; the resulting
//! per-chain complex corrections are multiplied onto over-the-air samples
//! before any AoA processing. Gain imbalance is corrected at the same time
//! (it falls out of the same tone measurement for free and slightly
//! improves pseudospectrum floor depth).

use sa_linalg::complex::{C64, ZERO};
use sa_linalg::matrix::CMat;

/// Per-chain complex corrections that cancel the front end's unknown
/// phase offsets (and normalise gains) relative to chain 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    corrections: Vec<C64>,
}

impl Calibration {
    /// Identity calibration (all corrections = 1): what an uncalibrated
    /// AP effectively uses. The ablation experiment E8a runs the pipeline
    /// with this to reproduce the paper's claim that calibration is
    /// essential.
    pub fn identity(n: usize) -> Self {
        Self {
            corrections: vec![C64::new(1.0, 0.0); n],
        }
    }

    /// Estimate corrections from a tone capture (rows = chains, columns =
    /// samples of the shared calibration tone).
    ///
    /// For chain `m`, the relative response is measured as the averaged
    /// sample-wise ratio reference `⟨x_m[t]·x_0[t]*⟩`; the correction is
    /// its normalised inverse `|r̂|/r̂ · (optionally gain-normalised)`.
    /// Averaging over the capture suppresses chain noise; with the paper's
    /// continuous-carrier source a few hundred samples is ample.
    pub fn from_tone_capture(capture: &CMat) -> Self {
        let m = capture.rows();
        let n = capture.cols();
        assert!(n > 0, "from_tone_capture: empty capture");
        let mut corrections = Vec::with_capacity(m);
        // Reference chain power for gain normalisation.
        let p0: f64 = (0..n).map(|t| capture[(0, t)].norm_sqr()).sum::<f64>() / n as f64;
        for i in 0..m {
            let mut acc = ZERO;
            let mut pi = 0.0;
            for t in 0..n {
                acc += capture[(i, t)] * capture[(0, t)].conj();
                pi += capture[(i, t)].norm_sqr();
            }
            pi /= n as f64;
            // Phase of acc = chain i offset relative to chain 0;
            // gain ratio = sqrt(pi / p0).
            let phase = acc.arg();
            let gain = if p0 > 0.0 { (pi / p0).sqrt() } else { 1.0 };
            let gain = if gain > 0.0 { gain } else { 1.0 };
            corrections.push(C64::from_polar(1.0 / gain, -phase));
        }
        Self { corrections }
    }

    /// Number of chains this calibration covers.
    pub fn len(&self) -> usize {
        self.corrections.len()
    }

    /// True if the calibration covers zero chains.
    pub fn is_empty(&self) -> bool {
        self.corrections.is_empty()
    }

    /// The per-chain corrections.
    pub fn corrections(&self) -> &[C64] {
        &self.corrections
    }

    /// Apply the corrections to over-the-air samples in place
    /// (rows = chains).
    pub fn apply(&self, x: &mut CMat) {
        assert_eq!(
            x.rows(),
            self.corrections.len(),
            "Calibration::apply: {} rows for {} corrections",
            x.rows(),
            self.corrections.len()
        );
        for (i, &c) in self.corrections.iter().enumerate() {
            for t in 0..x.cols() {
                x[(i, t)] *= c;
            }
        }
    }

    /// Truncate to the first `k` chains (Fig-7 antenna-count experiment).
    pub fn truncated(&self, k: usize) -> Self {
        assert!(k >= 1 && k <= self.len());
        Self {
            corrections: self.corrections[..k].to_vec(),
        }
    }

    /// Residual phase error (radians) of each chain against a known front
    /// end — diagnostic for tests and the calibration-quality experiment.
    pub fn residual_phases(&self, fe: &crate::rf::FrontEnd) -> Vec<f64> {
        assert_eq!(self.len(), fe.len());
        // After correction, chain i's effective complex gain is
        // corrections[i] · g_i; residual relative phase vs chain 0:
        let eff: Vec<C64> = self
            .corrections
            .iter()
            .zip(fe.chains().iter())
            .map(|(&c, ch)| c * ch.complex_gain())
            .collect();
        eff.iter()
            .map(|&e| {
                let rel = e * eff[0].conj();
                rel.arg()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::{FrontEnd, RfChain};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sa_linalg::c64;

    fn skewed_front_end(noise_var: f64) -> FrontEnd {
        FrontEnd::from_chains(
            vec![
                RfChain {
                    phase_offset: 0.4,
                    gain: 1.00,
                },
                RfChain {
                    phase_offset: 2.9,
                    gain: 1.05,
                },
                RfChain {
                    phase_offset: 5.1,
                    gain: 0.97,
                },
                RfChain {
                    phase_offset: 1.3,
                    gain: 1.02,
                },
            ],
            noise_var,
        )
    }

    #[test]
    fn identity_calibration_is_noop() {
        let cal = Calibration::identity(3);
        let orig = CMat::from_fn(3, 4, |i, t| c64(i as f64, t as f64));
        let mut x = orig.clone();
        cal.apply(&mut x);
        assert!(x.approx_eq(&orig, 1e-14));
    }

    #[test]
    fn noiseless_tone_calibration_is_exact() {
        let fe = skewed_front_end(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let capture = fe.receive_calibration_tone(64, 1.0, &mut rng);
        let cal = Calibration::from_tone_capture(&capture);
        for (i, r) in cal.residual_phases(&fe).iter().enumerate() {
            assert!(r.abs() < 1e-10, "chain {} residual {}", i, r);
        }
    }

    #[test]
    fn noisy_tone_calibration_is_accurate() {
        // 36 dB attenuated tone at ~20 dB SNR into each chain.
        let fe = skewed_front_end(0.01);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let capture = fe.receive_calibration_tone(2048, 1.0, &mut rng);
        let cal = Calibration::from_tone_capture(&capture);
        for (i, r) in cal.residual_phases(&fe).iter().enumerate() {
            assert!(r.abs() < 0.02, "chain {} residual {} rad too large", i, r);
        }
    }

    #[test]
    fn applied_calibration_restores_steering_phases() {
        // A plane-wave snapshot through a skewed front end, then
        // calibrated, must match the ideal-front-end snapshot up to a
        // common rotation.
        use crate::geometry::Array;
        let array = Array::paper_linear(4);
        let steer = array.steering_broadside(0.5);
        let clean = CMat::from_fn(4, 8, |i, t| steer[i] * C64::cis(0.3 * t as f64));

        let fe = skewed_front_end(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let capture = fe.receive_calibration_tone(64, 1.0, &mut rng);
        let cal = Calibration::from_tone_capture(&capture);

        let mut rx = fe.receive(&clean, &mut rng);
        cal.apply(&mut rx);

        // Compare inter-antenna relative phases (common rotation cancels).
        for t in 0..8 {
            for i in 1..4 {
                let got = (rx[(i, t)] * rx[(0, t)].conj()).arg();
                let want = (clean[(i, t)] * clean[(0, t)].conj()).arg();
                let diff = (got - want + std::f64::consts::PI)
                    .rem_euclid(2.0 * std::f64::consts::PI)
                    - std::f64::consts::PI;
                assert!(diff.abs() < 1e-9, "t={} i={} diff={}", t, i, diff);
            }
        }
    }

    #[test]
    fn gain_normalisation() {
        let fe = skewed_front_end(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let capture = fe.receive_calibration_tone(64, 1.0, &mut rng);
        let cal = Calibration::from_tone_capture(&capture);
        // corrected gain = |correction| * chain gain == chain0 gain (1.0)
        for (c, ch) in cal.corrections().iter().zip(fe.chains()) {
            assert!((c.abs() * ch.gain - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn truncated_calibration() {
        let cal = Calibration::identity(8);
        assert_eq!(cal.truncated(3).len(), 3);
    }

    #[test]
    #[should_panic(expected = "rows for")]
    fn apply_checks_dimensions() {
        let cal = Calibration::identity(2);
        let mut x = CMat::zeros(3, 1);
        cal.apply(&mut x);
    }
}
