//! Davies phase-mode transform: circular array → virtual linear array.
//!
//! Spatial smoothing (needed because multipath components of one packet
//! are fully coherent) requires a Vandermonde array manifold, which a
//! circular array does not have. The classical fix — used by beamspace
//! UCA-MUSIC — is the Davies transformation: project the `N` physical
//! elements onto azimuthal *phase modes* `m = −h..h`. By the Jacobi–Anger
//! expansion, mode `m` of a unit plane wave from azimuth `φ` responds as
//! `jᵐ·J_m(kr)·e^{jmφ}` (plus aliased orders `m ± N`, negligible while
//! `2h + 1 ≤ N` and `J_{|m±N|}(kr)` is small). Dividing by the known
//! coefficient `jᵐ·J_m(kr)` leaves the Vandermonde response `e^{jmφ}` —
//! exactly a virtual ULA whose "spatial frequency" is the azimuth itself,
//! with no front/back ambiguity. Forward–backward averaging and spatial
//! smoothing then apply verbatim.
//!
//! For the paper's octagon, `kr ≈ 3.15`, so `h = 3` and the virtual array
//! has 7 elements.
//!
//! Noise note: the mode rows are mutually orthogonal (`F·F^H = I/N`), so
//! transformed noise stays uncorrelated across virtual elements; the
//! `1/J_m` scaling does make its variance mode-dependent (at most ~3×
//! spread for this geometry), a known, benign property of unweighted
//! beamspace MUSIC.

use crate::geometry::{Array, ArrayKind};
use sa_linalg::bessel::bessel_j_int;
use sa_linalg::complex::C64;
use sa_linalg::matrix::CMat;

/// Precomputed phase-mode transform for one circular array.
#[derive(Debug, Clone)]
pub struct ModeSpace {
    t: CMat,
    /// Cached `T^H` — [`ModeSpace::transform_cov`] runs once per packet
    /// per AP, so the conjugate transpose is built once here instead.
    th: CMat,
    h: i32,
}

impl ModeSpace {
    /// Build the transform for a circular array.
    ///
    /// Panics if the array is not circular, or if its electrical size is
    /// too small to support even one mode (`⌊kr⌋ = 0`).
    pub fn for_array(array: &Array) -> Self {
        assert_eq!(
            array.kind(),
            ArrayKind::Circular,
            "ModeSpace: phase modes require a circular array"
        );
        let n = array.len();
        let kr = 2.0 * std::f64::consts::PI / array.wavelength() * array.radius();
        let mut h = kr.floor() as i32;
        // Highest mode must still be excitable and unaliased.
        while 2 * h + 1 > n as i32 {
            h -= 1;
        }
        assert!(h >= 1, "ModeSpace: array too small (kr = {:.3})", kr);

        // T row for mode m: (1 / (N·jᵐ·J_m(kr))) · [e^{jm·γ_0}, …].
        let rows = (2 * h + 1) as usize;
        let t = CMat::from_fn(rows, n, |mi, k| {
            let m = mi as i32 - h;
            let gamma = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let jm = C64::cis(std::f64::consts::FRAC_PI_2 * m as f64); // jᵐ
            let coef = jm.scale(bessel_j_int(m, kr) * n as f64);
            C64::cis(m as f64 * gamma) / coef
        });
        let th = t.hermitian();
        Self { t, th, h }
    }

    /// Maximum mode order `h`.
    pub fn order(&self) -> i32 {
        self.h
    }

    /// Number of virtual elements, `2h + 1`.
    pub fn virtual_len(&self) -> usize {
        (2 * self.h + 1) as usize
    }

    /// The transform matrix (`virtual_len × physical_len`).
    pub fn matrix(&self) -> &CMat {
        &self.t
    }

    /// Transform physical snapshots (rows = physical antennas) into
    /// mode-space snapshots (rows = virtual elements).
    pub fn transform(&self, x: &CMat) -> CMat {
        self.t.matmul(x)
    }

    /// Transform a physical covariance: `R_v = T·R·T^H`.
    pub fn transform_cov(&self, r: &CMat) -> CMat {
        let mut tmp = CMat::default();
        let mut out = CMat::default();
        self.transform_cov_into(r, &mut tmp, &mut out);
        out
    }

    /// [`ModeSpace::transform_cov`] through caller-provided scratch and
    /// output matrices, reusing both allocations — the per-packet hot
    /// path of `sa_aoa::estimator::AoaEngine`.
    ///
    /// For Hermitian `R` the result is Hermitian, so only the upper
    /// triangle of the second product is computed and the lower is
    /// mirrored (making the output *exactly* Hermitian instead of
    /// Hermitian-to-round-off).
    pub fn transform_cov_into(&self, r: &CMat, tmp: &mut CMat, out: &mut CMat) {
        self.t.matmul_into(r, tmp);
        let v = self.virtual_len();
        out.reset_zero(v, v);
        for i in 0..v {
            for k in 0..tmp.cols() {
                let a = tmp[(i, k)];
                for j in i..v {
                    out[(i, j)] += a * self.th[(k, j)];
                }
            }
            out[(i, i)] = sa_linalg::c64(out[(i, i)].re, 0.0);
            for j in i + 1..v {
                out[(j, i)] = out[(i, j)].conj();
            }
        }
    }

    /// Virtual-array steering vector: `v_m(φ) = e^{jmφ}`, `m = −h..h`.
    pub fn steering(&self, az: f64) -> Vec<C64> {
        (-self.h..=self.h)
            .map(|m| C64::cis(m as f64 * az))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_linalg::matrix::{vdot, vnorm};
    use std::f64::consts::PI;

    fn octagon_modespace() -> (Array, ModeSpace) {
        let a = Array::paper_octagon();
        let ms = ModeSpace::for_array(&a);
        (a, ms)
    }

    #[test]
    fn paper_octagon_has_order_three() {
        let (_, ms) = octagon_modespace();
        assert_eq!(ms.order(), 3);
        assert_eq!(ms.virtual_len(), 7);
        assert_eq!(ms.matrix().rows(), 7);
        assert_eq!(ms.matrix().cols(), 8);
    }

    #[test]
    fn transformed_steering_matches_vandermonde() {
        // T·a(φ) should align with v(φ) = [e^{jmφ}] to high correlation;
        // the residual comes from aliased modes |m ± 8|.
        let (a, ms) = octagon_modespace();
        for i in 0..24 {
            let az = 2.0 * PI * i as f64 / 24.0;
            let ta = ms.transform(&CMat::col_vector(&a.steering(az)));
            let ta: Vec<_> = (0..ta.rows()).map(|r| ta[(r, 0)]).collect();
            let v = ms.steering(az);
            let corr = vdot(&v, &ta).abs() / (vnorm(&v) * vnorm(&ta));
            assert!(
                corr > 0.97,
                "azimuth {:.2}: mode-space correlation {:.4} too low",
                az,
                corr
            );
        }
    }

    #[test]
    fn virtual_manifold_is_vandermonde() {
        // Consecutive-element ratio of v(φ) is exactly e^{jφ}.
        let (_, ms) = octagon_modespace();
        let az = 1.234;
        let v = ms.steering(az);
        for w in v.windows(2) {
            let ratio = w[1] * w[0].conj();
            assert!((ratio.arg() - az).abs() < 1e-12);
            assert!((ratio.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mode_rows_are_orthogonal() {
        // F rows orthogonal ⇒ T·T^H diagonal (mode-dependent variances).
        let (_, ms) = octagon_modespace();
        let tt = ms.matrix().matmul(&ms.matrix().hermitian());
        for i in 0..tt.rows() {
            for j in 0..tt.cols() {
                if i != j {
                    assert!(
                        tt[(i, j)].abs() < 1e-12,
                        "off-diagonal ({}, {}) = {}",
                        i,
                        j,
                        tt[(i, j)].abs()
                    );
                }
            }
        }
    }

    #[test]
    fn noise_variance_spread_is_bounded() {
        let (_, ms) = octagon_modespace();
        let tt = ms.matrix().matmul(&ms.matrix().hermitian());
        let diag: Vec<f64> = (0..tt.rows()).map(|i| tt[(i, i)].re).collect();
        let max = diag.iter().cloned().fold(0.0, f64::max);
        let min = diag.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 5.0,
            "mode noise spread {}x too large (diag {:?})",
            max / min,
            diag
        );
    }

    #[test]
    fn transform_cov_dimensions_and_hermitian() {
        let (a, ms) = octagon_modespace();
        let s = a.steering(0.9);
        let r = CMat::outer(&s, &s);
        let rv = ms.transform_cov(&r);
        assert_eq!(rv.rows(), 7);
        assert!(rv.is_hermitian(1e-10));
    }

    #[test]
    #[should_panic(expected = "circular array")]
    fn rejects_linear_arrays() {
        let a = Array::paper_linear(8);
        let _ = ModeSpace::for_array(&a);
    }

    #[test]
    fn distinct_azimuths_have_distinct_virtual_steering() {
        let (_, ms) = octagon_modespace();
        let v1 = ms.steering(0.5);
        let v2 = ms.steering(2.5);
        let corr = vdot(&v1, &v2).abs() / (vnorm(&v1) * vnorm(&v2));
        assert!(corr < 0.7, "correlation {} too high", corr);
    }
}
