//! # sa-array — antenna arrays, RF front ends and calibration
//!
//! The software substitute for the paper's WARP + USRP2 hardware
//! (see `docs/ARCHITECTURE.md` for where it sits in the crate DAG):
//!
//! * [`geometry`] — the paper's two layouts (λ/2-spaced linear array and
//!   the 4.7 cm-side octagon), steering vectors, scan grids;
//! * [`rf`] — per-chain unknown phase offsets, gain imbalance and thermal
//!   noise: the impairments that make calibration necessary;
//! * [`calib`] — reference-tone calibration reproducing §2.2/Figure 2;
//! * [`modespace`] — Davies phase-mode transform mapping the circular
//!   array onto a virtual ULA so spatial smoothing can decorrelate
//!   multipath.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod geometry;
pub mod modespace;
pub mod rf;

pub use calib::Calibration;
pub use geometry::{Array, ArrayKind, DEFAULT_CARRIER_HZ, SAMPLE_RATE_HZ};
pub use modespace::ModeSpace;
pub use rf::{FrontEnd, RfChain};
