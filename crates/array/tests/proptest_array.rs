//! Property-based tests for array geometry, RF impairments and
//! calibration.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_array::calib::Calibration;
use sa_array::geometry::{azimuth_to_broadside_deg, broadside_deg_to_azimuth, Array};
use sa_array::modespace::ModeSpace;
use sa_array::rf::{FrontEnd, RfChain};
use sa_linalg::matrix::{vdot, vnorm};
use sa_linalg::CMat;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn steering_element_zero_is_unity_for_ula(az in -7.0f64..7.0, n in 1usize..12) {
        let a = Array::paper_linear(n);
        let s = a.steering(az);
        prop_assert!(s[0].approx_eq(sa_linalg::c64(1.0, 0.0), 1e-12));
        prop_assert_eq!(s.len(), n);
    }

    #[test]
    fn broadside_conversion_roundtrip(theta in -89.0f64..89.0) {
        let az = broadside_deg_to_azimuth(theta);
        prop_assert!((azimuth_to_broadside_deg(az) - theta).abs() < 1e-9);
    }

    #[test]
    fn truncation_is_steering_prefix(az in -7.0f64..7.0, n in 2usize..10, k in 1usize..9) {
        prop_assume!(k <= n);
        let a = Array::paper_linear(n);
        let t = a.truncated(k);
        let full = a.steering(az);
        let trunc = t.steering(az);
        for i in 0..k {
            prop_assert!(full[i].approx_eq(trunc[i], 1e-12));
        }
    }

    #[test]
    fn uca_steering_is_rotation_equivariant(az in 0.0f64..std::f64::consts::TAU, k_rot in 0usize..8) {
        // Rotating the arrival by one element spacing permutes the
        // octagon's steering entries.
        let a = Array::paper_octagon();
        let step = 2.0 * std::f64::consts::PI / 8.0;
        let s0 = a.steering(az);
        let s1 = a.steering(az + k_rot as f64 * step);
        for (i, z) in s1.iter().enumerate() {
            let j = (i + 8 - k_rot % 8) % 8;
            prop_assert!(z.approx_eq(s0[j], 1e-9), "i={} j={}", i, j);
        }
    }

    #[test]
    fn calibration_cancels_any_front_end(seed in 0u64..2000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fe = FrontEnd::random(6, 0.0, &mut rng); // noiseless tone
        let capture = fe.receive_calibration_tone(64, 1.0, &mut rng);
        let cal = Calibration::from_tone_capture(&capture);
        for r in cal.residual_phases(&fe) {
            prop_assert!(r.abs() < 1e-9, "residual {}", r);
        }
    }

    #[test]
    fn calibrated_front_end_preserves_relative_phases(
        seed in 0u64..500,
        az in -7.0f64..7.0,
    ) {
        let array = Array::paper_octagon();
        let steer = array.steering(az);
        let clean = CMat::from_fn(8, 4, |m, t| steer[m] * sa_linalg::C64::cis(0.4 * t as f64));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fe = FrontEnd::random(8, 0.0, &mut rng);
        let cal = Calibration::from_tone_capture(&fe.receive_calibration_tone(64, 1.0, &mut rng));
        let mut rx = fe.receive(&clean, &mut rng);
        cal.apply(&mut rx);
        for t in 0..4 {
            for m in 1..8 {
                let got = (rx[(m, t)] * rx[(0, t)].conj()).arg();
                let want = (clean[(m, t)] * clean[(0, t)].conj()).arg();
                let d = (got - want + std::f64::consts::PI)
                    .rem_euclid(2.0 * std::f64::consts::PI)
                    - std::f64::consts::PI;
                prop_assert!(d.abs() < 1e-6, "m={} t={} d={}", m, t, d);
            }
        }
    }

    #[test]
    fn chain_gain_is_polar_decomposition(phase in -7.0f64..7.0, gain in 0.1f64..3.0) {
        let c = RfChain { phase_offset: phase, gain };
        let g = c.complex_gain();
        prop_assert!((g.abs() - gain).abs() < 1e-12);
        // Phase compared modulo 2π.
        let d = (g.arg() - phase).rem_euclid(2.0 * std::f64::consts::PI);
        prop_assert!(d < 1e-9 || (2.0 * std::f64::consts::PI - d) < 1e-9);
    }

    #[test]
    fn modespace_transform_is_linear(az1 in 0.0f64..std::f64::consts::TAU, az2 in 0.0f64..std::f64::consts::TAU) {
        let array = Array::paper_octagon();
        let ms = ModeSpace::for_array(&array);
        let a = CMat::col_vector(&array.steering(az1));
        let b = CMat::col_vector(&array.steering(az2));
        let sum = &a + &b;
        let ta = ms.transform(&a);
        let tb = ms.transform(&b);
        let tsum = ms.transform(&sum);
        let expect = &ta + &tb;
        prop_assert!(tsum.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn virtual_steering_correlates_with_transformed_physical(az in 0.0f64..std::f64::consts::TAU) {
        let array = Array::paper_octagon();
        let ms = ModeSpace::for_array(&array);
        let ta = ms.transform(&CMat::col_vector(&array.steering(az)));
        let ta: Vec<_> = (0..ta.rows()).map(|r| ta[(r, 0)]).collect();
        let v = ms.steering(az);
        let corr = vdot(&v, &ta).abs() / (vnorm(&v) * vnorm(&ta));
        prop_assert!(corr > 0.95, "correlation {} at az {}", corr, az);
    }
}
