//! Property-based tests for the geometric channel layer.

use proptest::prelude::*;
use sa_channel::geom::{point_in_polygon, pt, seg, Point, Rect, Segment};
use sa_channel::pattern::TxAntenna;
use sa_channel::plan::{FloorPlan, CONCRETE, DRYWALL};
use sa_channel::trace::{trace_paths, PathKind, TraceConfig};

fn any_point() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| pt(x, y))
}

fn any_segment() -> impl Strategy<Value = Segment> {
    (any_point(), any_point())
        .prop_filter("non-degenerate", |(a, b)| a.dist(*b) > 0.1)
        .prop_map(|(a, b)| seg(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- geometry ----------------

    #[test]
    fn mirror_is_involutive_and_isometric(w in any_segment(), p in any_point(), q in any_point()) {
        let mm = w.mirror(w.mirror(p));
        prop_assert!(mm.dist(p) < 1e-6);
        // Mirroring preserves pairwise distances.
        let d0 = p.dist(q);
        let d1 = w.mirror(p).dist(w.mirror(q));
        prop_assert!((d0 - d1).abs() < 1e-6 * d0.max(1.0));
    }

    #[test]
    fn intersection_is_symmetric(a in any_segment(), b in any_segment()) {
        let ab = a.intersect(&b, false);
        let ba = b.intersect(&a, false);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(i), Some(j)) = (ab, ba) {
            prop_assert!(i.point.dist(j.point) < 1e-6);
        }
    }

    #[test]
    fn rect_contains_its_centre_and_not_far_points(
        x0 in -20.0f64..20.0, y0 in -20.0f64..20.0,
        w in 0.5f64..20.0, h in 0.5f64..20.0,
    ) {
        let r = Rect::new(x0, y0, x0 + w, y0 + h);
        prop_assert!(r.contains(pt(x0 + w / 2.0, y0 + h / 2.0)));
        prop_assert!(!r.contains(pt(x0 - 1.0, y0)));
        prop_assert!(!r.contains(pt(x0, y0 + h + 1.0)));
        // Edges form a closed loop of total length 2(w+h).
        let perim: f64 = r.edges().iter().map(|e| e.len()).sum();
        prop_assert!((perim - 2.0 * (w + h)).abs() < 1e-9);
    }

    #[test]
    fn convex_polygon_contains_centroid(
        cx in -10.0f64..10.0, cy in -10.0f64..10.0, r in 1.0f64..10.0, n in 3usize..10,
    ) {
        // A regular n-gon contains its centre.
        let poly: Vec<Point> = (0..n)
            .map(|k| {
                let th = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                pt(cx + r * th.cos(), cy + r * th.sin())
            })
            .collect();
        prop_assert!(point_in_polygon(pt(cx, cy), &poly));
        prop_assert!(!point_in_polygon(pt(cx + 2.0 * r, cy), &poly));
    }

    // ---------------- patterns ----------------

    #[test]
    fn directional_pattern_bounded_by_boost(aim in -3.0f64..3.0, az in -7.0f64..7.0, dbi in 0.0f64..20.0, order in 0.5f64..8.0) {
        let a = TxAntenna::directional_dbi(aim, dbi, order);
        let g = a.power_gain(az);
        prop_assert!(g >= 0.0);
        prop_assert!(g <= 10f64.powf(dbi / 10.0) * (1.0 + 1e-9));
        // Boresight is the max.
        prop_assert!(g <= a.power_gain(aim) + 1e-9);
    }

    // ---------------- ray tracing ----------------

    #[test]
    fn paths_sorted_strongest_first(tx in any_point(), rx in any_point(), wy in -30.0f64..30.0) {
        prop_assume!(tx.dist(rx) > 0.5);
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(-60.0, wy), pt(60.0, wy)), CONCRETE);
        plan.add_wall(seg(pt(-60.0, wy + 8.0), pt(60.0, wy + 8.0)), DRYWALL);
        let paths = trace_paths(&plan, tx, rx, &TraceConfig::default());
        // First entry strongest (kept sorted).
        for w in paths.windows(2) {
            // Direct is force-kept, so only require sortedness among
            // equal kinds when direct isn't involved.
            if w[0].kind != PathKind::Direct && w[1].kind != PathKind::Direct {
                prop_assert!(w[0].gain.norm_sqr() >= w[1].gain.norm_sqr() - 1e-18);
            }
        }
        // Exactly one direct path.
        prop_assert_eq!(paths.iter().filter(|p| p.kind == PathKind::Direct).count(), 1);
    }

    #[test]
    fn arrival_azimuths_are_finite_and_delays_positive(tx in any_point(), rx in any_point()) {
        prop_assume!(tx.dist(rx) > 0.5);
        let mut plan = FloorPlan::new();
        plan.add_rect(Rect::new(-40.0, -40.0, 40.0, 40.0), CONCRETE);
        let paths = trace_paths(&plan, tx, rx, &TraceConfig::default());
        for p in &paths {
            prop_assert!(p.arrival_az.is_finite());
            prop_assert!(p.departure_az.is_finite());
            prop_assert!(p.delay_s > 0.0);
            prop_assert!(p.gain.is_finite());
            prop_assert!(p.gain.abs() > 0.0);
        }
    }

    #[test]
    fn reciprocity_of_direct_path(tx in any_point(), rx in any_point()) {
        prop_assume!(tx.dist(rx) > 0.5);
        let plan = FloorPlan::new();
        let ab = trace_paths(&plan, tx, rx, &TraceConfig::default());
        let ba = trace_paths(&plan, rx, tx, &TraceConfig::default());
        // Same gain magnitude and length both ways.
        prop_assert!((ab[0].gain.abs() - ba[0].gain.abs()).abs() < 1e-12);
        prop_assert!((ab[0].length - ba[0].length).abs() < 1e-12);
        // Arrival azimuth one way is departure azimuth the other way.
        let d = (ab[0].arrival_az - ba[0].departure_az).rem_euclid(2.0 * std::f64::consts::PI);
        prop_assert!(d < 1e-9 || (2.0 * std::f64::consts::PI - d) < 1e-9);
    }

    // ---------------- temporal model ----------------

    #[test]
    fn evolution_is_deterministic_and_direct_survives(dt in 0.0f64..1e6, seed in 0u64..500) {
        use rand::SeedableRng;
        use sa_channel::temporal::TemporalModel;
        let plan = {
            let mut p = FloorPlan::new();
            p.add_rect(Rect::new(-10.0, -10.0, 10.0, 10.0), CONCRETE);
            p
        };
        let paths = trace_paths(&plan, pt(3.0, 2.0), pt(-4.0, -1.0), &TraceConfig::default());
        let model = TemporalModel::default();
        let a = model.evolve(&paths, dt, &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        let b = model.evolve(&paths, dt, &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.iter().filter(|p| p.kind == PathKind::Direct).count(), 1);
    }
}
