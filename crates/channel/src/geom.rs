//! 2-D geometry primitives for the indoor propagation model.
//!
//! The evaluation floor plan (paper Fig 4) is two-dimensional — the
//! paper's bearings are azimuth-only — so points, segments, mirror
//! images (for the image-method ray tracer) and segment intersections
//! are all we need.

/// A point (or vector) in the plan, meters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// x coordinate, meters.
    pub x: f64,
    /// y coordinate, meters.
    pub y: f64,
}

/// Shorthand constructor.
pub const fn pt(x: f64, y: f64) -> Point {
    Point { x, y }
}

impl Point {
    /// Euclidean distance to another point.
    pub fn dist(&self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Azimuth (radians, CCW from +x) of the direction from `self`
    /// toward `other`.
    pub fn azimuth_to(&self, other: Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// Component-wise subtraction as a vector.
    pub fn sub(&self, other: Point) -> Point {
        pt(self.x - other.x, self.y - other.y)
    }

    /// Dot product, treating points as vectors.
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component).
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }
}

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

/// Shorthand constructor.
pub const fn seg(a: Point, b: Point) -> Segment {
    Segment { a, b }
}

/// Result of a proper segment–segment intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intersection {
    /// The intersection point.
    pub point: Point,
    /// Parameter along the first segment, `0..=1`.
    pub t: f64,
    /// Parameter along the second segment, `0..=1`.
    pub u: f64,
}

impl Segment {
    /// Segment length.
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// True for zero-length (degenerate) segments.
    pub fn is_degenerate(&self) -> bool {
        self.len() < 1e-12
    }

    /// Midpoint.
    pub fn midpoint(&self) -> Point {
        pt((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)
    }

    /// Mirror a point across the infinite line through this segment —
    /// the image-source construction of the ray tracer.
    pub fn mirror(&self, p: Point) -> Point {
        let d = self.b.sub(self.a);
        let len2 = d.dot(d);
        debug_assert!(len2 > 1e-24, "mirror across degenerate segment");
        let ap = p.sub(self.a);
        let t = ap.dot(d) / len2;
        let foot = pt(self.a.x + t * d.x, self.a.y + t * d.y);
        pt(2.0 * foot.x - p.x, 2.0 * foot.y - p.y)
    }

    /// Intersection with another segment, if the segments properly cross
    /// (both parameters strictly inside `(eps, 1 − eps)` unless
    /// `inclusive`). Parallel/collinear pairs return `None`.
    pub fn intersect(&self, other: &Segment, inclusive: bool) -> Option<Intersection> {
        let r = self.b.sub(self.a);
        let s = other.b.sub(other.a);
        let denom = r.cross(s);
        if denom.abs() < 1e-15 {
            return None; // parallel or collinear
        }
        let qp = other.a.sub(self.a);
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let eps = 1e-9;
        let (lo, hi) = if inclusive {
            (-eps, 1.0 + eps)
        } else {
            (eps, 1.0 - eps)
        };
        if t >= lo && t <= hi && u >= lo && u <= hi {
            Some(Intersection {
                point: pt(self.a.x + t * r.x, self.a.y + t * r.y),
                t,
                u,
            })
        } else {
            None
        }
    }

    /// Which side of the (directed) line a→b the point lies on:
    /// positive = left, negative = right, ~0 = on the line.
    pub fn side(&self, p: Point) -> f64 {
        self.b.sub(self.a).cross(p.sub(self.a))
    }
}

/// A closed axis-aligned rectangle, used for fence regions and obstacle
/// outlines.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Construct from corner coordinates (any order).
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self {
            min: pt(x0.min(x1), y0.min(y1)),
            max: pt(x0.max(x1), y0.max(y1)),
        }
    }

    /// True if the point is inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The four edges, counter-clockwise from the bottom edge.
    pub fn edges(&self) -> [Segment; 4] {
        let Rect { min, max } = *self;
        [
            seg(pt(min.x, min.y), pt(max.x, min.y)),
            seg(pt(max.x, min.y), pt(max.x, max.y)),
            seg(pt(max.x, max.y), pt(min.x, max.y)),
            seg(pt(min.x, max.y), pt(min.x, min.y)),
        ]
    }
}

/// Point-in-polygon by ray casting (even–odd rule). Vertices in order
/// (either winding); the polygon closes itself.
pub fn point_in_polygon(p: Point, vertices: &[Point]) -> bool {
    let n = vertices.len();
    if n < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let (vi, vj) = (vertices[i], vertices[j]);
        if ((vi.y > p.y) != (vj.y > p.y))
            && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_and_azimuths() {
        assert!((pt(0.0, 0.0).dist(pt(3.0, 4.0)) - 5.0).abs() < 1e-12);
        assert!((pt(0.0, 0.0).azimuth_to(pt(1.0, 0.0))).abs() < 1e-12);
        assert!(
            (pt(0.0, 0.0).azimuth_to(pt(0.0, 2.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12
        );
        assert!(
            (pt(1.0, 1.0).azimuth_to(pt(0.0, 0.0)) + 3.0 * std::f64::consts::FRAC_PI_4).abs()
                < 1e-12
        );
    }

    #[test]
    fn mirror_across_axes() {
        let x_axis = seg(pt(0.0, 0.0), pt(10.0, 0.0));
        let m = x_axis.mirror(pt(3.0, 4.0));
        assert!((m.x - 3.0).abs() < 1e-12 && (m.y + 4.0).abs() < 1e-12);

        let diag = seg(pt(0.0, 0.0), pt(1.0, 1.0));
        let m = diag.mirror(pt(2.0, 0.0));
        assert!((m.x - 0.0).abs() < 1e-12 && (m.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mirror_is_involution() {
        let w = seg(pt(1.0, -2.0), pt(4.0, 5.0));
        let p = pt(-3.0, 2.5);
        let mm = w.mirror(w.mirror(p));
        assert!(p.dist(mm) < 1e-12);
    }

    #[test]
    fn mirror_point_on_line_is_fixed() {
        let w = seg(pt(0.0, 0.0), pt(2.0, 2.0));
        let p = pt(1.0, 1.0);
        assert!(w.mirror(p).dist(p) < 1e-12);
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = seg(pt(0.0, 0.0), pt(2.0, 2.0));
        let b = seg(pt(0.0, 2.0), pt(2.0, 0.0));
        let i = a.intersect(&b, false).expect("must cross");
        assert!(i.point.dist(pt(1.0, 1.0)) < 1e-12);
        assert!((i.t - 0.5).abs() < 1e-12);
        assert!((i.u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let a = seg(pt(0.0, 0.0), pt(2.0, 0.0));
        let b = seg(pt(0.0, 1.0), pt(2.0, 1.0));
        assert!(a.intersect(&b, true).is_none());
    }

    #[test]
    fn touching_at_endpoint_depends_on_inclusive() {
        let a = seg(pt(0.0, 0.0), pt(1.0, 1.0));
        let b = seg(pt(1.0, 1.0), pt(2.0, 0.0));
        assert!(a.intersect(&b, false).is_none());
        assert!(a.intersect(&b, true).is_some());
    }

    #[test]
    fn near_miss_does_not_intersect() {
        let a = seg(pt(0.0, 0.0), pt(1.0, 0.0));
        let b = seg(pt(0.5, 0.1), pt(0.5, 1.0));
        assert!(a.intersect(&b, true).is_none());
    }

    #[test]
    fn rect_contains_and_edges() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        assert!(r.contains(pt(1.0, 1.0)));
        assert!(r.contains(pt(0.0, 0.0)));
        assert!(!r.contains(pt(-0.1, 1.0)));
        assert!(!r.contains(pt(1.0, 2.1)));
        let edges = r.edges();
        assert_eq!(edges.len(), 4);
        let perimeter: f64 = edges.iter().map(|e| e.len()).sum();
        assert!((perimeter - 12.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_containment() {
        // L-shaped polygon.
        let poly = [
            pt(0.0, 0.0),
            pt(4.0, 0.0),
            pt(4.0, 2.0),
            pt(2.0, 2.0),
            pt(2.0, 4.0),
            pt(0.0, 4.0),
        ];
        assert!(point_in_polygon(pt(1.0, 1.0), &poly));
        assert!(point_in_polygon(pt(3.0, 1.0), &poly));
        assert!(point_in_polygon(pt(1.0, 3.0), &poly));
        assert!(!point_in_polygon(pt(3.0, 3.0), &poly)); // the notch
        assert!(!point_in_polygon(pt(-1.0, 1.0), &poly));
        assert!(!point_in_polygon(pt(5.0, 5.0), &poly));
    }

    #[test]
    fn degenerate_polygon_is_empty() {
        assert!(!point_in_polygon(pt(0.0, 0.0), &[]));
        assert!(!point_in_polygon(
            pt(0.0, 0.0),
            &[pt(1.0, 1.0), pt(2.0, 2.0)]
        ));
    }

    #[test]
    fn side_sign_convention() {
        let s = seg(pt(0.0, 0.0), pt(1.0, 0.0));
        assert!(s.side(pt(0.5, 1.0)) > 0.0); // left
        assert!(s.side(pt(0.5, -1.0)) < 0.0); // right
        assert!(s.side(pt(0.5, 0.0)).abs() < 1e-12);
    }
}
