//! # sa-channel — geometric indoor multipath simulation
//!
//! The software substitute for the paper's office testbed (see
//! `docs/ARCHITECTURE.md` for where it sits in the crate DAG):
//!
//! * [`geom`] — 2-D points/segments/polygons, mirror images;
//! * [`plan`] — floor plans: walls with reflection/transmission materials;
//! * [`trace`] — image-method ray tracing (direct + 1st/2nd-order
//!   specular reflections, through-wall attenuation, Friis spreading,
//!   carrier phase);
//! * [`pattern`] — transmit antenna patterns (omni / directional — the
//!   paper's attacker equipment);
//! * [`temporal`] — Gauss–Markov evolution of path gains between captures
//!   (Fig 6's "direct peak stable, reflections wander");
//! * [`apply`] — paths × array × waveform → per-antenna IQ snapshots.
//!
//! All randomness flows through caller-provided RNGs; a seed fully
//! determines every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod geom;
pub mod pattern;
pub mod plan;
pub mod temporal;
pub mod trace;

pub use apply::{apply_channel, ApplyConfig, ChannelOutput};
pub use geom::{pt, Point, Rect, Segment};
pub use pattern::TxAntenna;
pub use plan::{FloorPlan, Material, Wall, CONCRETE, DRYWALL, GLASS, METAL};
pub use temporal::TemporalModel;
pub use trace::{trace_paths, Path, PathKind, TraceConfig};
