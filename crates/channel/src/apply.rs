//! Channel application: traced paths × antenna array × waveform →
//! per-antenna IQ snapshots.
//!
//! The narrowband-per-path decomposition standard in array processing:
//! each path contributes `g_p · a(az_p) · s(t − τ_p)` where `a` is the
//! array steering vector at the path's arrival azimuth (the inter-antenna
//! delays within the ~12 cm array are ≪ one 20 MHz sample, so they appear
//! as carrier phases — the steering vector — not envelope shifts, exactly
//! the geometry of the paper's Figure 1(c)). Envelope delays *between*
//! paths can span multiple samples and are applied by fractional-delay
//! interpolation, which is what makes the OFDM cyclic prefix and the
//! frequency-selective channel real in this simulator.

use crate::pattern::TxAntenna;
use crate::trace::Path;
use sa_array::geometry::Array;
use sa_linalg::matrix::CMat;
use sa_sigproc::iq::{apply_cfo, delay_signal};

/// Everything the channel hands the receiver for one transmission.
#[derive(Debug, Clone)]
pub struct ChannelOutput {
    /// Clean per-antenna samples (rows = antennas), before the RF front
    /// end adds its impairments and noise.
    pub snapshots: CMat,
    /// The paths that formed the signal (ground truth for experiments).
    pub paths: Vec<Path>,
    /// Mean received power across antennas and samples (for RSS and SNR
    /// bookkeeping).
    pub rx_power: f64,
}

/// Channel application parameters.
#[derive(Debug, Clone, Copy)]
pub struct ApplyConfig {
    /// Baseband sample rate, Hz (the paper's 20 MHz).
    pub sample_rate: f64,
    /// Linear transmit power scaling (waveform is scaled by its square
    /// root). `1.0` = the waveform's own power.
    pub tx_power: f64,
    /// Client↔AP carrier frequency offset, radians per sample (identical
    /// on all AP chains — the boards share sampling clocks, paper §3).
    pub cfo_rad_per_sample: f64,
    /// Rotation of the array's local frame relative to the global floor
    /// plan frame, radians (array broadside orientation).
    pub array_orientation: f64,
}

impl Default for ApplyConfig {
    fn default() -> Self {
        Self {
            sample_rate: sa_array::geometry::SAMPLE_RATE_HZ,
            tx_power: 1.0,
            cfo_rad_per_sample: 0.0,
            array_orientation: 0.0,
        }
    }
}

/// Drive `waveform` through `paths` into `array`.
///
/// Path delays are applied relative to the earliest path so the packet
/// stays near the start of the output buffer; the *absolute* common
/// delay is irrelevant to every receiver stage (detection re-times, AoA
/// uses inter-antenna phase only).
pub fn apply_channel(
    paths: &[Path],
    tx_antenna: &TxAntenna,
    array: &Array,
    waveform: &[sa_linalg::C64],
    cfg: &ApplyConfig,
) -> ChannelOutput {
    assert!(!paths.is_empty(), "apply_channel: no paths");
    assert!(!waveform.is_empty(), "apply_channel: empty waveform");
    let m = array.len();
    let n = waveform.len();
    let min_delay = paths
        .iter()
        .map(|p| p.delay_s)
        .fold(f64::INFINITY, f64::min);
    let amp_tx = cfg.tx_power.sqrt();

    let mut x = CMat::zeros(m, n);
    for p in paths {
        let pat = tx_antenna.amplitude_gain(p.departure_az);
        if pat == 0.0 {
            continue;
        }
        let g = p.gain.scale(amp_tx * pat);
        let rel_delay = (p.delay_s - min_delay) * cfg.sample_rate;
        let delayed = delay_signal(waveform, rel_delay);
        let local_az = p.arrival_az - cfg.array_orientation;
        let steer = array.steering(local_az);
        for (mi, s_m) in steer.iter().enumerate() {
            let coef = *s_m * g;
            for t in 0..n {
                x[(mi, t)] += coef * delayed[t];
            }
        }
    }

    if cfg.cfo_rad_per_sample != 0.0 {
        for mi in 0..m {
            let mut row = x.row(mi);
            apply_cfo(&mut row, cfg.cfo_rad_per_sample);
            for t in 0..n {
                x[(mi, t)] = row[t];
            }
        }
    }

    let rx_power = (0..m)
        .map(|mi| sa_sigproc::iq::mean_power(&x.row(mi)))
        .sum::<f64>()
        / m as f64;

    ChannelOutput {
        snapshots: x,
        paths: paths.to_vec(),
        rx_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::pt;
    use crate::plan::FloorPlan;
    use crate::trace::{trace_paths, TraceConfig};
    use sa_linalg::complex::C64;

    fn tone(n: usize) -> Vec<C64> {
        (0..n).map(|t| C64::cis(0.21 * t as f64)).collect()
    }

    fn los_paths(dist: f64) -> Vec<Path> {
        trace_paths(
            &FloorPlan::new(),
            pt(dist, 0.0),
            pt(0.0, 0.0),
            &TraceConfig::default(),
        )
    }

    #[test]
    fn single_path_reproduces_steering_phases() {
        let array = Array::paper_octagon();
        let paths = los_paths(4.0);
        let out = apply_channel(
            &paths,
            &TxAntenna::Omni,
            &array,
            &tone(64),
            &ApplyConfig::default(),
        );
        // Every antenna pair's phase difference equals the steering
        // vector's (single path ⇒ pure plane wave).
        let steer = array.steering(paths[0].arrival_az);
        for t in 0..64 {
            for mi in 1..array.len() {
                let got = (out.snapshots[(mi, t)] * out.snapshots[(0, t)].conj()).arg();
                let want = (steer[mi] * steer[0].conj()).arg();
                let d = (got - want + std::f64::consts::PI).rem_euclid(2.0 * std::f64::consts::PI)
                    - std::f64::consts::PI;
                assert!(d.abs() < 1e-9, "t={} m={} Δ={}", t, mi, d);
            }
        }
    }

    #[test]
    fn rx_power_follows_path_loss() {
        let array = Array::paper_linear(4);
        let near = apply_channel(
            &los_paths(2.0),
            &TxAntenna::Omni,
            &array,
            &tone(128),
            &ApplyConfig::default(),
        );
        let far = apply_channel(
            &los_paths(8.0),
            &TxAntenna::Omni,
            &array,
            &tone(128),
            &ApplyConfig::default(),
        );
        let ratio_db = 10.0 * (near.rx_power / far.rx_power).log10();
        // 4× distance = 12 dB.
        assert!((ratio_db - 12.04).abs() < 0.2, "ratio {}", ratio_db);
    }

    #[test]
    fn tx_power_scales_linearly() {
        let array = Array::paper_linear(2);
        let paths = los_paths(3.0);
        let base = apply_channel(
            &paths,
            &TxAntenna::Omni,
            &array,
            &tone(64),
            &ApplyConfig::default(),
        );
        let boosted = apply_channel(
            &paths,
            &TxAntenna::Omni,
            &array,
            &tone(64),
            &ApplyConfig {
                tx_power: 4.0,
                ..Default::default()
            },
        );
        assert!((boosted.rx_power / base.rx_power - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cfo_adds_progressive_rotation() {
        let array = Array::paper_linear(2);
        let paths = los_paths(3.0);
        let still = apply_channel(
            &paths,
            &TxAntenna::Omni,
            &array,
            &tone(32),
            &ApplyConfig::default(),
        );
        let offset = apply_channel(
            &paths,
            &TxAntenna::Omni,
            &array,
            &tone(32),
            &ApplyConfig {
                cfo_rad_per_sample: 0.05,
                ..Default::default()
            },
        );
        for t in 0..32 {
            let d = (offset.snapshots[(0, t)] * still.snapshots[(0, t)].conj()).arg();
            let want = (0.05 * t as f64 + std::f64::consts::PI)
                .rem_euclid(2.0 * std::f64::consts::PI)
                - std::f64::consts::PI;
            assert!((d - want).abs() < 1e-9, "t={}", t);
        }
    }

    #[test]
    fn array_orientation_rotates_apparent_aoa() {
        // Rotating the array must rotate the steering accordingly.
        let array = Array::paper_octagon();
        let paths = los_paths(5.0); // arrival azimuth 0 (from +x)
        let rotated = apply_channel(
            &paths,
            &TxAntenna::Omni,
            &array,
            &tone(16),
            &ApplyConfig {
                array_orientation: 0.7,
                ..Default::default()
            },
        );
        let steer = array.steering(-0.7); // local frame sees az − orientation
        for mi in 1..array.len() {
            let got = (rotated.snapshots[(mi, 0)] * rotated.snapshots[(0, 0)].conj()).arg();
            let want = (steer[mi] * steer[0].conj()).arg();
            let d = (got - want + std::f64::consts::PI).rem_euclid(2.0 * std::f64::consts::PI)
                - std::f64::consts::PI;
            assert!(d.abs() < 1e-9, "m={}", mi);
        }
    }

    #[test]
    fn directional_tx_starves_off_axis_paths() {
        // Two manual paths, TX antenna aimed at the first's departure.
        let p1 = los_paths(4.0)[0];
        let mut p2 = p1;
        p2.departure_az = p1.departure_az + std::f64::consts::PI; // behind
        p2.arrival_az = p1.arrival_az + 1.0;
        let array = Array::paper_linear(4);
        let aimed = TxAntenna::directional_dbi(p1.departure_az, 12.0, 4.0);
        let out = apply_channel(
            &[p1, p2],
            &aimed,
            &array,
            &tone(64),
            &ApplyConfig::default(),
        );
        // Compare with p1 alone, boosted: the back-lobe path contributes
        // nothing measurable.
        let solo = apply_channel(&[p1], &aimed, &array, &tone(64), &ApplyConfig::default());
        assert!(
            (out.rx_power / solo.rx_power - 1.0).abs() < 1e-9,
            "back-lobe leak: {} vs {}",
            out.rx_power,
            solo.rx_power
        );
    }

    #[test]
    fn multipath_sum_is_superposition() {
        let array = Array::paper_linear(3);
        // Same delay on both paths so each sub-call's min-delay reference
        // is identical (the common-delay normalisation is per call).
        let paths = {
            let mut v = los_paths(4.0);
            let mut echo = v[0];
            echo.arrival_az += 0.8;
            echo.gain = echo.gain.scale(0.5);
            v.push(echo);
            v
        };
        let both = apply_channel(
            &paths,
            &TxAntenna::Omni,
            &array,
            &tone(64),
            &ApplyConfig::default(),
        );
        let a = apply_channel(
            &paths[..1],
            &TxAntenna::Omni,
            &array,
            &tone(64),
            &ApplyConfig::default(),
        );
        let b = apply_channel(
            &paths[1..],
            &TxAntenna::Omni,
            &array,
            &tone(64),
            &ApplyConfig::default(),
        );
        // Linearity: both == a + b, but watch the per-call min-delay
        // reference: path 0 is earliest in all three calls here.
        for t in 0..64 {
            for mi in 0..3 {
                let sum = a.snapshots[(mi, t)] + b.snapshots[(mi, t)];
                assert!(
                    both.snapshots[(mi, t)].approx_eq(sum, 1e-9),
                    "t={} m={}",
                    t,
                    mi
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "no paths")]
    fn empty_paths_panics() {
        let array = Array::paper_linear(2);
        let _ = apply_channel(
            &[],
            &TxAntenna::Omni,
            &array,
            &tone(8),
            &ApplyConfig::default(),
        );
    }
}
