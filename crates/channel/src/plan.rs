//! Floor plans: walls with materials.
//!
//! The simulated counterpart of the paper's office testbed (Fig 4): a
//! set of wall segments, each with a reflection coefficient (how much
//! field amplitude a specular bounce keeps) and a transmission loss (how
//! many dB a path crossing the wall loses). The large cement pillar that
//! blocks clients 11 and 12 in the paper is four concrete segments.

use crate::geom::{Point, Rect, Segment};

/// Electromagnetic surface properties of a wall at 2.4 GHz.
///
/// `reflection` is an *effective specular* amplitude coefficient: it
/// folds in the diffuse-scattering loss of rough office surfaces, so it
/// is lower than the ideal Fresnel value for the material. (An ideally
/// smooth concrete slab reflects ~0.6 of the field amplitude, but a real
/// painted office wall scatters much of that energy out of the specular
/// direction; measured specular components are typically 6–10 dB below
/// the Fresnel prediction.) The experiments only rely on the *ordering*
/// (metal > concrete > drywall > glass) and rough magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Material {
    /// Effective specular amplitude reflection coefficient in `[0, 1]`.
    pub reflection: f64,
    /// Through-transmission loss, dB (positive number).
    pub transmission_db: f64,
    /// Display name for diagnostics.
    pub name: &'static str,
}

/// Interior drywall / plasterboard partition.
pub const DRYWALL: Material = Material {
    reflection: 0.22,
    transmission_db: 4.0,
    name: "drywall",
};

/// Structural concrete (the paper's pillar and exterior walls).
pub const CONCRETE: Material = Material {
    reflection: 0.40,
    transmission_db: 16.0,
    name: "concrete",
};

/// Glass (windows).
pub const GLASS: Material = Material {
    reflection: 0.18,
    transmission_db: 2.5,
    name: "glass",
};

/// Metal (whiteboards, cabinets, elevator doors) — strong reflector
/// even after roughness/edge losses, near-opaque.
pub const METAL: Material = Material {
    reflection: 0.80,
    transmission_db: 30.0,
    name: "metal",
};

/// One wall: a segment plus its material.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Wall {
    /// Geometry.
    pub segment: Segment,
    /// Surface properties.
    pub material: Material,
}

/// A floor plan: the wall set the ray tracer works against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FloorPlan {
    walls: Vec<Wall>,
}

impl FloorPlan {
    /// Empty plan (free space).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one wall. Degenerate (zero-length) segments are rejected.
    pub fn add_wall(&mut self, segment: Segment, material: Material) -> &mut Self {
        assert!(!segment.is_degenerate(), "add_wall: degenerate segment");
        self.walls.push(Wall { segment, material });
        self
    }

    /// Add the four edges of a rectangle (a room outline or a solid
    /// obstacle such as the paper's pillar).
    pub fn add_rect(&mut self, rect: Rect, material: Material) -> &mut Self {
        for e in rect.edges() {
            self.add_wall(e, material);
        }
        self
    }

    /// The walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Number of walls.
    pub fn len(&self) -> usize {
        self.walls.len()
    }

    /// True if the plan has no walls.
    pub fn is_empty(&self) -> bool {
        self.walls.is_empty()
    }

    /// Total through-loss (dB) accumulated by a straight path from `a`
    /// to `b`, excluding walls whose indices appear in `exclude`
    /// (used by the ray tracer to avoid counting the reflecting wall as
    /// an obstruction of its own bounce).
    pub fn through_loss_db(&self, a: Point, b: Point, exclude: &[usize]) -> f64 {
        let path = Segment { a, b };
        if path.is_degenerate() {
            return 0.0;
        }
        let mut loss = 0.0;
        for (i, w) in self.walls.iter().enumerate() {
            if exclude.contains(&i) {
                continue;
            }
            if path.intersect(&w.segment, false).is_some() {
                loss += w.material.transmission_db;
            }
        }
        loss
    }

    /// True if the straight path from `a` to `b` crosses no wall at all
    /// (unobstructed line of sight).
    pub fn has_clear_los(&self, a: Point, b: Point) -> bool {
        self.through_loss_db(a, b, &[]) == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{pt, seg};

    #[test]
    fn empty_plan_is_free_space() {
        let plan = FloorPlan::new();
        assert!(plan.is_empty());
        assert!(plan.has_clear_los(pt(0.0, 0.0), pt(10.0, 10.0)));
        assert_eq!(plan.through_loss_db(pt(0.0, 0.0), pt(10.0, 0.0), &[]), 0.0);
    }

    #[test]
    fn single_wall_attenuates_crossing_path() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(5.0, -5.0), pt(5.0, 5.0)), DRYWALL);
        let loss = plan.through_loss_db(pt(0.0, 0.0), pt(10.0, 0.0), &[]);
        assert!((loss - DRYWALL.transmission_db).abs() < 1e-12);
        assert!(!plan.has_clear_los(pt(0.0, 0.0), pt(10.0, 0.0)));
        // A path on one side does not cross.
        assert!(plan.has_clear_los(pt(0.0, 0.0), pt(4.0, 0.0)));
    }

    #[test]
    fn multiple_walls_accumulate() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(2.0, -5.0), pt(2.0, 5.0)), DRYWALL);
        plan.add_wall(seg(pt(4.0, -5.0), pt(4.0, 5.0)), CONCRETE);
        let loss = plan.through_loss_db(pt(0.0, 0.0), pt(6.0, 0.0), &[]);
        assert!((loss - (DRYWALL.transmission_db + CONCRETE.transmission_db)).abs() < 1e-12);
    }

    #[test]
    fn exclusion_skips_named_walls() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(2.0, -5.0), pt(2.0, 5.0)), CONCRETE);
        let loss = plan.through_loss_db(pt(0.0, 0.0), pt(6.0, 0.0), &[0]);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn rect_adds_four_walls() {
        let mut plan = FloorPlan::new();
        plan.add_rect(Rect::new(0.0, 0.0, 2.0, 1.0), CONCRETE);
        assert_eq!(plan.len(), 4);
        // A path through the rectangle crosses two of them.
        let loss = plan.through_loss_db(pt(-1.0, 0.5), pt(3.0, 0.5), &[]);
        assert!((loss - 2.0 * CONCRETE.transmission_db).abs() < 1e-12);
    }

    #[test]
    fn parallel_touch_does_not_count() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(0.0, 0.0), pt(10.0, 0.0)), METAL);
        // Path collinear with the wall: parallel ⇒ no crossing.
        assert!(plan.has_clear_los(pt(0.0, 0.0), pt(10.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_wall_rejected() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(1.0, 1.0), pt(1.0, 1.0)), DRYWALL);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberately checks the catalogue constants
    fn material_catalogue_sane() {
        for m in [DRYWALL, CONCRETE, GLASS, METAL] {
            assert!((0.0..=1.0).contains(&m.reflection), "{}", m.name);
            assert!(m.transmission_db >= 0.0);
        }
        assert!(CONCRETE.transmission_db > DRYWALL.transmission_db);
        assert!(METAL.reflection > CONCRETE.reflection);
    }
}
