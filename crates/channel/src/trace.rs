//! Image-method ray tracer: direct path plus first- and second-order
//! specular reflections.
//!
//! The multipath profile that makes the paper's AoA signatures unique —
//! "the combined direct path and reflection path AoAs form the unique
//! signature for each client" (§1) — is produced here. For every wall we
//! mirror the transmitter to an image source; a valid reflection exists
//! when the ray from the receiver to the image crosses the wall within
//! its extent. Second order repeats the construction through ordered
//! wall pairs. Each surviving path records:
//!
//! * arrival azimuth at the receiver (the AoA the array sees),
//! * departure azimuth at the transmitter (what a directional attacker
//!   antenna weights),
//! * propagation delay, and
//! * a complex gain: free-space spreading `λ/(4πd)`, reflection
//!   coefficients, wall through-losses, and carrier phase `e^{−j2πd/λ}`.

use crate::geom::{Point, Segment};
use crate::plan::FloorPlan;
use sa_linalg::complex::C64;

/// Classification of a propagation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PathKind {
    /// Direct (possibly through walls) transmitter→receiver path.
    Direct,
    /// Specular reflection of the given order (1 or 2).
    Reflection(u8),
    /// Knife-edge diffraction around a wall corner. Activated only when
    /// the direct path is heavily obstructed; this is what lets the
    /// paper's pillar-blocked client 11 still show "a little bit smaller
    /// value close to the true angle" — energy bends around the pillar
    /// edge and arrives from just beside the true bearing.
    Diffracted,
}

/// One propagation path between a transmitter and a receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// Arrival azimuth at the receiver (radians, global frame): the
    /// direction *from which* energy arrives.
    pub arrival_az: f64,
    /// Departure azimuth at the transmitter (radians, global frame).
    pub departure_az: f64,
    /// Total geometric length, meters.
    pub length: f64,
    /// Propagation delay, seconds.
    pub delay_s: f64,
    /// Complex amplitude gain (spreading × materials × carrier phase).
    pub gain: C64,
    /// Path class.
    pub kind: PathKind,
}

impl Path {
    /// Received power of this path relative to unit transmit power, dB.
    pub fn power_db(&self) -> f64 {
        10.0 * self.gain.norm_sqr().log10()
    }
}

/// Ray-tracing configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Carrier wavelength, meters.
    pub wavelength: f64,
    /// Include second-order (double-bounce) reflections.
    pub second_order: bool,
    /// Include corner diffraction when the direct path is obstructed by
    /// more than [`TraceConfig::diffraction_gate_db`].
    pub diffraction: bool,
    /// Direct-path through-loss (dB) above which corner-diffracted
    /// paths are traced. Diffraction is negligible next to a clear LoS,
    /// so tracing it only for shadowed links keeps path lists tight.
    pub diffraction_gate_db: f64,
    /// Discard paths weaker than this many dB below the strongest
    /// (keeps the path list and the synthesis cost bounded).
    pub keep_rel_db: f64,
    /// Hard cap on the number of returned paths (strongest kept).
    pub max_paths: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            wavelength: sa_array::geometry::wavelength(sa_array::geometry::DEFAULT_CARRIER_HZ),
            second_order: true,
            diffraction: true,
            diffraction_gate_db: 8.0,
            // Paths more than ~26 dB below the strongest are below the
            // MUSIC noise floor at realistic packet SNRs and only blur
            // the subspace model; measured office channels concentrate
            // the energy in a handful of significant components.
            keep_rel_db: 26.0,
            max_paths: 10,
        }
    }
}

/// Speed of light (m/s), re-exported for delay arithmetic.
pub use sa_array::geometry::SPEED_OF_LIGHT;

/// Trace all propagation paths from `tx` to `rx` through `plan`.
///
/// Always returns at least the direct path (however attenuated), so a
/// fully-enclosed client still produces a signal — matching the paper's
/// client 11, "completely blocked by the pillar", which still yields a
/// bearing. Paths are sorted strongest-first.
pub fn trace_paths(plan: &FloorPlan, tx: Point, rx: Point, cfg: &TraceConfig) -> Vec<Path> {
    assert!(
        tx.dist(rx) > 1e-6,
        "trace_paths: transmitter and receiver coincide"
    );
    let mut paths = Vec::new();

    // --- Direct path ------------------------------------------------
    {
        let d = tx.dist(rx);
        let loss_db = plan.through_loss_db(tx, rx, &[]);
        let amp = spreading(d, cfg.wavelength) * db_amp(-loss_db);
        paths.push(Path {
            arrival_az: rx.azimuth_to(tx),
            departure_az: tx.azimuth_to(rx),
            length: d,
            delay_s: d / SPEED_OF_LIGHT,
            gain: C64::from_polar(amp, phase(d, cfg.wavelength)),
            kind: PathKind::Direct,
        });
    }

    // --- First-order reflections -------------------------------------
    let walls = plan.walls();
    for (wi, w) in walls.iter().enumerate() {
        if let Some(p) = reflection_point(&w.segment, tx, rx) {
            let d1 = tx.dist(p);
            let d2 = p.dist(rx);
            let d = d1 + d2;
            if d < 1e-6 {
                continue;
            }
            // Obstructions on both legs; the reflecting wall itself is
            // excluded (its effect is the reflection coefficient).
            let loss_db = plan.through_loss_db(tx, p, &[wi]) + plan.through_loss_db(p, rx, &[wi]);
            let amp = spreading(d, cfg.wavelength) * w.material.reflection * db_amp(-loss_db);
            paths.push(Path {
                arrival_az: rx.azimuth_to(p),
                departure_az: tx.azimuth_to(p),
                length: d,
                delay_s: d / SPEED_OF_LIGHT,
                gain: C64::from_polar(amp, phase(d, cfg.wavelength)),
                kind: PathKind::Reflection(1),
            });
        }
    }

    // --- Second-order reflections -------------------------------------
    if cfg.second_order {
        for (wi, w1) in walls.iter().enumerate() {
            let img1 = w1.segment.mirror(tx);
            for (wj, w2) in walls.iter().enumerate() {
                if wi == wj {
                    continue;
                }
                let img2 = w2.segment.mirror(img1);
                // Bounce points: last wall first (from the receiver side).
                let Some(p2) = reflection_point_img(&w2.segment, img2, rx) else {
                    continue;
                };
                let Some(p1) = reflection_point_img(&w1.segment, img1, p2) else {
                    continue;
                };
                // p1 must be illuminated from tx via w1: the segment
                // tx→p1 then p1→p2 then p2→rx is the physical path.
                let d = tx.dist(p1) + p1.dist(p2) + p2.dist(rx);
                if d < 1e-6 {
                    continue;
                }
                let loss_db = plan.through_loss_db(tx, p1, &[wi])
                    + plan.through_loss_db(p1, p2, &[wi, wj])
                    + plan.through_loss_db(p2, rx, &[wj]);
                let amp = spreading(d, cfg.wavelength)
                    * w1.material.reflection
                    * w2.material.reflection
                    * db_amp(-loss_db);
                paths.push(Path {
                    arrival_az: rx.azimuth_to(p2),
                    departure_az: tx.azimuth_to(p1),
                    length: d,
                    delay_s: d / SPEED_OF_LIGHT,
                    gain: C64::from_polar(amp, phase(d, cfg.wavelength)),
                    kind: PathKind::Reflection(2),
                });
            }
        }
    }

    // --- Corner diffraction (shadowed links only) ----------------------
    let direct_loss_db = plan.through_loss_db(tx, rx, &[]);
    if cfg.diffraction && direct_loss_db > cfg.diffraction_gate_db {
        for corner in unique_corners(plan) {
            let d1 = tx.dist(corner);
            let d2 = corner.dist(rx);
            if d1 < 1e-6 || d2 < 1e-6 {
                continue;
            }
            // Deviation from the straight line at the corner: 0 = the
            // corner lies on the LoS (maximal diffraction), growing as
            // the path bends further around it.
            let dir_in = tx.azimuth_to(corner);
            let dir_out = corner.azimuth_to(rx);
            let bend = wrap_angle(dir_out - dir_in).abs();
            // Empirical knife-edge-style loss: 6 dB at grazing incidence
            // plus 0.45 dB per degree of bend (matches the 12–25 dB the
            // Fresnel-parameter model gives for our pillar geometries; a
            // 90° bend is ~46 dB down — effectively gone).
            let diff_loss_db = 6.0 + 0.45 * bend.to_degrees();
            if diff_loss_db > cfg.keep_rel_db + 30.0 {
                continue;
            }
            let leg_loss_db =
                plan.through_loss_db(tx, corner, &[]) + plan.through_loss_db(corner, rx, &[]);
            let d = d1 + d2;
            let amp = spreading(d, cfg.wavelength) * db_amp(-(diff_loss_db + leg_loss_db));
            paths.push(Path {
                arrival_az: rx.azimuth_to(corner),
                departure_az: tx.azimuth_to(corner),
                length: d,
                delay_s: d / SPEED_OF_LIGHT,
                gain: C64::from_polar(amp, phase(d, cfg.wavelength)),
                kind: PathKind::Diffracted,
            });
        }
    }

    // --- Pruning -------------------------------------------------------
    paths.sort_by(|a, b| b.gain.norm_sqr().partial_cmp(&a.gain.norm_sqr()).unwrap());
    let best = paths[0].gain.norm_sqr().max(f64::MIN_POSITIVE);
    let floor = best * db_amp(-cfg.keep_rel_db).powi(2);
    // Always keep the direct path (index may move after sort).
    let direct = paths
        .iter()
        .position(|p| p.kind == PathKind::Direct)
        .expect("direct path always present");
    let mut kept: Vec<Path> = paths
        .iter()
        .enumerate()
        .filter(|&(i, p)| i == direct || p.gain.norm_sqr() >= floor)
        .map(|(_, p)| *p)
        .collect();
    kept.truncate(cfg.max_paths.max(1));
    kept
}

/// Free-space amplitude spreading factor `λ / (4πd)` (Friis, amplitude
/// domain), clamped at a quarter wavelength to avoid the near-field
/// singularity.
fn spreading(d: f64, wavelength: f64) -> f64 {
    wavelength / (4.0 * std::f64::consts::PI * d.max(wavelength / 4.0))
}

/// Carrier phase accumulated over distance `d` (negative: delay).
fn phase(d: f64, wavelength: f64) -> f64 {
    -2.0 * std::f64::consts::PI * d / wavelength
}

/// Convert dB to an amplitude factor.
fn db_amp(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Specular reflection point of tx→wall→rx, if the mirrored ray crosses
/// the wall segment and tx/rx are on the same side of the wall plane
/// (a same-side requirement: a "reflection" through the wall is really a
/// transmission and is handled by the direct path's through-loss).
fn reflection_point(wall: &Segment, tx: Point, rx: Point) -> Option<Point> {
    let side_tx = wall.side(tx);
    let side_rx = wall.side(rx);
    if side_tx * side_rx <= 0.0 {
        return None; // opposite sides or on the wall plane
    }
    let img = wall.mirror(tx);
    reflection_point_img(wall, img, rx)
}

/// Reflection point given a precomputed image source: the crossing of
/// segment `img→rx` with the wall, if inside the wall's extent.
fn reflection_point_img(wall: &Segment, img: Point, rx: Point) -> Option<Point> {
    let ray = Segment { a: rx, b: img };
    if ray.is_degenerate() {
        return None;
    }
    wall.intersect(&ray, false).map(|i| i.point)
}

/// All distinct wall endpoints (shared rectangle corners deduplicated).
fn unique_corners(plan: &FloorPlan) -> Vec<Point> {
    let mut corners: Vec<Point> = Vec::with_capacity(plan.len() * 2);
    for w in plan.walls() {
        for p in [w.segment.a, w.segment.b] {
            if !corners.iter().any(|c| c.dist(p) < 1e-9) {
                corners.push(p);
            }
        }
    }
    corners
}

/// Wrap an angle to `(−π, π]`.
fn wrap_angle(a: f64) -> f64 {
    let w = a.rem_euclid(2.0 * std::f64::consts::PI);
    if w > std::f64::consts::PI {
        w - 2.0 * std::f64::consts::PI
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{pt, seg, Rect};
    use crate::plan::{CONCRETE, DRYWALL, METAL};

    fn cfg() -> TraceConfig {
        TraceConfig::default()
    }

    #[test]
    fn free_space_single_direct_path() {
        let plan = FloorPlan::new();
        let paths = trace_paths(&plan, pt(3.0, 4.0), pt(0.0, 0.0), &cfg());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.kind, PathKind::Direct);
        assert!((p.length - 5.0).abs() < 1e-12);
        // Arrival at origin from (3,4): azimuth atan2(4,3).
        assert!((p.arrival_az - 4f64.atan2(3.0)).abs() < 1e-12);
        // Departure is the reverse direction.
        assert!(
            ((p.departure_az - (p.arrival_az - std::f64::consts::PI))
                .rem_euclid(2.0 * std::f64::consts::PI))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn friis_power_scaling() {
        let plan = FloorPlan::new();
        let p1 = trace_paths(&plan, pt(2.0, 0.0), pt(0.0, 0.0), &cfg())[0].power_db();
        let p2 = trace_paths(&plan, pt(4.0, 0.0), pt(0.0, 0.0), &cfg())[0].power_db();
        // Doubling distance costs 6 dB.
        assert!((p1 - p2 - 6.0206).abs() < 0.01, "Δ = {}", p1 - p2);
    }

    #[test]
    fn single_wall_produces_one_reflection() {
        let mut plan = FloorPlan::new();
        // Wall along y = 2, tx and rx below it.
        plan.add_wall(seg(pt(-10.0, 2.0), pt(10.0, 2.0)), METAL);
        let tx = pt(2.0, 0.0);
        let rx = pt(0.0, 0.0);
        let paths = trace_paths(&plan, tx, rx, &cfg());
        assert_eq!(paths.len(), 2, "paths: {:#?}", paths);
        let refl = paths
            .iter()
            .find(|p| p.kind == PathKind::Reflection(1))
            .unwrap();
        // Image of tx at (2, 4): path length |(2,4)−(0,0)| = √20.
        assert!((refl.length - 20f64.sqrt()).abs() < 1e-9);
        // Arrival azimuth from rx toward bounce point (1, 2).
        assert!((refl.arrival_az - 2f64.atan2(1.0)).abs() < 1e-9);
        // Reflection is weaker than the LoS path.
        assert!(refl.power_db() < paths[0].power_db());
    }

    #[test]
    fn reflection_respects_wall_extent() {
        let mut plan = FloorPlan::new();
        // Short wall far to the right: mirror crossing misses its extent.
        plan.add_wall(seg(pt(8.0, 2.0), pt(10.0, 2.0)), METAL);
        let paths = trace_paths(&plan, pt(2.0, 0.0), pt(0.0, 0.0), &cfg());
        assert_eq!(paths.len(), 1, "no reflection should exist");
    }

    #[test]
    fn wall_between_attenuates_direct() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(1.0, -5.0), pt(1.0, 5.0)), CONCRETE);
        let free = trace_paths(&FloorPlan::new(), pt(2.0, 0.0), pt(0.0, 0.0), &cfg());
        let blocked = trace_paths(&plan, pt(2.0, 0.0), pt(0.0, 0.0), &cfg());
        let d_free = free[0].power_db();
        let d_blk = blocked
            .iter()
            .find(|p| p.kind == PathKind::Direct)
            .unwrap()
            .power_db();
        assert!(
            (d_free - d_blk - CONCRETE.transmission_db).abs() < 1e-6,
            "loss {} expected {}",
            d_free - d_blk,
            CONCRETE.transmission_db
        );
    }

    #[test]
    fn opposite_side_reflection_suppressed() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(-10.0, 1.0), pt(10.0, 1.0)), METAL);
        // tx above the wall, rx below: transmission, not reflection.
        let paths = trace_paths(&plan, pt(0.0, 2.0), pt(0.0, 0.0), &cfg());
        assert!(
            paths.iter().all(|p| p.kind == PathKind::Direct),
            "paths: {:#?}",
            paths
        );
    }

    #[test]
    fn box_room_yields_second_order() {
        let mut plan = FloorPlan::new();
        plan.add_rect(Rect::new(-5.0, -5.0, 5.0, 5.0), CONCRETE);
        let paths = trace_paths(&plan, pt(2.0, 1.0), pt(-2.0, -1.0), &cfg());
        let n1 = paths
            .iter()
            .filter(|p| p.kind == PathKind::Reflection(1))
            .count();
        let n2 = paths
            .iter()
            .filter(|p| p.kind == PathKind::Reflection(2))
            .count();
        assert!(n1 >= 3, "first-order count {}", n1);
        assert!(n2 >= 1, "second-order count {}", n2);
        // Direct is the strongest (shortest, no reflection loss).
        assert_eq!(paths[0].kind, PathKind::Direct);
        // All delays consistent with their lengths.
        for p in &paths {
            assert!((p.delay_s * SPEED_OF_LIGHT - p.length).abs() < 1e-9);
        }
    }

    #[test]
    fn second_order_can_be_disabled() {
        let mut plan = FloorPlan::new();
        plan.add_rect(Rect::new(-5.0, -5.0, 5.0, 5.0), CONCRETE);
        let cfg1 = TraceConfig {
            second_order: false,
            ..cfg()
        };
        let paths = trace_paths(&plan, pt(2.0, 1.0), pt(-2.0, -1.0), &cfg1);
        assert!(paths.iter().all(|p| p.kind != PathKind::Reflection(2)));
    }

    #[test]
    fn pruning_keeps_direct_even_when_weak() {
        let mut plan = FloorPlan::new();
        // Heavy concrete box around the tx: direct path −64 dB from
        // walls, a strong outside metal reflector gives a louder bounce.
        plan.add_rect(Rect::new(1.5, -0.5, 2.5, 0.5), CONCRETE);
        plan.add_wall(seg(pt(-10.0, 3.0), pt(10.0, 3.0)), METAL);
        let cfg1 = TraceConfig {
            keep_rel_db: 10.0,
            ..cfg()
        };
        let paths = trace_paths(&plan, pt(2.0, 0.0), pt(0.0, 0.0), &cfg1);
        assert!(
            paths.iter().any(|p| p.kind == PathKind::Direct),
            "direct must survive pruning: {:#?}",
            paths
        );
    }

    #[test]
    fn max_paths_cap_respected() {
        let mut plan = FloorPlan::new();
        plan.add_rect(Rect::new(-6.0, -6.0, 6.0, 6.0), METAL);
        plan.add_rect(Rect::new(-4.0, -4.0, 4.0, 4.0), DRYWALL);
        let cfg1 = TraceConfig {
            max_paths: 5,
            keep_rel_db: 120.0,
            ..cfg()
        };
        let paths = trace_paths(&plan, pt(1.0, 2.0), pt(-1.0, -2.0), &cfg1);
        assert!(paths.len() <= 5);
    }

    #[test]
    fn delay_ordering_matches_length_ordering() {
        let mut plan = FloorPlan::new();
        plan.add_rect(Rect::new(-5.0, -5.0, 5.0, 5.0), CONCRETE);
        let paths = trace_paths(&plan, pt(3.0, 2.0), pt(-3.0, -2.0), &cfg());
        let direct = paths.iter().find(|p| p.kind == PathKind::Direct).unwrap();
        for p in &paths {
            if p.kind != PathKind::Direct {
                assert!(p.length > direct.length, "reflection shorter than LoS?");
            }
        }
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn coincident_endpoints_panic() {
        let plan = FloorPlan::new();
        let _ = trace_paths(&plan, pt(1.0, 1.0), pt(1.0, 1.0), &cfg());
    }

    #[test]
    fn blocked_link_gets_diffracted_paths_near_the_edge() {
        // An opaque metal slab between tx and rx, its free corner at
        // (0, 0.5) — only a shallow bend is needed to round it.
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(0.0, -8.0), pt(0.0, 0.5)), METAL);
        let tx = pt(3.0, 0.0);
        let rx = pt(-3.0, 0.0);
        let paths = trace_paths(&plan, tx, rx, &cfg());
        let diff: Vec<_> = paths
            .iter()
            .filter(|p| p.kind == PathKind::Diffracted)
            .collect();
        assert!(!diff.is_empty(), "expected diffraction: {:#?}", paths);
        // The diffracted arrival comes from the slab's free corner
        // (0, 0.5): azimuth from rx = atan2(0.5, 3).
        let want = (0.5f64).atan2(3.0);
        assert!(
            diff.iter().any(|p| (p.arrival_az - want).abs() < 1e-9),
            "no arrival from the corner: {:#?}",
            diff
        );
        // Diffracted (≈8 + 0.6·19 ≈ 19 dB) beats the through-metal
        // direct (30 dB).
        let direct = paths.iter().find(|p| p.kind == PathKind::Direct).unwrap();
        let best_diff = diff.iter().map(|p| p.gain.abs()).fold(0.0f64, f64::max);
        assert!(
            best_diff > direct.gain.abs(),
            "diffraction should dominate a blocked LoS"
        );
    }

    #[test]
    fn clear_link_traces_no_diffraction() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(0.0, 5.0), pt(5.0, 5.0)), CONCRETE);
        let paths = trace_paths(&plan, pt(3.0, 0.0), pt(-3.0, 0.0), &cfg());
        assert!(
            paths.iter().all(|p| p.kind != PathKind::Diffracted),
            "no diffraction expected on a clear LoS"
        );
    }

    #[test]
    fn diffraction_can_be_disabled() {
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(0.0, -8.0), pt(0.0, 2.0)), CONCRETE);
        let cfg1 = TraceConfig {
            diffraction: false,
            ..cfg()
        };
        let paths = trace_paths(&plan, pt(3.0, 0.0), pt(-3.0, 0.0), &cfg1);
        assert!(paths.iter().all(|p| p.kind != PathKind::Diffracted));
    }

    #[test]
    fn larger_bend_means_weaker_diffraction() {
        // Two receivers behind the same slab, one requiring a sharper
        // bend around the corner at (0, 0.5).
        let mut plan = FloorPlan::new();
        plan.add_wall(seg(pt(0.0, -8.0), pt(0.0, 0.5)), METAL);
        let tx = pt(3.0, 0.0);
        let shallow = trace_paths(&plan, tx, pt(-6.0, 1.0), &cfg());
        let sharp = trace_paths(&plan, tx, pt(-3.0, -1.5), &cfg());
        let best = |ps: &[Path]| {
            ps.iter()
                .filter(|p| p.kind == PathKind::Diffracted)
                .map(|p| {
                    // Normalise out the spreading so only the bend loss
                    // is compared.
                    p.gain.abs() * p.length
                })
                .fold(0.0f64, f64::max)
        };
        let (a, b) = (best(&shallow), best(&sharp));
        assert!(a > 0.0 && b > 0.0, "both should diffract");
        assert!(a > b, "shallow bend {} should beat sharp bend {}", a, b);
    }
}
