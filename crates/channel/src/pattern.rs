//! Transmit antenna patterns.
//!
//! The paper's threat model (§1) equips attackers with "an
//! omnidirectional antenna, directional antenna (as the attackers were
//! equipped in the TJ Maxx attacks of 2006), or antenna array". The
//! pattern weights each traced path by its *departure* azimuth, which is
//! how a directional antenna reshapes the multipath profile (it boosts
//! paths it points at and starves the rest) — the mechanism by which
//! such an attacker defeats RSS signalprints but not AoA signatures.

/// A transmit antenna's azimuthal pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxAntenna {
    /// Ideal omnidirectional pattern (unit gain everywhere).
    Omni,
    /// A cardioid-family directional pattern aimed at `aim_az`:
    /// power gain `boost · ((1 + cos(Δ))/2)^order`, where `Δ` is the
    /// angle off boresight. Higher `order` ⇒ narrower beam.
    Directional {
        /// Boresight azimuth, radians (global frame).
        aim_az: f64,
        /// Beam sharpness exponent (1 = classic cardioid, 4 ≈ 14 dBi
        /// patch/yagi-class beam).
        order: f64,
        /// Boresight power gain, linear (e.g. `10^(14/10)` for 14 dBi).
        boost: f64,
    },
}

impl TxAntenna {
    /// A directional antenna from boresight gain in dBi and an order.
    pub fn directional_dbi(aim_az: f64, gain_dbi: f64, order: f64) -> Self {
        TxAntenna::Directional {
            aim_az,
            order,
            boost: 10f64.powf(gain_dbi / 10.0),
        }
    }

    /// Amplitude gain toward a departure azimuth.
    pub fn amplitude_gain(&self, departure_az: f64) -> f64 {
        self.power_gain(departure_az).sqrt()
    }

    /// Power gain toward a departure azimuth.
    pub fn power_gain(&self, departure_az: f64) -> f64 {
        match *self {
            TxAntenna::Omni => 1.0,
            TxAntenna::Directional {
                aim_az,
                order,
                boost,
            } => {
                let delta = departure_az - aim_az;
                let c = (1.0 + delta.cos()) / 2.0; // 1 at boresight, 0 behind
                boost * c.powf(order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn omni_is_flat() {
        for i in 0..12 {
            let az = 2.0 * PI * i as f64 / 12.0;
            assert_eq!(TxAntenna::Omni.power_gain(az), 1.0);
        }
    }

    #[test]
    fn boresight_gets_full_boost() {
        let a = TxAntenna::directional_dbi(1.0, 14.0, 4.0);
        assert!((a.power_gain(1.0) - 10f64.powf(1.4)).abs() < 1e-9);
    }

    #[test]
    fn back_lobe_is_null() {
        let a = TxAntenna::directional_dbi(0.0, 14.0, 4.0);
        assert!(a.power_gain(PI) < 1e-12);
    }

    #[test]
    fn monotone_rolloff_within_half_plane() {
        let a = TxAntenna::directional_dbi(0.0, 10.0, 2.0);
        let g: Vec<f64> = (0..=9).map(|i| a.power_gain(i as f64 * PI / 9.0)).collect();
        for w in g.windows(2) {
            assert!(w[0] >= w[1], "pattern must roll off: {:?}", g);
        }
    }

    #[test]
    fn higher_order_is_narrower() {
        let wide = TxAntenna::directional_dbi(0.0, 10.0, 1.0);
        let narrow = TxAntenna::directional_dbi(0.0, 10.0, 6.0);
        let off = 1.0; // ~57° off boresight
        assert!(
            narrow.power_gain(off) / narrow.power_gain(0.0)
                < wide.power_gain(off) / wide.power_gain(0.0)
        );
    }

    #[test]
    fn amplitude_is_sqrt_of_power() {
        let a = TxAntenna::directional_dbi(0.3, 8.0, 3.0);
        for az in [0.0, 0.5, 1.0, 2.0] {
            assert!((a.amplitude_gain(az).powi(2) - a.power_gain(az)).abs() < 1e-12);
        }
    }

    #[test]
    fn pattern_wraps_around() {
        let a = TxAntenna::directional_dbi(0.1, 10.0, 2.0);
        assert!((a.power_gain(0.1 + 2.0 * PI) - a.power_gain(0.1)).abs() < 1e-9);
    }
}
