//! Temporal evolution of multipath: the channel between *captures*.
//!
//! Fig 6 of the paper overlays pseudospectra of the same client at
//! Δt ∈ {0, 1, 10, 100, 1000 s, 1 h, 1 day} and observes that "the
//! direct-path peak is quite stable while the multipath reflection peaks
//! (smaller peaks) sometimes vary". Physically: walls don't move, so
//! reflection *azimuths* are nearly static, but people and furniture
//! perturb reflection amplitudes/phases on a scale of minutes, and over
//! hours the secondary-path population itself turns over. The direct
//! path only changes if the client or something on the LoS moves.
//!
//! We model each path's complex gain as a Gauss–Markov (AR-1) process
//! with a per-class coherence time, plus a small azimuth jitter and
//! long-horizon dropout/birth for reflections:
//!
//! ```text
//! ρ     = exp(−Δt / T_class)
//! g(t+Δt) = ρ·g(t) + √(1 − ρ²)·CN(0, |g(t)|²)     (power-preserving)
//! az(t+Δt) = az(t) + N(0, σ_az·(1 − ρ))            (reflections only)
//! ```
//!
//! The paper cites MIMO coherence times of 25–125 ms for *fading*
//! (walking-speed receivers, \[3\] in the paper); our per-class times
//! govern the much slower evolution of the static-client *signature*,
//! with defaults chosen so that minute-scale spectra are stable (as the
//! paper observes) and day-scale reflection structure is substantially
//! redrawn.

use crate::trace::{Path, PathKind};
use rand::Rng;
use sa_linalg::complex::C64;
use sa_sigproc::noise::gaussian;

/// Parameters of the temporal evolution model.
#[derive(Debug, Clone, Copy)]
pub struct TemporalModel {
    /// Coherence time of the direct path's complex gain, seconds.
    /// Long: a static client's LoS only flickers when something crosses
    /// it.
    pub direct_coherence_s: f64,
    /// Coherence time of reflection gains, seconds (people/furniture).
    pub reflect_coherence_s: f64,
    /// Std-dev of reflection azimuth jitter at full decorrelation,
    /// radians.
    pub azimuth_jitter_rad: f64,
    /// Probability that a fully-decorrelated reflection drops out
    /// entirely (obstacle moved into its bounce geometry).
    pub dropout_prob: f64,
    /// Probability that a fully-decorrelated epoch spawns one new weak
    /// scatter path at a random azimuth.
    pub birth_prob: f64,
}

impl Default for TemporalModel {
    fn default() -> Self {
        Self {
            direct_coherence_s: 6.0 * 3600.0, // hours: LoS essentially pinned
            reflect_coherence_s: 600.0,       // ~10 min: office activity
            azimuth_jitter_rad: 3f64.to_radians(),
            dropout_prob: 0.25,
            birth_prob: 0.25,
        }
    }
}

impl TemporalModel {
    /// A frozen channel (no evolution regardless of Δt) — for isolating
    /// other effects in tests and ablations.
    pub fn frozen() -> Self {
        Self {
            direct_coherence_s: f64::INFINITY,
            reflect_coherence_s: f64::INFINITY,
            azimuth_jitter_rad: 0.0,
            dropout_prob: 0.0,
            birth_prob: 0.0,
        }
    }

    /// Evolve a path set forward by `dt_s` seconds.
    ///
    /// The direct path never drops out (the paper's blocked clients keep
    /// an attenuated LoS component); reflections may wander, fade, drop
    /// or be joined by a new scatterer.
    pub fn evolve<R: Rng + ?Sized>(&self, paths: &[Path], dt_s: f64, rng: &mut R) -> Vec<Path> {
        assert!(dt_s >= 0.0, "evolve: negative time step");
        let mut out = Vec::with_capacity(paths.len() + 1);
        let mut strongest_reflection = 0.0f64;
        for p in paths {
            if let PathKind::Reflection(_) = p.kind {
                strongest_reflection = strongest_reflection.max(p.gain.abs());
            }
        }
        for p in paths {
            let tc = match p.kind {
                // Diffraction happens at fixed building corners: as
                // geometry-pinned as the LoS itself.
                PathKind::Direct | PathKind::Diffracted => self.direct_coherence_s,
                PathKind::Reflection(_) => self.reflect_coherence_s,
            };
            let rho = if tc.is_infinite() {
                1.0
            } else if tc <= 0.0 {
                0.0
            } else {
                (-dt_s / tc).exp()
            };
            let decorr = 1.0 - rho;

            let mut q = *p;
            if matches!(p.kind, PathKind::Reflection(_))
                && rng.gen::<f64>() < self.dropout_prob * decorr
            {
                continue; // path vanished
            }
            // Power-preserving AR(1) on the complex gain.
            if rho < 1.0 {
                let sigma = p.gain.abs();
                let innov = C64::new(gaussian(rng), gaussian(rng))
                    .scale(sigma * ((1.0 - rho * rho) / 2.0).sqrt());
                q.gain = q.gain.scale(rho) + innov;
            }
            // Reflections wander slightly in azimuth; LoS does not.
            if matches!(p.kind, PathKind::Reflection(_)) && self.azimuth_jitter_rad > 0.0 {
                q.arrival_az += gaussian(rng) * self.azimuth_jitter_rad * decorr;
            }
            out.push(q);
        }
        // Long-horizon birth of a new weak scatterer.
        let decorr_long = 1.0
            - if self.reflect_coherence_s.is_infinite() {
                1.0
            } else {
                (-dt_s / self.reflect_coherence_s).exp()
            };
        if strongest_reflection > 0.0 && rng.gen::<f64>() < self.birth_prob * decorr_long {
            let az = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            let amp = strongest_reflection * (0.3 + 0.4 * rng.gen::<f64>());
            let phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            // Delay/length: a plausible secondary bounce, slightly longer
            // than the longest existing path.
            let length =
                paths.iter().map(|p| p.length).fold(0.0, f64::max) * (1.1 + 0.3 * rng.gen::<f64>());
            out.push(Path {
                arrival_az: az,
                departure_az: rng.gen::<f64>() * 2.0 * std::f64::consts::PI,
                length,
                delay_s: length / crate::trace::SPEED_OF_LIGHT,
                gain: C64::from_polar(amp, phase),
                kind: PathKind::Reflection(2),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_paths() -> Vec<Path> {
        vec![
            Path {
                arrival_az: 0.5,
                departure_az: 2.0,
                length: 5.0,
                delay_s: 5.0 / crate::trace::SPEED_OF_LIGHT,
                gain: C64::from_polar(1e-3, 0.3),
                kind: PathKind::Direct,
            },
            Path {
                arrival_az: 2.2,
                departure_az: 1.0,
                length: 9.0,
                delay_s: 9.0 / crate::trace::SPEED_OF_LIGHT,
                gain: C64::from_polar(4e-4, -1.0),
                kind: PathKind::Reflection(1),
            },
            Path {
                arrival_az: 4.0,
                departure_az: 0.2,
                length: 13.0,
                delay_s: 13.0 / crate::trace::SPEED_OF_LIGHT,
                gain: C64::from_polar(2e-4, 2.0),
                kind: PathKind::Reflection(2),
            },
        ]
    }

    #[test]
    fn frozen_model_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let paths = sample_paths();
        let out = TemporalModel::frozen().evolve(&paths, 86_400.0, &mut rng);
        assert_eq!(out, paths);
    }

    #[test]
    fn zero_dt_is_identity_up_to_negligible_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let paths = sample_paths();
        let out = TemporalModel::default().evolve(&paths, 0.0, &mut rng);
        assert_eq!(out.len(), paths.len());
        for (a, b) in out.iter().zip(paths.iter()) {
            assert!(a.gain.approx_eq(b.gain, 1e-12));
            assert!((a.arrival_az - b.arrival_az).abs() < 1e-12);
        }
    }

    #[test]
    fn direct_path_survives_and_stays_put() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let paths = sample_paths();
        for dt in [1.0, 1000.0, 86_400.0] {
            let out = TemporalModel::default().evolve(&paths, dt, &mut rng);
            let direct: Vec<_> = out.iter().filter(|p| p.kind == PathKind::Direct).collect();
            assert_eq!(direct.len(), 1, "direct must survive Δt={}", dt);
            assert!(
                (direct[0].arrival_az - 0.5).abs() < 1e-12,
                "LoS azimuth must not wander"
            );
        }
    }

    #[test]
    fn short_dt_changes_little_long_dt_changes_much() {
        let model = TemporalModel::default();
        let paths = sample_paths();
        let drift = |dt: f64, seed: u64| -> f64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut acc = 0.0;
            let mut n = 0;
            for trial in 0..64 {
                let out = model.evolve(&paths, dt, &mut rng);
                let _ = trial;
                for p in out.iter().filter(|p| p.kind == PathKind::Reflection(1)) {
                    acc += (p.gain - paths[1].gain).abs() / paths[1].gain.abs();
                    n += 1;
                }
            }
            if n == 0 {
                f64::INFINITY
            } else {
                acc / n as f64
            }
        };
        let short = drift(1.0, 10);
        let long = drift(3600.0, 10);
        assert!(short < 0.2, "1 s drift should be small, got {}", short);
        assert!(
            long > 3.0 * short,
            "1 h drift {} should dwarf 1 s drift {}",
            long,
            short
        );
    }

    #[test]
    fn power_is_roughly_preserved_in_expectation() {
        let model = TemporalModel {
            dropout_prob: 0.0,
            birth_prob: 0.0,
            ..Default::default()
        };
        let paths = sample_paths();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut acc = 0.0;
        let trials = 4000;
        for _ in 0..trials {
            let out = model.evolve(&paths, 1e6, &mut rng); // fully decorrelated
            acc += out[1].gain.norm_sqr();
        }
        let mean = acc / trials as f64;
        let expect = paths[1].gain.norm_sqr();
        assert!(
            (mean / expect - 1.0).abs() < 0.15,
            "mean power ratio {}",
            mean / expect
        );
    }

    #[test]
    fn dropouts_and_births_happen_at_long_horizons() {
        let model = TemporalModel {
            dropout_prob: 0.9,
            birth_prob: 0.9,
            ..Default::default()
        };
        let paths = sample_paths();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut saw_dropout = false;
        let mut saw_birth = false;
        for _ in 0..200 {
            let out = model.evolve(&paths, 86_400.0, &mut rng);
            let n_refl = out
                .iter()
                .filter(|p| matches!(p.kind, PathKind::Reflection(_)))
                .count();
            if n_refl < 2 {
                saw_dropout = true;
            }
            if n_refl > 2 {
                saw_birth = true;
            }
        }
        assert!(saw_dropout, "expected dropouts at day scale");
        assert!(saw_birth, "expected births at day scale");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let model = TemporalModel::default();
        let paths = sample_paths();
        let a = model.evolve(&paths, 100.0, &mut ChaCha8Rng::seed_from_u64(42));
        let b = model.evolve(&paths, 100.0, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "negative time step")]
    fn negative_dt_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = TemporalModel::default().evolve(&sample_paths(), -1.0, &mut rng);
    }
}
