//! End-to-end AP churn tests: APs joining, leaving, and dying mid-run
//! must never stall a window, and the cross-AP consensus must
//! re-baseline on every membership change.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_deploy::{DeployConfig, DeployError, Deployment, Transmission};
use sa_testbed::Testbed;
use secureangle::AccessPoint;

fn window_for(
    tb: &Testbed,
    nodes: &[usize],
    clients: &[usize],
    seq: u16,
    rng: &mut ChaCha8Rng,
) -> Vec<Transmission> {
    tb.window_traffic_for(nodes, clients, seq, 0.0, rng)
        .into_iter()
        .map(Transmission::new)
        .collect()
}

/// Mid-run `remove_ap`: in-flight windows close (no deadlock), the
/// removed AP comes back with its trained state, later windows run on
/// the smaller membership, and consensus references re-baseline.
#[test]
fn mid_run_remove_ap_never_deadlocks_and_rebaselines() {
    let tb = Testbed::deployment(4, 401);
    let mut rng = ChaCha8Rng::seed_from_u64(402);
    let clients = [5usize, 7, 16];
    let all = [0usize, 1, 2, 3];
    let w0 = window_for(&tb, &all, &clients, 0, &mut rng);
    let w1 = window_for(&tb, &all, &clients, 1, &mut rng);
    let w2 = window_for(&tb, &[0, 1, 2], &clients, 2, &mut rng);
    let aps: Vec<AccessPoint> = tb.nodes.into_iter().map(|n| n.ap).collect();

    let mut deployment = Deployment::new(aps, DeployConfig::default());
    assert_eq!(deployment.live_aps(), 4);

    // Window 0 trains references; window 1 is still in flight when the
    // removal lands — it must close with its original 4-AP membership.
    let mac5 = Testbed::client_mac(5);
    deployment.run_window(w0).expect("training window");
    assert!(deployment.reference(&mac5).is_some(), "w0 trains");
    deployment.submit_window(w1).unwrap();

    let removed = deployment.remove_ap(3).expect("remove");
    assert_eq!(removed.config().position, deployment.ap_positions()[3]);
    // The removed AP drained its in-flight window first — its signature
    // store carries the auto-trained profiles from window 0.
    assert_eq!(removed.spoof.trained_count(), clients.len());
    assert_eq!(deployment.live_aps(), 3);
    assert_eq!(deployment.live_ap_ids(), vec![0, 1, 2]);
    assert_eq!(deployment.metrics().aps_removed, 1);
    // Re-baseline is immediate: the reference trained under the 4-AP
    // geometry is gone.
    assert!(
        deployment.reference(&mac5).is_none(),
        "reference survived the membership change"
    );

    let fused = deployment.collect_window().expect("in-flight window");
    assert_eq!(fused.expected_aps, 4);
    assert_eq!(fused.clients.len(), clients.len());
    for c in &fused.clients {
        assert_eq!(c.n_aps, 4, "pre-removal window lost bearings: {:?}", c);
        assert!(
            !c.consensus.is_spoof(),
            "post-rebaseline window must not false-flag: {:?}",
            c
        );
    }

    // The in-flight window's fusion re-trained from its clean fixes;
    // the next 3-AP window stays consistent with no spoof flags.
    let fused = deployment.run_window(w2).expect("post-removal window");
    assert_eq!(fused.expected_aps, 3);
    for c in &fused.clients {
        assert_eq!(c.n_aps, 3);
        assert!(c.fix.is_some(), "3-AP window must still fix: {:?}", c);
        assert!(!c.consensus.is_spoof(), "false flag after churn: {:?}", c);
    }
    assert!(deployment.reference(&mac5).is_some(), "retrain failed");

    let (report, aps) = deployment.finish();
    assert_eq!(aps.len(), 3, "three live APs come back");
    assert_eq!(report.n_aps, 4, "stable id space includes the removed AP");
    assert_eq!(report.metrics.windows, 3);
    assert_eq!(report.metrics.consensus_flags, 0);
    // The removed AP's slot holds the stats it accumulated: 2 windows.
    assert_eq!(report.per_ap[3].windows, 2);
    assert_eq!(report.per_ap[0].windows, 3);
}

/// `add_ap` mid-run: the joiner participates from the next submitted
/// window, gets a fresh id, and the consensus re-baselines.
#[test]
fn mid_run_add_ap_joins_the_next_window() {
    let tb = Testbed::deployment(4, 403);
    let mut rng = ChaCha8Rng::seed_from_u64(404);
    let clients = [5usize, 7, 9];
    let w0 = window_for(&tb, &[0, 1, 2], &clients, 0, &mut rng);
    let w1 = window_for(&tb, &[0, 1, 2, 3], &clients, 1, &mut rng);
    let mut aps: Vec<AccessPoint> = tb.nodes.into_iter().map(|n| n.ap).collect();
    let joiner = aps.pop().expect("4 APs");

    // Start with 3 APs; the fourth joins after window 0.
    let mut deployment = Deployment::new(aps, DeployConfig::default());
    let fused = deployment.run_window(w0).expect("window 0");
    assert_eq!(fused.expected_aps, 3);
    let mac5 = Testbed::client_mac(5);
    assert!(deployment.reference(&mac5).is_some());

    let new_id = deployment.add_ap(joiner);
    assert_eq!(new_id, 3);
    assert_eq!(deployment.live_aps(), 4);
    assert_eq!(deployment.metrics().aps_added, 1);
    assert!(
        deployment.reference(&mac5).is_none(),
        "references must re-baseline when the fleet grows"
    );

    let fused = deployment.run_window(w1).expect("window 1");
    assert_eq!(fused.expected_aps, 4);
    for c in &fused.clients {
        assert_eq!(c.n_aps, 4, "joiner did not contribute: {:?}", c);
        assert!(!c.consensus.is_spoof());
    }
    let (report, aps) = deployment.finish();
    assert_eq!(aps.len(), 4);
    assert_eq!(report.per_ap[3].windows, 1, "joiner saw only window 1");
    assert_eq!(report.per_ap[0].windows, 2);
}

/// A worker that dies abruptly (crash fault injection) must never
/// stall a window: pending windows close without it, membership
/// shrinks, and the run continues on the survivors.
#[test]
fn crashed_worker_never_stalls_a_window() {
    let tb = Testbed::deployment(3, 405);
    let mut rng = ChaCha8Rng::seed_from_u64(406);
    let clients = [5usize, 7];
    let all = [0usize, 1, 2];
    let w0 = window_for(&tb, &all, &clients, 0, &mut rng);
    let w1 = window_for(&tb, &all, &clients, 1, &mut rng);
    let w2 = window_for(&tb, &[0, 1], &clients, 2, &mut rng);
    let aps: Vec<AccessPoint> = tb.nodes.into_iter().map(|n| n.ap).collect();

    let mut deployment = Deployment::new(aps, DeployConfig::default());
    deployment.run_window(w0).expect("clean window");
    // Crash AP 2, then submit a window that (per FIFO) it will never
    // process: the crash message sits ahead of the window in its queue.
    deployment.crash_worker(2).expect("inject crash");
    deployment.submit_window(w1).expect("submit");
    let fused = deployment.collect_window().expect("must not deadlock");
    // The window was submitted while AP 2 still counted as live, so it
    // closes short: only the survivors' bearings arrive.
    assert_eq!(fused.expected_aps, 3);
    for c in &fused.clients {
        assert_eq!(c.n_aps, 2, "crashed AP reported from the grave: {:?}", c);
        assert!(c.fix.is_some(), "survivors must still fix: {:?}", c);
    }
    assert_eq!(deployment.live_aps(), 2);
    assert_eq!(deployment.metrics().worker_losses, 1);

    // Life goes on at 2 APs.
    let fused = deployment.run_window(w2).expect("post-crash window");
    assert_eq!(fused.expected_aps, 2);
    for c in &fused.clients {
        assert!(c.fix.is_some());
    }
    let (report, aps) = deployment.finish();
    assert_eq!(aps.len(), 2, "the crashed AP's state is gone");
    assert_eq!(report.metrics.worker_losses, 1);
    assert_eq!(report.metrics.degraded_windows, 1);
    assert_eq!(report.n_aps, 3);
}

/// Churn guard rails: unknown ids, double removal, and removing the
/// last AP are refused.
#[test]
fn churn_guard_rails() {
    let tb = Testbed::deployment(2, 407);
    let aps: Vec<AccessPoint> = tb.nodes.into_iter().map(|n| n.ap).collect();
    let mut deployment = Deployment::new(aps, DeployConfig::default());
    assert_eq!(
        deployment.remove_ap(9).unwrap_err(),
        DeployError::UnknownAp { ap_id: 9 }
    );
    deployment.remove_ap(0).expect("first removal");
    assert_eq!(
        deployment.remove_ap(0).unwrap_err(),
        DeployError::UnknownAp { ap_id: 0 }
    );
    assert_eq!(deployment.remove_ap(1).unwrap_err(), DeployError::LastAp);
    // A 2-capture transmission no longer matches the 1-AP membership.
    let got = deployment.submit_window(vec![Transmission {
        per_ap: vec![
            std::sync::Arc::new(sa_linalg::CMat::zeros(8, 16)),
            std::sync::Arc::new(sa_linalg::CMat::zeros(8, 16)),
        ],
    }]);
    assert_eq!(
        got.unwrap_err(),
        DeployError::ApCountMismatch {
            expected: 1,
            got: 2
        }
    );
    let (report, aps) = deployment.finish();
    assert_eq!(aps.len(), 1);
    assert_eq!(report.metrics.aps_removed, 1);
}
