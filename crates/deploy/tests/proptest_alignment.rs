//! Property-based tests for the skew-tolerant window aligner: whatever
//! per-AP clock offsets and drifts a deployment is configured with,
//! alignment must map every report back to the window it was dispatched
//! for, deterministically, and must accept every label that stays
//! within tolerance of the learned offset.

use proptest::prelude::*;
use sa_deploy::align::{Aligned, SkewAligner};
use sa_deploy::ApSkew;

/// Run one AP's full report stream through an aligner and collect the
/// outcomes.
fn run_ap(aligner: &mut SkewAligner, ap: usize, skew: &ApSkew, n_windows: u64) -> Vec<Aligned> {
    (0..n_windows)
        .map(|w| {
            aligner
                .align(ap, skew.window_label(w), Some(skew.seq_label(w * 3)))
                .expect("dispatched")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any constant per-AP offset — however large, whatever the
    /// tolerance — aligns exactly: the offset is learned from the first
    /// report, every later label matches it, every report is accepted
    /// and mapped to its dispatch-order global window, and the sequence
    /// delta recovers the global sequence numbers.
    #[test]
    fn constant_offsets_align_exactly_for_any_magnitude(
        offsets in proptest::collection::vec((-10_000i64..10_000, 0u64..10_000), 1..5),
        n_windows in 1u64..24,
        tolerance in 0u64..4,
    ) {
        let mut aligner = SkewAligner::new(tolerance);
        let skews: Vec<ApSkew> = offsets
            .iter()
            .map(|&(w, s)| ApSkew { window_offset: w, seq_offset: s, drift_ppw: 0.0 })
            .collect();
        for ap in 0..skews.len() {
            prop_assert_eq!(aligner.add_ap(), ap);
            for w in 0..n_windows {
                aligner.note_dispatch(ap, w, Some(w * 3));
            }
        }
        for (ap, skew) in skews.iter().enumerate() {
            for (w, got) in run_ap(&mut aligner, ap, skew, n_windows).iter().enumerate() {
                prop_assert_eq!(got.global, w as u64);
                prop_assert!(got.accepted, "ap {} window {} rejected: {:?}", ap, w, got);
                prop_assert_eq!(got.deviation, 0);
                // local seq − delta recovers the global seq.
                let local = skew.seq_label(w as u64 * 3) as i64;
                prop_assert_eq!((local - got.seq_delta) as u64, w as u64 * 3);
            }
        }
    }

    /// Alignment is a pure function of each AP's own report stream:
    /// interleaving the APs' reports differently (windows-outer vs
    /// APs-outer) produces identical per-AP outcomes. This is the
    /// determinism the deployment's byte-reproducibility rests on —
    /// thread scheduling decides the interleaving at run time.
    #[test]
    fn alignment_is_independent_of_cross_ap_interleaving(
        offsets in proptest::collection::vec(-50i64..50, 2..5),
        n_windows in 1u64..16,
        tolerance in 0u64..4,
    ) {
        let skews: Vec<ApSkew> = offsets
            .iter()
            .map(|&w| ApSkew { window_offset: w, seq_offset: 0, drift_ppw: 0.0 })
            .collect();
        let build = || {
            let mut a = SkewAligner::new(tolerance);
            for ap in 0..skews.len() {
                a.add_ap();
                for w in 0..n_windows {
                    a.note_dispatch(ap, w, None);
                }
            }
            a
        };
        // Order A: AP-major. Order B: window-major.
        let mut order_a = build();
        let mut got_a = vec![Vec::new(); skews.len()];
        for (ap, skew) in skews.iter().enumerate() {
            got_a[ap] = run_ap(&mut order_a, ap, skew, n_windows);
        }
        let mut order_b = build();
        let mut got_b = vec![Vec::new(); skews.len()];
        for w in 0..n_windows {
            for (ap, skew) in skews.iter().enumerate() {
                got_b[ap].push(order_b.align(ap, skew.window_label(w), None).expect("dispatched"));
            }
        }
        for ap in 0..skews.len() {
            prop_assert_eq!(&got_a[ap], &got_b[ap], "ap {} diverged across interleavings", ap);
        }
    }

    /// Gentle drift: the label wanders by `trunc(drift · w)` windows,
    /// slowly enough that every step stays inside a ≥2-window
    /// tolerance. The aligner learns the rate from accepted reports,
    /// so *no* window is ever rejected — however long the run — and
    /// the residual deviation against the learned model stays bounded.
    /// Under the old constant-offset-only policy the accumulated drift
    /// eventually walked every such AP out of tolerance.
    #[test]
    fn learned_drift_keeps_a_gently_wandering_clock_accepted(
        offset in -100i64..100,
        drift in -0.4f64..0.4,
        tolerance in 2u64..5,
        n_windows in 1u64..64,
    ) {
        let skew = ApSkew { window_offset: offset, seq_offset: 0, drift_ppw: drift };
        let mut aligner = SkewAligner::new(tolerance);
        let ap = aligner.add_ap();
        for w in 0..n_windows {
            aligner.note_dispatch(ap, w, None);
        }
        for w in 0..n_windows {
            let got = aligner.align(ap, skew.window_label(w), None).expect("dispatched");
            prop_assert_eq!(got.global, w);
            prop_assert!(
                got.deviation.unsigned_abs() <= 2,
                "window {} deviation {} under learned drift",
                w, got.deviation
            );
            prop_assert!(got.accepted, "window {} rejected: {:?}", w, got);
        }
    }

    /// Steep drift: a clock gaining more skew per window than the
    /// tolerance allows never produces an accepted drifted report, so
    /// the rate is never learned and every drifted label is rejected —
    /// while still being attributed to its FIFO global window for
    /// per-AP blame.
    #[test]
    fn drift_steeper_than_tolerance_stays_rejected(
        offset in -100i64..100,
        drift in 2.0f64..4.0,
        tolerance in 0u64..2,
        n_windows in 2u64..32,
    ) {
        let skew = ApSkew { window_offset: offset, seq_offset: 0, drift_ppw: drift };
        let mut aligner = SkewAligner::new(tolerance);
        let ap = aligner.add_ap();
        for w in 0..n_windows {
            aligner.note_dispatch(ap, w, None);
        }
        for w in 0..n_windows {
            let got = aligner.align(ap, skew.window_label(w), None).expect("dispatched");
            prop_assert_eq!(got.global, w);
            prop_assert_eq!(got.accepted, w == 0, "window {}: {:?}", w, got);
        }
    }
}
