//! Deploy-level tests for the sharded fusion/tracking stage and the
//! sharded stage-1 decode pool: every shard-count combination must
//! produce byte-identical fused windows and reports — sharding changes
//! the parallelism, never the numbers — and the per-window client fix
//! ordering (sorted by MAC) is part of that contract.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_deploy::{DeployConfig, Deployment, FusedWindow, Transmission};
use sa_testbed::Testbed;
use secureangle::AccessPoint;

fn split(tb: Testbed) -> Vec<AccessPoint> {
    tb.nodes.into_iter().map(|n| n.ap).collect()
}

fn window(tb: &Testbed, clients: &[usize], seq: u16, rng: &mut ChaCha8Rng) -> Vec<Transmission> {
    tb.window_traffic(clients, seq, 0.0, rng)
        .into_iter()
        .map(Transmission::new)
        .collect()
}

fn masked_report(r: &sa_deploy::DeploymentReport) -> String {
    let mut r = r.clone();
    r.metrics.max_fusion_queue_depth = 0;
    r.metrics.report_backpressure_events = 0;
    r.metrics.ingest_backpressure_events = 0;
    for ap in &mut r.per_ap {
        ap.backpressure_events = 0;
    }
    format!("{:?}", r)
}

fn run(decode_shards: usize, fusion_shards: usize) -> (Vec<FusedWindow>, String) {
    let tb = Testbed::deployment(3, 331);
    let mut rng = ChaCha8Rng::seed_from_u64(332);
    let clients = [5usize, 7, 19];
    let windows: Vec<Vec<Transmission>> = (0..2)
        .map(|w| window(&tb, &clients, w as u16, &mut rng))
        .collect();
    let cfg = DeployConfig {
        decode_shards,
        fusion_shards,
        ..DeployConfig::default()
    };
    let mut deployment = Deployment::new(split(tb), cfg);
    let fused: Vec<_> = windows
        .into_iter()
        .map(|w| deployment.run_window(w).expect("window"))
        .collect();
    let (report, _) = deployment.finish();
    (fused, masked_report(&report))
}

/// The tentpole contract: decode-shard and fusion-shard counts are
/// performance knobs only. Every combination fuses the same bytes as
/// the serial baseline, and the fix ordering inside each window stays
/// sorted by client MAC.
#[test]
fn shard_counts_never_change_fused_bytes() {
    let (base_fused, base_report) = run(1, 1);
    assert_eq!(base_fused.len(), 2);
    for f in &base_fused {
        assert_eq!(f.clients.len(), 3);
        // Satellite regression: the per-shard drain + merge must keep
        // the per-window fix ordering sorted by MAC.
        assert!(
            f.clients.windows(2).all(|w| w[0].mac < w[1].mac),
            "fixes out of MAC order in window {}",
            f.window
        );
    }
    for (decode_shards, fusion_shards) in [(1, 4), (4, 1), (2, 16), (4, 4)] {
        let (fused, report) = run(decode_shards, fusion_shards);
        assert_eq!(
            format!("{:?}", base_fused),
            format!("{:?}", fused),
            "decode_shards={} fusion_shards={} changed fused output",
            decode_shards,
            fusion_shards
        );
        assert_eq!(
            base_report, report,
            "decode_shards={} fusion_shards={} changed the report",
            decode_shards, fusion_shards
        );
    }
}
