//! End-to-end byzantine-AP quarantine: one AP starts lying about its
//! bearings (+15° on everything — valid checksums, so only cross-AP
//! evidence can catch it), the health layer quarantines it within a
//! few windows, fused accuracy recovers to the clean 3 m bound, and
//! the cross-AP spoof-consensus catch still fires with the liar
//! excluded. The quarantine is visible end to end: fused windows,
//! report counters, telemetry snapshot, and the flight recorder's
//! `explain(mac)` post-mortem.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_channel::geom::pt;
use sa_channel::pattern::TxAntenna;
use sa_deploy::faults::{FaultEvent, FaultPlan};
use sa_deploy::{DeployConfig, Deployment, HealthConfig, TelemetryConfig, Transmission};
use sa_testbed::Testbed;

const N_APS: usize = 4;
const SEED: u64 = 10_2010;
/// The lying AP. Not AP 0: the spoof scenario below aims the attacker
/// along AP 0's line of sight, and the byzantine AP must be a
/// different one so the two failure modes compose.
const BYZ: usize = 3;
/// Bias onset: window 0 trains signatures and consensus references
/// cleanly, the lies start immediately after.
const ONSET: u64 = 1;
const VICTIM: usize = 5;
const ATTACK_RANGE_M: f64 = 3.5;

#[test]
fn byzantine_ap_is_quarantined_and_the_fleet_recovers() {
    let tb = Testbed::deployment(N_APS, SEED);
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x5eed);
    let clients: Vec<usize> = vec![2, 5, 7, 12, 11, 14, 17, 20];
    let others: Vec<usize> = clients.iter().copied().filter(|&c| c != VICTIM).collect();

    // Windows 0..7: steady traffic from every client. Window 7: the
    // victim goes quiet and an attacker replays its MAC from beyond it
    // on the AP0 ray, power-matched so AP0's signature check admits it.
    let mut windows: Vec<Vec<Transmission>> = (0..7)
        .map(|w| {
            tb.window_traffic(&clients, w as u16, 0.0, &mut rng)
                .into_iter()
                .map(Transmission::new)
                .collect()
        })
        .collect();
    let vpos = tb.office.client(VICTIM).position;
    let ap0 = tb.nodes[0].ap.config().position;
    let az = ap0.azimuth_to(vpos);
    let apos = pt(
        vpos.x + ATTACK_RANGE_M * az.cos(),
        vpos.y + ATTACK_RANGE_M * az.sin(),
    );
    let tx_power = tb.rx_power_from(0, vpos) / tb.rx_power_from(0, apos);
    let frame = tb.client_frame(VICTIM, 99);
    let mut attack_window: Vec<Transmission> = tb
        .window_traffic(&others, 7, 0.0, &mut rng)
        .into_iter()
        .map(Transmission::new)
        .collect();
    attack_window.push(Transmission::new(tb.transmission(
        apos,
        &TxAntenna::Omni,
        tx_power,
        &frame,
        0.0,
        &mut rng,
    )));
    windows.push(attack_window);

    let aps: Vec<_> = tb.nodes.into_iter().map(|n| n.ap).collect();
    let cfg = DeployConfig {
        health: HealthConfig::enabled(),
        faults: Some(FaultPlan {
            seed: SEED,
            events: vec![FaultEvent::ByzantineBias {
                ap: BYZ,
                from_window: ONSET,
                bias_deg: 15.0,
            }],
        }),
        telemetry: TelemetryConfig::full(),
        ..DeployConfig::default()
    };
    let mut deployment = Deployment::new(aps, cfg);
    let mut fused = Vec::new();
    for w in windows {
        fused.push(deployment.run_window(w).expect("window closes"));
    }

    // ---- The quarantine lands, fast, on the right AP. -----------------
    // Score path: 1.0 − 0.25/bad window crosses the 0.35 threshold on
    // the third biased window, so the exclusion shows up in the fused
    // output no later than window ONSET + 3.
    let first_quarantined = fused
        .iter()
        .position(|f| f.quarantined_aps > 0)
        .expect("byzantine AP never quarantined") as u64;
    assert!(
        first_quarantined <= ONSET + 3,
        "quarantine took until window {first_quarantined}"
    );
    assert_eq!(deployment.quarantined_aps(), vec![BYZ]);
    assert!(deployment.health_score(BYZ) < 0.5);
    // Pre-quarantine, the per-AP bearing residuals already single the
    // liar out — the evidence trail an operator would follow: a
    // *majority* of its bearings miss the fused fix, where honest APs
    // only show the odd multipath outlier.
    let biased = fused[ONSET as usize]
        .ap_bearing_errors
        .iter()
        .find(|e| e.ap_id == BYZ)
        .expect("biased AP contributed bearings");
    assert!(
        biased.over_warn * 2 > biased.bearings,
        "biased AP evidence not a majority: {:?}",
        biased
    );

    // ---- Fused accuracy recovers to the clean 3 m bound. --------------
    let office = Testbed::deployment(N_APS, SEED).office;
    let steady = &fused[6];
    assert_eq!(steady.quarantined_aps, 1);
    let mut within = 0usize;
    for c in &steady.clients {
        let spec = office
            .clients
            .iter()
            .find(|s| Testbed::client_mac(s.id) == c.mac)
            .expect("client for mac");
        let fix = c.fix.expect("steady-state fix");
        if fix.position.dist(office.client(spec.id).position) <= 3.0 {
            within += 1;
        }
        assert!(
            !c.consensus.is_spoof(),
            "false consensus flag post-quarantine on {:?}",
            c.mac
        );
    }
    assert!(
        within * 10 >= steady.clients.len() * 9,
        "only {}/{} clients within 3 m after quarantine",
        within,
        steady.clients.len()
    );

    // ---- The consensus catch still fires on three honest APs. ---------
    let mac = Testbed::client_mac(VICTIM);
    let attack_fix = fused[7]
        .clients
        .iter()
        .find(|c| c.mac == mac)
        .expect("attack window fuses the victim MAC");
    assert!(
        attack_fix.consensus.is_spoof(),
        "consensus missed the attacker with the liar quarantined: {:?}",
        attack_fix
    );

    // ---- The quarantine is observable end to end. ---------------------
    let snapshot = deployment.telemetry_snapshot();
    assert!(snapshot.counter_total("fleet.aps_quarantined").unwrap_or(0) >= 1);
    let score_milli = snapshot
        .gauge_value("ap.health_score", &[("ap", &BYZ.to_string())])
        .expect("health score gauge");
    assert!(
        score_milli < 500,
        "byzantine AP health gauge at {score_milli} milli"
    );
    // Honest APs take some collateral penalties while the liar drags
    // the fix (and again on the attack window), but they stay clear of
    // quarantine and clearly above the liar.
    let honest_milli = snapshot
        .gauge_value("ap.health_score", &[("ap", "0")])
        .expect("honest health score gauge");
    assert!(
        honest_milli > 350 && honest_milli > score_milli,
        "honest AP scored {honest_milli} milli vs liar {score_milli}"
    );
    assert!(snapshot.gauge_value("fusion.rebaselines", &[]).unwrap_or(0) >= 1);
    // The flight recorder's post-mortem shows the withheld evidence.
    let explain = deployment.explain(&mac).expect("recorded client");
    assert!(
        explain.contains("quarantined"),
        "explain() does not surface the quarantine:\n{explain}"
    );

    let (report, _) = deployment.finish();
    assert_eq!(report.metrics.aps_quarantined, 1);
    assert_eq!(report.metrics.aps_readmitted, 0);
    assert_eq!(report.per_ap[BYZ].quarantined, 1);
    assert!(report.metrics.consensus_flags >= 1);
    assert!(
        report
            .telemetry
            .counter_total("ap.quarantined")
            .unwrap_or(0)
            >= 1
    );
}

/// The flip side: a quarantined AP that starts behaving again earns its
/// way back in after the configured clean streak, and the re-admission
/// is counted and visible.
#[test]
fn recovered_ap_is_readmitted_after_a_clean_streak() {
    let tb = Testbed::deployment(N_APS, SEED);
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0xfeed);
    let clients: Vec<usize> = vec![2, 5, 7, 12, 11, 14, 17, 20];
    // Bias windows 1..=3 push the score to quarantine (0.25 after three
    // penalties); the fault then *ends*, and the withheld-but-scored
    // clean windows rebuild the streak until re-admission.
    let windows: Vec<Vec<Transmission>> = (0..14)
        .map(|w| {
            tb.window_traffic(&clients, w as u16, 0.0, &mut rng)
                .into_iter()
                .map(Transmission::new)
                .collect()
        })
        .collect();
    let aps: Vec<_> = tb.nodes.into_iter().map(|n| n.ap).collect();
    let cfg = DeployConfig {
        health: HealthConfig {
            readmit_after_clean: 4,
            ..HealthConfig::enabled()
        },
        faults: Some(FaultPlan {
            seed: SEED,
            events: vec![
                FaultEvent::ByzantineBias {
                    ap: BYZ,
                    from_window: 1,
                    bias_deg: 15.0,
                },
                // A second, opposite bias event cancels the first from
                // window 4 on: the AP goes honest again.
                FaultEvent::ByzantineBias {
                    ap: BYZ,
                    from_window: 4,
                    bias_deg: -15.0,
                },
            ],
        }),
        ..DeployConfig::default()
    };
    let mut deployment = Deployment::new(aps, cfg);
    let mut fused = Vec::new();
    for w in windows {
        fused.push(deployment.run_window(w).expect("window closes"));
    }
    assert!(
        fused.iter().any(|f| f.quarantined_aps > 0),
        "the byzantine phase never quarantined the AP"
    );
    assert!(
        fused.last().expect("windows").quarantined_aps == 0,
        "the clean streak never readmitted the AP"
    );
    assert!(deployment.quarantined_aps().is_empty());
    let (report, _) = deployment.finish();
    assert_eq!(report.metrics.aps_quarantined, 1);
    assert_eq!(report.metrics.aps_readmitted, 1);
    assert_eq!(report.per_ap[BYZ].readmitted, 1);
}
