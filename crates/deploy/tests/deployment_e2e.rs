//! End-to-end tests for the deployment coordinator against the
//! simulated office testbed.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_deploy::{DeployConfig, DeployError, Deployment, LinkConfig, Transmission};
use sa_testbed::Testbed;
use secureangle::AccessPoint;

/// Pull the APs out of a testbed, keeping the office around.
fn split(tb: Testbed) -> (sa_testbed::Office, Vec<AccessPoint>) {
    let Testbed { office, nodes, .. } = tb;
    (office, nodes.into_iter().map(|n| n.ap).collect())
}

fn window(tb: &Testbed, clients: &[usize], seq: u16, rng: &mut ChaCha8Rng) -> Vec<Transmission> {
    tb.window_traffic(clients, seq, 0.0, rng)
        .into_iter()
        .map(Transmission::new)
        .collect()
}

#[test]
fn four_ap_deployment_localizes_clients() {
    let tb = Testbed::deployment(4, 301);
    let mut rng = ChaCha8Rng::seed_from_u64(302);
    let clients = [5usize, 7, 9, 16, 19, 20];
    let windows: Vec<Vec<Transmission>> = (0..2)
        .map(|w| window(&tb, &clients, w as u16, &mut rng))
        .collect();
    let (office, aps) = split(tb);

    let mut deployment = Deployment::new(aps, DeployConfig::default());
    for w in windows {
        let fused = deployment.run_window(w).expect("window");
        assert_eq!(fused.clients.len(), clients.len());
        for c in &fused.clients {
            assert_eq!(c.n_aps, 4, "client {:?} heard by {} APs", c.mac, c.n_aps);
        }
    }
    let (report, aps) = deployment.finish();
    assert_eq!(report.metrics.windows, 2);
    assert_eq!(report.metrics.transmissions, 12);
    assert_eq!(report.metrics.decode_failures, 0);
    assert_eq!(report.metrics.packets_dispatched, 48);
    assert_eq!(report.clients.len(), clients.len());

    // Every client's final fix lands near its true position.
    for (summary, &id) in report.clients.iter().zip(&clients) {
        assert_eq!(summary.mac, Testbed::client_mac(id));
        assert_eq!(summary.fixes, 2);
        let track = summary.last_track.expect("track");
        let truth = office.client(id).position;
        assert!(
            track.position.dist(truth) < 2.0,
            "client {} fused at {:?}, truth {:?}",
            id,
            track.position,
            truth
        );
    }

    // The APs come back with their auto-trained signature stores.
    for ap in &aps {
        assert_eq!(ap.spoof.trained_count(), clients.len());
    }
}

#[test]
fn pipelined_windows_buffer_in_fusion() {
    let tb = Testbed::deployment(2, 303);
    let mut rng = ChaCha8Rng::seed_from_u64(304);
    let clients = [5usize, 7];
    let w0 = window(&tb, &clients, 0, &mut rng);
    let w1 = window(&tb, &clients, 1, &mut rng);
    let w2 = window(&tb, &clients, 2, &mut rng);
    let (_, aps) = split(tb);

    let mut deployment = Deployment::new(aps, DeployConfig::default());
    // Three windows in flight before the first collect: later windows'
    // reports buffer in the fusion stage while window 0 closes.
    deployment.submit_window(w0).unwrap();
    deployment.submit_window(w1).unwrap();
    deployment.submit_window(w2).unwrap();
    for expect in 0..3u64 {
        let fused = deployment.collect_window().expect("window");
        assert_eq!(fused.window, expect);
        assert_eq!(fused.clients.len(), clients.len());
    }
    assert!(deployment.collect_window().is_err());
    let (report, _) = deployment.finish();
    assert_eq!(report.metrics.windows, 3);
}

#[test]
fn deep_pipelining_on_tiny_channels_does_not_deadlock() {
    // Regression: with capacity-1 channels and many windows submitted
    // before any collect, the report channel fills while the worker
    // input queue is full — the coordinator must drain reports while
    // it waits instead of deadlocking on a blocking send.
    let tb = Testbed::deployment(2, 309);
    let mut rng = ChaCha8Rng::seed_from_u64(310);
    let windows: Vec<Vec<Transmission>> = (0..6)
        .map(|w| window(&tb, &[5], w as u16, &mut rng))
        .collect();
    let (_, aps) = split(tb);
    let cfg = DeployConfig {
        channel_capacity: 1,
        ..DeployConfig::default()
    };
    let mut deployment = Deployment::new(aps, cfg);
    for w in windows {
        deployment.submit_window(w).expect("submit");
    }
    for expect in 0..6u64 {
        let fused = deployment.collect_window().expect("collect");
        assert_eq!(fused.window, expect);
    }
    let (report, _) = deployment.finish();
    assert_eq!(report.metrics.windows, 6);
}

/// A harshly lossy report link with no retries: windows still close
/// (the end-of-window marker rides the reliable control path), fusion
/// degrades to the surviving bearings, and the loss accounting is
/// deterministic across runs.
#[test]
fn lossy_reports_degrade_windows_without_stalling() {
    let run = || {
        let tb = Testbed::deployment(3, 311);
        let mut rng = ChaCha8Rng::seed_from_u64(312);
        let windows: Vec<Vec<Transmission>> = (0..6)
            .map(|w| window(&tb, &[5, 7], w as u16, &mut rng))
            .collect();
        let (_, aps) = split(tb);
        let cfg = DeployConfig {
            link: LinkConfig {
                loss_rate: 0.5,
                retry_limit: 0,
                seed: 99,
            },
            ..DeployConfig::default()
        };
        let mut deployment = Deployment::new(aps, cfg);
        let mut fused = Vec::new();
        for w in windows {
            fused.push(deployment.run_window(w).expect("window closes"));
        }
        let (report, _) = deployment.finish();
        (fused, report)
    };
    let (fused, report) = run();
    assert_eq!(report.metrics.windows, 6);
    // At 50% loss over 18 (ap, window) reports, losses are certain.
    assert!(report.metrics.reports_lost > 0, "{:?}", report.metrics);
    assert!(report.metrics.degraded_windows > 0);
    assert_eq!(
        report.per_ap.iter().map(|s| s.reports_lost).sum::<u64>(),
        report.metrics.reports_lost
    );
    // No retries configured: every drop is a lost report, none are
    // retransmits.
    for s in &report.per_ap {
        assert_eq!(s.report_retransmits, 0);
        assert_eq!(s.report_drops, s.reports_lost);
    }
    for f in &fused {
        assert!(f.lost_reports <= 3);
        assert_eq!(f.expected_aps, 3);
        // Degraded windows carry fewer bearings but never block: each
        // client appears with whatever APs survived.
        for c in &f.clients {
            assert!(c.n_aps + f.lost_reports >= 1);
        }
    }
    // Loss draws are seeded per AP: the whole degraded run is
    // byte-deterministic.
    let (fused2, report2) = run();
    assert_eq!(format!("{:?}", fused), format!("{:?}", fused2));
    assert_eq!(report.metrics.reports_lost, report2.metrics.reports_lost);
    assert_eq!(
        report.metrics.degraded_windows,
        report2.metrics.degraded_windows
    );
}

/// With a retry budget, retransmission recovers every drop at moderate
/// loss: the fused output is byte-identical to a reliable-link run,
/// and the drops show up only in the link-health counters.
#[test]
fn retransmits_recover_moderate_loss_exactly() {
    let run = |link: LinkConfig| {
        let tb = Testbed::deployment(2, 313);
        let mut rng = ChaCha8Rng::seed_from_u64(314);
        let windows: Vec<Vec<Transmission>> = (0..8)
            .map(|w| window(&tb, &[5, 7], w as u16, &mut rng))
            .collect();
        let (_, aps) = split(tb);
        let cfg = DeployConfig {
            link,
            ..DeployConfig::default()
        };
        let mut deployment = Deployment::new(aps, cfg);
        let fused: Vec<_> = windows
            .into_iter()
            .map(|w| deployment.run_window(w).expect("window"))
            .collect();
        let (report, _) = deployment.finish();
        (fused, report)
    };
    let (clean_fused, clean_report) = run(LinkConfig::default());
    let lossy = LinkConfig {
        loss_rate: 0.3,
        retry_limit: 8,
        seed: 41,
    };
    let (lossy_fused, lossy_report) = run(lossy);
    // 16 reports at 30% loss: some first attempts drop…
    assert!(
        lossy_report.per_ap.iter().any(|s| s.report_retransmits > 0),
        "no retransmits at 30% loss: {:?}",
        lossy_report.per_ap
    );
    // …but an 8-retry budget recovers them all (p_lose ≈ 0.3⁹ ≈ 2e-5).
    assert_eq!(lossy_report.metrics.reports_lost, 0);
    assert_eq!(
        format!("{:?}", clean_fused),
        format!("{:?}", lossy_fused),
        "recovered loss must not change fused output"
    );
    assert_eq!(clean_report.metrics.fixes, lossy_report.metrics.fixes);
}

/// A clock drifting faster than the tolerance lets the aligner learn
/// its rate walks out: those reports are rejected (attributed per AP
/// so the operator can find the bad clock), windows still close, and
/// the other AP keeps fusing. A *gentle* drift — even a full window
/// gained per window — is learned as a rate and never rejected.
#[test]
fn runaway_drift_is_rejected_per_ap_while_gentle_drift_is_learned() {
    let run = |drift_ppw: f64| {
        let tb = Testbed::deployment(2, 315);
        let mut rng = ChaCha8Rng::seed_from_u64(316);
        let windows: Vec<Vec<Transmission>> = (0..4)
            .map(|w| window(&tb, &[5], w as u16, &mut rng))
            .collect();
        let (_, aps) = split(tb);
        let cfg = DeployConfig {
            max_skew_windows: 1,
            ..DeployConfig::default()
        };
        let skews = vec![
            sa_deploy::ApSkew::NONE,
            sa_deploy::ApSkew {
                window_offset: 0,
                seq_offset: 0,
                drift_ppw,
            },
        ];
        let mut deployment = Deployment::with_skews(aps, cfg, skews);
        let fused: Vec<_> = windows
            .into_iter()
            .map(|w| deployment.run_window(w).expect("window closes"))
            .collect();
        (fused, deployment.finish().0)
    };
    // AP 1 gains 2.5 windows of skew every window: the first drifted
    // label already exceeds the ±1 tolerance, so the rate is never
    // learned from an accepted report and windows 1-3 are rejected.
    let (fused, report) = run(2.5);
    assert_eq!(fused[0].skew_rejected, 0);
    for (w, f) in fused.iter().enumerate().skip(1) {
        assert_eq!(f.skew_rejected, 1, "window {}", w);
    }
    // The drifting AP's bearings vanish from the rejected windows; the
    // healthy AP's are still there.
    assert_eq!(fused[2].bearings, 1);
    assert_eq!(report.metrics.skew_rejections, 3);
    assert_eq!(report.metrics.degraded_windows, 3);
    // Attribution: the failure-mode table's "which AP is drifting".
    assert_eq!(report.per_ap[0].skew_rejections, 0);
    assert_eq!(report.per_ap[1].skew_rejections, 3);
    // A window-per-window drift stays inside the tolerance long enough
    // for the rate to be learned: nothing is ever rejected.
    let (fused, report) = run(1.0);
    assert!(fused.iter().all(|f| f.skew_rejected == 0));
    assert_eq!(report.metrics.skew_rejections, 0);
    assert_eq!(report.metrics.degraded_windows, 0);
}

#[test]
fn ap_count_mismatch_is_rejected() {
    let tb = Testbed::deployment(3, 305);
    let mut rng = ChaCha8Rng::seed_from_u64(306);
    let mut txs = window(&tb, &[5], 0, &mut rng);
    txs[0].per_ap.pop();
    let (_, aps) = split(tb);
    let mut deployment = Deployment::new(aps, DeployConfig::default());
    assert_eq!(
        deployment.submit_window(txs).unwrap_err(),
        DeployError::ApCountMismatch {
            expected: 3,
            got: 2
        }
    );
    assert_eq!(
        deployment.collect_window().unwrap_err(),
        DeployError::NothingSubmitted
    );
}

#[test]
fn undecodable_transmissions_are_counted_and_skipped() {
    let tb = Testbed::deployment(2, 307);
    let mut rng = ChaCha8Rng::seed_from_u64(308);
    let mut txs = window(&tb, &[5], 0, &mut rng);
    // A noise-only "transmission" no AP can decode.
    let noise: Vec<sa_linalg::CMat> = (0..2)
        .map(|_| {
            sa_linalg::CMat::from_fn(8, 600, |_, _| sa_sigproc::noise::cn_sample(&mut rng, 1.0))
        })
        .collect();
    txs.push(Transmission::new(noise));
    let (_, aps) = split(tb);
    let mut deployment = Deployment::new(aps, DeployConfig::default());
    let fused = deployment.run_window(txs).expect("window");
    assert_eq!(fused.clients.len(), 1);
    let (report, _) = deployment.finish();
    assert_eq!(report.metrics.transmissions, 2);
    assert_eq!(report.metrics.decode_failures, 1);
}

/// Streamed windows (`windows_in_flight ≥ 2`) overlap the coordinator's
/// stage-1 decode with the workers' DSP — and must not change a single
/// byte of the fused output, in clean *and* degraded (lossy + skewed)
/// deployments.
#[test]
fn streamed_windows_are_byte_identical_to_sequential() {
    let degraded = DeployConfig {
        link: LinkConfig {
            loss_rate: 0.2,
            retry_limit: 1,
            seed: 909,
        },
        max_skew_windows: 2,
        ..DeployConfig::default()
    };
    for base_cfg in [DeployConfig::default(), degraded] {
        // Same traffic for every depth: regenerate from the same seeds.
        let make = || {
            let tb = Testbed::deployment(3, 311);
            let mut rng = ChaCha8Rng::seed_from_u64(312);
            let clients = [5usize, 7, 19];
            let windows: Vec<Vec<Transmission>> = (0..6)
                .map(|w| window(&tb, &clients, w as u16, &mut rng))
                .collect();
            let (_, aps) = split(tb);
            (aps, windows)
        };

        let run = |depth: usize| {
            let (aps, windows) = make();
            let cfg = DeployConfig {
                windows_in_flight: depth,
                ..base_cfg.clone()
            };
            let mut deployment = Deployment::new(aps, cfg);
            let fused = deployment.run_stream(windows).expect("stream");
            // Streaming must actually be engaged: nothing pending at the
            // end, every window fused, in submission order.
            assert_eq!(deployment.pending_windows(), 0);
            let (report, _) = deployment.finish();
            (fused, report)
        };

        let (seq, seq_report) = run(1);
        assert_eq!(seq.len(), 6);
        for (w, fused) in seq.iter().enumerate() {
            assert_eq!(fused.window, w as u64);
        }
        for depth in [2usize, 4] {
            let (streamed, report) = run(depth);
            assert_eq!(
                streamed, seq,
                "depth {} changed fused output (loss {})",
                depth, base_cfg.link.loss_rate
            );
            // Scheduling counters aside, the reports agree too.
            assert_eq!(report.metrics.windows, seq_report.metrics.windows);
            assert_eq!(report.metrics.fixes, seq_report.metrics.fixes);
            assert_eq!(report.metrics.reports_lost, seq_report.metrics.reports_lost);
        }
    }
}
