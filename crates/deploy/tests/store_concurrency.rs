//! Multi-thread smoke tests for `ShardedSignatureStore` under the
//! deployment's concurrency model: one store per AP worker thread,
//! disjoint MAC populations, loom-free (plain `std::thread`).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_aoa::pseudospectrum::Pseudospectrum;
use sa_deploy::{DeployConfig, Deployment, Transmission};
use sa_mac::{AccessControlList, AclPolicy, MacAddr};
use sa_testbed::Testbed;
use secureangle::signature::{AoaSignature, SignatureTracker};
use secureangle::store::ShardedSignatureStore;

fn sig(center: f64) -> AoaSignature {
    let angles: Vec<f64> = (0..360).map(|i| i as f64).collect();
    let values: Vec<f64> = angles
        .iter()
        .map(|&a| {
            let d = sa_aoa::pseudospectrum::angle_diff_deg(a, center, true);
            (-d * d / 40.0).exp() + 1e-4
        })
        .collect();
    AoaSignature::from_spectrum(&Pseudospectrum::new(angles, values, true))
}

/// Eight raw threads, each hammering its own store with a disjoint
/// 64-MAC population (insert, flag, churn): shard occupancy totals must
/// match the surviving insert counts on every thread, and shard
/// assignment must agree across threads (the seedless FNV-1a hash has
/// no per-process or per-thread state).
#[test]
fn eight_threads_hammer_disjoint_macs() {
    const THREADS: u32 = 8;
    const MACS_PER_THREAD: u32 = 64;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let store = ShardedSignatureStore::new(16);
                let base = 1000 + t * MACS_PER_THREAD;
                // Hammer: train everyone, flag half, churn a third.
                for i in 0..MACS_PER_THREAD {
                    let mac = MacAddr::local_from_index(base + i);
                    store.insert(mac, SignatureTracker::new(sig(i as f64), 0.2));
                    if i % 2 == 0 {
                        store.add_flag(mac);
                        store.add_flag(mac);
                    }
                    if i % 3 == 0 {
                        // Remove and re-insert (retrain churn).
                        assert!(store.remove(&mac).is_some());
                        store.insert(mac, SignatureTracker::new(sig(i as f64 + 1.0), 0.2));
                    }
                }
                let assignments: Vec<usize> = (0..MACS_PER_THREAD)
                    .map(|i| store.shard_of(&MacAddr::local_from_index(base + i)))
                    .collect();
                (store, assignments)
            })
        })
        .collect();

    let reference = ShardedSignatureStore::new(16);
    for (t, h) in handles.into_iter().enumerate() {
        let (store, assignments) = h.join().expect("hammer thread panicked");
        let occ = store.shard_occupancy();
        assert_eq!(
            occ.iter().sum::<usize>(),
            MACS_PER_THREAD as usize,
            "thread {}: occupancy {:?} does not total the inserts",
            t,
            occ
        );
        assert_eq!(store.len(), MACS_PER_THREAD as usize);
        // Flags survived the churn accounting: re-inserted MACs lost
        // theirs, the rest kept exactly two.
        let base = 1000 + t as u32 * MACS_PER_THREAD;
        for i in 0..MACS_PER_THREAD {
            let mac = MacAddr::local_from_index(base + i);
            let expected = if i % 2 == 0 && i % 3 != 0 { 2 } else { 0 };
            assert_eq!(store.flag_count(&mac), expected, "thread {} mac {}", t, i);
        }
        // Cross-thread shard-assignment agreement.
        for (i, &shard) in assignments.iter().enumerate() {
            let mac = MacAddr::local_from_index(base + i as u32);
            assert_eq!(shard, reference.shard_of(&mac));
        }
    }
}

/// The same property through real `sa-deploy` workers: eight AP threads
/// auto-train disjoint MAC subsets (disjoint per-AP ACLs), and every
/// AP's sharded store comes back with occupancy totals matching exactly
/// the clients its worker trained.
#[test]
fn deployment_workers_train_disjoint_stores() {
    const N_APS: usize = 8;
    let tb = Testbed::deployment(N_APS, 401);
    let mut rng = ChaCha8Rng::seed_from_u64(402);
    let clients: Vec<usize> = (1..=20).collect();
    let txs: Vec<Transmission> = tb
        .window_traffic(&clients, 0, 0.0, &mut rng)
        .into_iter()
        .map(Transmission::new)
        .collect();

    // AP k admits only clients with id % N_APS == k: disjoint
    // populations across the eight worker threads.
    let mut aps: Vec<_> = tb.nodes.into_iter().map(|n| n.ap).collect();
    for (k, ap) in aps.iter_mut().enumerate() {
        let mut acl = AccessControlList::new(AclPolicy::AllowListed);
        for &id in clients.iter().filter(|&&id| id % N_APS == k) {
            acl.add(Testbed::client_mac(id));
        }
        ap.acl = acl;
    }
    let expected: Vec<usize> = (0..N_APS)
        .map(|k| clients.iter().filter(|&&id| id % N_APS == k).count())
        .collect();

    let mut deployment = Deployment::new(aps, DeployConfig::default());
    deployment.submit_window(txs).expect("submit");
    let fused = deployment.collect_window().expect("collect");
    assert_eq!(fused.clients.len(), clients.len());

    let (report, aps) = deployment.finish();
    let mut total_trained = 0usize;
    for (k, ap) in aps.iter().enumerate() {
        let occ = ap.spoof.store().shard_occupancy();
        let occupancy_total: usize = occ.iter().sum();
        assert_eq!(
            occupancy_total, expected[k],
            "AP {}: occupancy {:?} vs expected {} trained clients",
            k, occ, expected[k]
        );
        assert_eq!(ap.spoof.trained_count(), expected[k]);
        assert_eq!(report.per_ap[k].trained, expected[k] as u64);
        total_trained += occupancy_total;
    }
    assert_eq!(total_trained, clients.len());
}
