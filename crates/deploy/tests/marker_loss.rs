//! End-to-end tests for lossy end-of-window markers: a dropped marker
//! must degrade the run deterministically — revealed by a later
//! marker's gap (within [`DeployConfig::marker_timeout_windows`]) or by
//! the worker's final flush — never stall it.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sa_deploy::{DeployConfig, Deployment, Transmission};
use sa_testbed::Testbed;
use secureangle::AccessPoint;

fn split(tb: Testbed) -> Vec<AccessPoint> {
    tb.nodes.into_iter().map(|n| n.ap).collect()
}

fn window(tb: &Testbed, clients: &[usize], seq: u16, rng: &mut ChaCha8Rng) -> Vec<Transmission> {
    tb.window_traffic(clients, seq, 0.0, rng)
        .into_iter()
        .map(Transmission::new)
        .collect()
}

/// Scheduling-observability counters are interleaving-dependent and
/// outside the determinism contract; zero them before comparing.
fn masked_report(r: &sa_deploy::DeploymentReport) -> String {
    let mut r = r.clone();
    r.metrics.max_fusion_queue_depth = 0;
    r.metrics.report_backpressure_events = 0;
    r.metrics.ingest_backpressure_events = 0;
    for ap in &mut r.per_ap {
        ap.backpressure_events = 0;
    }
    format!("{:?}", r)
}

/// Marker loss without gap detection would stall a window forever; the
/// deployment refuses the configuration at construction.
#[test]
#[should_panic(expected = "marker_timeout_windows")]
fn marker_loss_without_gap_detection_is_rejected() {
    let tb = Testbed::deployment(2, 319);
    let cfg = DeployConfig {
        marker_loss_rate: 0.1,
        marker_timeout_windows: 0,
        ..DeployConfig::default()
    };
    let _ = Deployment::new(split(tb), cfg);
}

/// Markers dropped mid-run are revealed by the next surviving marker's
/// gap: the affected windows close without that AP's bearings (counted
/// in [`sa_deploy::FusedWindow::markers_lost`] and as degradation), the
/// deployment never stalls, and the whole degraded run is
/// byte-deterministic across repeats. Tail windows whose markers are
/// lost with nothing after them close via the workers' shutdown flush
/// in `finish`, and the coordinator's detected-loss count agrees with
/// the workers' own drop counts.
#[test]
fn lost_markers_degrade_deterministically_without_stalling() {
    const WINDOWS: usize = 6;
    // Collect explicitly only while a later marker is guaranteed
    // possible; the tail (whose gaps only the final flush can reveal)
    // is drained by finish().
    const EXPLICIT: usize = 4;
    let run = || {
        let tb = Testbed::deployment(3, 321);
        let mut rng = ChaCha8Rng::seed_from_u64(322);
        let windows: Vec<Vec<Transmission>> = (0..WINDOWS)
            .map(|w| window(&tb, &[5, 7], w as u16, &mut rng))
            .collect();
        let aps = split(tb);
        let cfg = DeployConfig {
            marker_loss_rate: 0.3,
            marker_timeout_windows: 2,
            ..DeployConfig::default()
        };
        let mut deployment = Deployment::new(aps, cfg);
        for w in windows {
            deployment.submit_window(w).expect("submit");
        }
        let mut fused = Vec::new();
        for expect in 0..EXPLICIT as u64 {
            let f = deployment.collect_window().expect("window closes");
            assert_eq!(f.window, expect);
            fused.push(f);
        }
        let (report, _) = deployment.finish();
        (fused, report)
    };

    let (fused, report) = run();
    // Every window closed — the explicitly collected ones and the tail.
    assert_eq!(report.metrics.windows, WINDOWS as u64);
    // At 30% marker loss over 18 (ap, window) markers, losses are
    // certain — and the coordinator detected every one the workers
    // dropped (gap detection mid-run, the flush for the tail).
    assert!(report.metrics.markers_lost > 0, "{:?}", report.metrics);
    assert_eq!(
        report.per_ap.iter().map(|s| s.markers_lost).sum::<u64>(),
        report.metrics.markers_lost,
        "coordinator-detected losses must match worker-side drops"
    );
    assert!(report.metrics.degraded_windows > 0);
    // A marker-lost AP contributes no bearings to its window.
    for f in &fused {
        assert_eq!(f.expected_aps, 3);
        for c in &f.clients {
            assert!(c.n_aps + f.markers_lost + f.lost_reports >= 1);
            assert!(c.n_aps <= f.expected_aps - f.markers_lost);
        }
    }
    assert!(
        fused.iter().any(|f| f.markers_lost > 0),
        "seed produced no marker loss in the collected windows"
    );

    // Determinism: the loss draws are a pure function of the config, so
    // repeating the run reproduces the degradation byte-for-byte.
    let (fused2, report2) = run();
    assert_eq!(format!("{:?}", fused), format!("{:?}", fused2));
    assert_eq!(masked_report(&report), masked_report(&report2));
}

/// With marker loss *disabled*, enabling the gap-detection tolerance is
/// byte-transparent: in-order markers never present a gap, so the
/// fused output and report are identical to the default configuration.
#[test]
fn gap_tolerance_is_transparent_without_loss() {
    let run = |cfg: DeployConfig| {
        let tb = Testbed::deployment(2, 323);
        let mut rng = ChaCha8Rng::seed_from_u64(324);
        let windows: Vec<Vec<Transmission>> = (0..3)
            .map(|w| window(&tb, &[5, 7], w as u16, &mut rng))
            .collect();
        let mut deployment = Deployment::new(split(tb), cfg);
        let fused: Vec<_> = windows
            .into_iter()
            .map(|w| deployment.run_window(w).expect("window"))
            .collect();
        let (report, _) = deployment.finish();
        (fused, report)
    };
    let (base_fused, base_report) = run(DeployConfig::default());
    let (tol_fused, tol_report) = run(DeployConfig {
        marker_timeout_windows: 2,
        ..DeployConfig::default()
    });
    assert_eq!(format!("{:?}", base_fused), format!("{:?}", tol_fused));
    assert_eq!(masked_report(&base_report), masked_report(&tol_report));
    assert_eq!(base_report.metrics.markers_lost, 0);
}
