//! Skew-tolerant window alignment: the pure state machine behind the
//! coordinator's reorder buffer.
//!
//! Workers stamp their reports with *local* window and sequence labels
//! (see [`crate::ApSkew`]): real APs free-run on their own clocks, so
//! the label an AP puts on a window is `global + offset + drift`. The
//! coordinator cannot fuse on labels — it must map each report back to
//! the global window it was dispatched for, and it must do so
//! deterministically so seeded runs stay byte-reproducible.
//!
//! Two facts make robust alignment possible without synchronized
//! clocks:
//!
//! 1. **Per-AP delivery is FIFO.** A worker processes dispatched
//!    windows in order and reports (or abandons) them in order, so the
//!    *n*-th end-of-window marker from an AP corresponds to the *n*-th
//!    window dispatched **to that AP** — churn-safe, because the
//!    aligner tracks dispatches per AP.
//! 2. **Offsets are learnable at association.** The first report from
//!    an AP reveals its constant epoch offset (the deployment-scale
//!    analogue of 802.11 TSF sync at association). Later labels are
//!    checked against `global + learned_offset`; a label that has
//!    drifted beyond the configured tolerance is *rejected* — the
//!    window still closes (the FIFO marker is trusted), but the
//!    bearings stamped with the wandering clock are kept out of fusion
//!    rather than being fused into the wrong window.
//!
//! The aligner is deliberately pure (no channels, no threads) so the
//! alignment policy itself is property-testable: see
//! `tests/proptest_alignment.rs`.

use std::collections::VecDeque;

/// One dispatched window awaiting its report from one AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DispatchRecord {
    /// Global window number.
    global: u64,
    /// Global sequence number of the first packet dispatched for the
    /// window (`None` when the window carried no packets for this AP).
    first_seq: Option<u64>,
}

#[derive(Debug, Default)]
struct ApAlignState {
    /// FIFO of windows dispatched to this AP, not yet reported.
    dispatched: VecDeque<DispatchRecord>,
    /// Learned constant window offset (`local label − global`), set by
    /// the AP's first report.
    window_offset: Option<i64>,
}

/// The result of aligning one worker report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aligned {
    /// The global window this report belongs to (FIFO ground truth).
    pub global: u64,
    /// Whether the report's window label sits within tolerance of the
    /// learned offset. Rejected reports still close their window — only
    /// their packet payload is excluded from fusion.
    pub accepted: bool,
    /// Label deviation from `global + learned offset`, windows. Zero
    /// for a skew-free or constant-offset AP; grows with drift.
    pub deviation: i64,
    /// Sequence-label delta for this window: subtract it from a local
    /// sequence label to recover the global sequence. `0` when the
    /// window carried no packets.
    pub seq_delta: i64,
}

/// Maps per-AP locally-stamped window labels back to global window
/// numbers, tolerating bounded clock skew and drift.
///
/// ```
/// use sa_deploy::align::SkewAligner;
/// let mut aligner = SkewAligner::new(2);
/// let ap = aligner.add_ap();
/// // Global windows 0 and 1 dispatched; the AP's clock runs 5 ahead.
/// aligner.note_dispatch(ap, 0, Some(0));
/// aligner.note_dispatch(ap, 1, Some(0));
/// let a = aligner.align(ap, 5, Some(40)).unwrap();
/// assert!((a.global, a.accepted, a.seq_delta) == (0, true, 40));
/// let b = aligner.align(ap, 6, Some(40)).unwrap();
/// assert!((b.global, b.accepted) == (1, true));
/// ```
#[derive(Debug, Default)]
pub struct SkewAligner {
    tolerance: u64,
    aps: Vec<ApAlignState>,
}

impl SkewAligner {
    /// New aligner with the given label tolerance
    /// ([`crate::DeployConfig::max_skew_windows`]).
    pub fn new(tolerance: u64) -> Self {
        Self {
            tolerance,
            aps: Vec::new(),
        }
    }

    /// Register a new AP; returns its id (ids are never reused).
    pub fn add_ap(&mut self) -> usize {
        self.aps.push(ApAlignState::default());
        self.aps.len() - 1
    }

    /// Number of registered APs (live or not).
    pub fn n_aps(&self) -> usize {
        self.aps.len()
    }

    /// Record that global window `global` was dispatched to AP `ap`,
    /// with `first_seq` the global sequence of its first packet (if
    /// any). Must be called in dispatch order.
    pub fn note_dispatch(&mut self, ap: usize, global: u64, first_seq: Option<u64>) {
        self.aps[ap]
            .dispatched
            .push_back(DispatchRecord { global, first_seq });
    }

    /// Windows dispatched to AP `ap` still awaiting a report.
    pub fn pending(&self, ap: usize) -> usize {
        self.aps[ap].dispatched.len()
    }

    /// Drop AP `ap`'s outstanding dispatches (the worker died or was
    /// removed; its reports are never coming).
    pub fn forget_ap(&mut self, ap: usize) {
        self.aps[ap].dispatched.clear();
    }

    /// Align one report from AP `ap`: `window_label` is the worker's
    /// local window stamp, `seq_base` the local sequence label of the
    /// window's first dispatched packet. Returns `None` if nothing is
    /// outstanding for the AP (a protocol violation — the report is
    /// unattributable and must be discarded).
    pub fn align(
        &mut self,
        ap: usize,
        window_label: i64,
        seq_base: Option<u64>,
    ) -> Option<Aligned> {
        let (skipped, aligned) = self.align_gaps(ap, window_label, seq_base, 0);
        debug_assert!(skipped.is_empty(), "gap detection is off at max_gap 0");
        aligned
    }

    /// [`SkewAligner::align`] with marker-gap detection
    /// ([`crate::DeployConfig::marker_timeout_windows`]): when the
    /// label aligns `d` windows *ahead* of the AP's FIFO front with
    /// `1 ≤ d ≤ max_gap` — and at least `d + 1` windows are outstanding,
    /// so the label provably names a dispatched window — the `d`
    /// skipped windows' markers are declared lost. Their global window
    /// numbers are returned for the coordinator to close without this
    /// AP, and the report aligns to the `(d+1)`-th record with zero
    /// deviation. `max_gap = 0` disables detection (every deviation is
    /// clock skew), which is exactly [`SkewAligner::align`].
    ///
    /// Gap detection trusts the learned constant offset: a drifting
    /// clock is indistinguishable from a marker gap on labels alone,
    /// which is why the policy is opt-in and documented for constant-
    /// offset deployments only.
    pub fn align_gaps(
        &mut self,
        ap: usize,
        window_label: i64,
        seq_base: Option<u64>,
        max_gap: u64,
    ) -> (Vec<u64>, Option<Aligned>) {
        let state = &mut self.aps[ap];
        let Some(front) = state.dispatched.front().copied() else {
            return (Vec::new(), None);
        };
        let offset = *state
            .window_offset
            .get_or_insert(window_label - front.global as i64);
        let mut skipped = Vec::new();
        if max_gap > 0 {
            let ahead = window_label - (front.global as i64 + offset);
            if ahead >= 1 && ahead as u64 <= max_gap && state.dispatched.len() > ahead as usize {
                for _ in 0..ahead {
                    skipped.push(
                        state
                            .dispatched
                            .pop_front()
                            .expect("guarded by len() above")
                            .global,
                    );
                }
            }
        }
        let Some(record) = state.dispatched.pop_front() else {
            return (skipped, None);
        };
        let deviation = window_label - (record.global as i64 + offset);
        let seq_delta = match (seq_base, record.first_seq) {
            (Some(local), Some(global)) => local as i64 - global as i64,
            _ => 0,
        };
        (
            skipped,
            Some(Aligned {
                global: record.global,
                accepted: deviation.unsigned_abs() <= self.tolerance,
                deviation,
                seq_delta,
            }),
        )
    }

    /// Declare every outstanding dispatch for AP `ap` marker-lost and
    /// return their global window numbers. The coordinator calls this
    /// when the worker's final flush arrives (the worker exited, so no
    /// later marker will ever reveal a tail gap); on a healthy run the
    /// queue is already empty and this is a no-op.
    pub fn take_outstanding(&mut self, ap: usize) -> Vec<u64> {
        self.aps[ap]
            .dispatched
            .drain(..)
            .map(|r| r.global)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_offset_is_learned_and_accepted() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        for w in 0..5 {
            a.note_dispatch(ap, w, Some(w * 10));
        }
        for w in 0..5i64 {
            let r = a.align(ap, w - 7, Some((w as u64 * 10) + 3)).unwrap();
            assert_eq!(r.global, w as u64);
            assert!(r.accepted, "window {} rejected: {:?}", w, r);
            assert_eq!(r.deviation, 0);
            assert_eq!(r.seq_delta, 3);
        }
        assert_eq!(a.pending(ap), 0);
    }

    #[test]
    fn drift_within_tolerance_is_accepted_beyond_is_rejected() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        for w in 0..8 {
            a.note_dispatch(ap, w, None);
        }
        // Label gains one window of drift per window after the first.
        for w in 0..8i64 {
            let label = w + w; // offset learned as 0 at w=0, deviation = w
            let r = a.align(ap, label, None).unwrap();
            assert_eq!(r.global, w as u64);
            assert_eq!(r.deviation, w);
            assert_eq!(r.accepted, w <= 2, "window {}: {:?}", w, r);
        }
    }

    #[test]
    fn per_ap_offsets_are_independent() {
        let mut a = SkewAligner::new(1);
        let ap0 = a.add_ap();
        let ap1 = a.add_ap();
        a.note_dispatch(ap0, 0, None);
        a.note_dispatch(ap1, 0, None);
        assert!(a.align(ap0, 100, None).unwrap().accepted);
        assert!(a.align(ap1, -100, None).unwrap().accepted);
    }

    #[test]
    fn unattributable_report_is_refused() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        assert!(a.align(ap, 0, None).is_none());
    }

    #[test]
    fn marker_gap_within_tolerance_skips_and_aligns() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        for w in 0..4 {
            a.note_dispatch(ap, w, Some(w * 10));
        }
        // Window 0's marker arrives (offset learned as 0), then windows
        // 1 and 2's markers are lost: the next marker is labelled 3.
        let (skipped, r) = a.align_gaps(ap, 0, Some(0), 2);
        assert!(skipped.is_empty());
        assert_eq!(r.unwrap().global, 0);
        let (skipped, r) = a.align_gaps(ap, 3, Some(33), 2);
        assert_eq!(skipped, vec![1, 2], "both gapped windows close");
        let r = r.unwrap();
        assert_eq!(r.global, 3);
        assert!(r.accepted);
        assert_eq!(r.deviation, 0);
        assert_eq!(r.seq_delta, 3);
        assert_eq!(a.pending(ap), 0);
    }

    #[test]
    fn gap_beyond_tolerance_falls_back_to_skew_rejection() {
        let mut a = SkewAligner::new(1);
        let ap = a.add_ap();
        for w in 0..5 {
            a.note_dispatch(ap, w, None);
        }
        let (_, r) = a.align_gaps(ap, 0, None, 1);
        assert!(r.unwrap().accepted);
        // A 3-window jump exceeds max_gap 1: treated as clock skew on
        // the FIFO front (window 1), which also exceeds the ±1
        // alignment tolerance → rejected, nothing skipped.
        let (skipped, r) = a.align_gaps(ap, 4, None, 1);
        assert!(skipped.is_empty());
        let r = r.unwrap();
        assert_eq!(r.global, 1);
        assert!(!r.accepted);
        assert_eq!(r.deviation, 3);
    }

    #[test]
    fn gap_detection_never_outruns_the_fifo() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        a.note_dispatch(ap, 0, None);
        a.note_dispatch(ap, 1, None);
        let (_, r) = a.align_gaps(ap, 0, None, 3);
        assert!(r.unwrap().accepted);
        // Label claims 2 windows ahead but only window 1 is
        // outstanding: a gap would pop past the queue, so it is treated
        // as skew instead.
        let (skipped, r) = a.align_gaps(ap, 3, None, 3);
        assert!(skipped.is_empty());
        let r = r.unwrap();
        assert_eq!(r.global, 1);
        assert_eq!(r.deviation, 2);
    }

    #[test]
    fn take_outstanding_drains_the_queue() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        for w in 3..6 {
            a.note_dispatch(ap, w, None);
        }
        assert_eq!(a.take_outstanding(ap), vec![3, 4, 5]);
        assert_eq!(a.pending(ap), 0);
        assert!(a.take_outstanding(ap).is_empty());
    }

    #[test]
    fn forget_ap_clears_outstanding_dispatches() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        a.note_dispatch(ap, 0, None);
        a.note_dispatch(ap, 1, None);
        assert_eq!(a.pending(ap), 2);
        a.forget_ap(ap);
        assert_eq!(a.pending(ap), 0);
        assert!(a.align(ap, 0, None).is_none());
    }
}
