//! Skew-tolerant window alignment: the pure state machine behind the
//! coordinator's reorder buffer.
//!
//! Workers stamp their reports with *local* window and sequence labels
//! (see [`crate::ApSkew`]): real APs free-run on their own clocks, so
//! the label an AP puts on a window is `global + offset + drift`. The
//! coordinator cannot fuse on labels — it must map each report back to
//! the global window it was dispatched for, and it must do so
//! deterministically so seeded runs stay byte-reproducible.
//!
//! Two facts make robust alignment possible without synchronized
//! clocks:
//!
//! 1. **Per-AP delivery is FIFO.** A worker processes dispatched
//!    windows in order and reports (or abandons) them in order, so the
//!    *n*-th end-of-window marker from an AP corresponds to the *n*-th
//!    window dispatched **to that AP** — churn-safe, because the
//!    aligner tracks dispatches per AP.
//! 2. **Clock models are learnable at association.** The first report
//!    from an AP reveals its constant epoch offset (the deployment-
//!    scale analogue of 802.11 TSF sync at association), and every
//!    accepted report after it refines a per-AP *drift-rate* estimate,
//!    so a slowly wandering oscillator stays aligned instead of walking
//!    out of tolerance. Labels are checked against
//!    `global + offset + round(drift · elapsed)`; a label that still
//!    deviates beyond the configured tolerance is *rejected* — the
//!    window closes (the FIFO marker is trusted), but the bearings
//!    stamped with the wandering clock are kept out of fusion rather
//!    than being fused into the wrong window. The sequence-label
//!    channel (packet counters never drift) doubles as a cross-check
//!    that keeps marker-gap detection honest under drift.
//!
//! The aligner is deliberately pure (no channels, no threads) so the
//! alignment policy itself is property-testable: see
//! `tests/proptest_alignment.rs`.

use std::collections::VecDeque;

/// One dispatched window awaiting its report from one AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DispatchRecord {
    /// Global window number.
    global: u64,
    /// Global sequence number of the first packet dispatched for the
    /// window (`None` when the window carried no packets for this AP).
    first_seq: Option<u64>,
}

#[derive(Debug, Default)]
struct ApAlignState {
    /// FIFO of windows dispatched to this AP, not yet reported.
    dispatched: VecDeque<DispatchRecord>,
    /// Learned constant window offset (`local label − global`), set by
    /// the AP's first report.
    window_offset: Option<i64>,
    /// Global window of the offset-learning report — the anchor the
    /// drift estimate measures elapsed windows from.
    anchor: u64,
    /// Learned drift rate, windows of extra label skew per elapsed
    /// window, refined from every accepted report after the anchor.
    drift_est: f64,
    /// Learned constant sequence-label offset (`local − global`).
    /// Sequence counters do not drift, so this is the cross-check that
    /// distinguishes a marker gap from a clock jump.
    seq_offset: Option<i64>,
}

/// The result of aligning one worker report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aligned {
    /// The global window this report belongs to (FIFO ground truth).
    pub global: u64,
    /// Whether the report's window label sits within tolerance of the
    /// learned offset. Rejected reports still close their window — only
    /// their packet payload is excluded from fusion.
    pub accepted: bool,
    /// Label deviation from the learned clock model
    /// (`global + offset + round(drift · elapsed)`), windows. Zero for
    /// a skew-free, constant-offset or *learned-rate* drifting AP;
    /// grows only when the clock jumps or drifts faster than the
    /// tolerance lets the rate be learned.
    pub deviation: i64,
    /// Sequence-label delta for this window: subtract it from a local
    /// sequence label to recover the global sequence. `0` when the
    /// window carried no packets.
    pub seq_delta: i64,
}

/// Maps per-AP locally-stamped window labels back to global window
/// numbers, tolerating bounded clock skew and drift.
///
/// ```
/// use sa_deploy::align::SkewAligner;
/// let mut aligner = SkewAligner::new(2);
/// let ap = aligner.add_ap();
/// // Global windows 0 and 1 dispatched; the AP's clock runs 5 ahead.
/// aligner.note_dispatch(ap, 0, Some(0));
/// aligner.note_dispatch(ap, 1, Some(0));
/// let a = aligner.align(ap, 5, Some(40)).unwrap();
/// assert!((a.global, a.accepted, a.seq_delta) == (0, true, 40));
/// let b = aligner.align(ap, 6, Some(40)).unwrap();
/// assert!((b.global, b.accepted) == (1, true));
/// ```
#[derive(Debug, Default)]
pub struct SkewAligner {
    tolerance: u64,
    aps: Vec<ApAlignState>,
}

impl SkewAligner {
    /// New aligner with the given label tolerance
    /// ([`crate::DeployConfig::max_skew_windows`]).
    pub fn new(tolerance: u64) -> Self {
        Self {
            tolerance,
            aps: Vec::new(),
        }
    }

    /// Register a new AP; returns its id (ids are never reused).
    pub fn add_ap(&mut self) -> usize {
        self.aps.push(ApAlignState::default());
        self.aps.len() - 1
    }

    /// Number of registered APs (live or not).
    pub fn n_aps(&self) -> usize {
        self.aps.len()
    }

    /// Record that global window `global` was dispatched to AP `ap`,
    /// with `first_seq` the global sequence of its first packet (if
    /// any). Must be called in dispatch order.
    pub fn note_dispatch(&mut self, ap: usize, global: u64, first_seq: Option<u64>) {
        self.aps[ap]
            .dispatched
            .push_back(DispatchRecord { global, first_seq });
    }

    /// Windows dispatched to AP `ap` still awaiting a report.
    pub fn pending(&self, ap: usize) -> usize {
        self.aps[ap].dispatched.len()
    }

    /// Drop AP `ap`'s outstanding dispatches (the worker died or was
    /// removed; its reports are never coming).
    pub fn forget_ap(&mut self, ap: usize) {
        self.aps[ap].dispatched.clear();
    }

    /// Reset AP `ap`'s learned clock model (epoch offset, drift rate,
    /// sequence offset) along with its outstanding dispatches. A
    /// re-joining AP ([`crate::Deployment::rejoin_ap`]) comes back with
    /// a fresh oscillator epoch, so the old model must be relearned
    /// from its first new report instead of rejecting everything.
    pub fn revive_ap(&mut self, ap: usize) {
        let state = &mut self.aps[ap];
        state.dispatched.clear();
        state.window_offset = None;
        state.anchor = 0;
        state.drift_est = 0.0;
        state.seq_offset = None;
    }

    /// Align one report from AP `ap`: `window_label` is the worker's
    /// local window stamp, `seq_base` the local sequence label of the
    /// window's first dispatched packet. Returns `None` if nothing is
    /// outstanding for the AP (a protocol violation — the report is
    /// unattributable and must be discarded).
    pub fn align(
        &mut self,
        ap: usize,
        window_label: i64,
        seq_base: Option<u64>,
    ) -> Option<Aligned> {
        let (skipped, aligned) = self.align_gaps(ap, window_label, seq_base, 0);
        debug_assert!(skipped.is_empty(), "gap detection is off at max_gap 0");
        aligned
    }

    /// [`SkewAligner::align`] with marker-gap detection
    /// ([`crate::DeployConfig::marker_timeout_windows`]): when the
    /// label aligns `d` windows *ahead* of the AP's FIFO front with
    /// `1 ≤ d ≤ max_gap` — and at least `d + 1` windows are outstanding,
    /// so the label provably names a dispatched window — the `d`
    /// skipped windows' markers are declared lost. Their global window
    /// numbers are returned for the coordinator to close without this
    /// AP, and the report aligns to the `(d+1)`-th record with zero
    /// deviation. `max_gap = 0` disables detection (every deviation is
    /// clock skew), which is exactly [`SkewAligner::align`].
    ///
    /// Gap detection is drift-aware: labels are compared against the
    /// learned clock model (constant offset *plus* the drift rate
    /// refined from accepted reports), and a candidate gap is
    /// cross-checked on the sequence-label channel — packet counters
    /// never drift, so when both the report and the claimed dispatch
    /// record carry sequence labels and the constant sequence offset is
    /// already learned, a mismatch unmasks the jump as clock skew and
    /// nothing is skipped.
    pub fn align_gaps(
        &mut self,
        ap: usize,
        window_label: i64,
        seq_base: Option<u64>,
        max_gap: u64,
    ) -> (Vec<u64>, Option<Aligned>) {
        let tolerance = self.tolerance;
        let state = &mut self.aps[ap];
        let Some(front) = state.dispatched.front().copied() else {
            return (Vec::new(), None);
        };
        let offset = match state.window_offset {
            Some(o) => o,
            None => {
                let o = window_label - front.global as i64;
                state.window_offset = Some(o);
                state.anchor = front.global;
                o
            }
        };
        let (anchor, drift_est) = (state.anchor, state.drift_est);
        let predict = |global: u64| -> i64 {
            let elapsed = global as i64 - anchor as i64;
            global as i64 + offset + (drift_est * elapsed as f64).round() as i64
        };
        let mut skipped = Vec::new();
        if max_gap > 0 {
            let ahead = window_label - predict(front.global);
            if ahead >= 1 && ahead as u64 <= max_gap && state.dispatched.len() > ahead as usize {
                // The label claims the record `ahead` deep in the FIFO.
                // Confirm on the sequence channel before declaring the
                // intervening markers lost.
                let candidate = state.dispatched[ahead as usize];
                let confirmed = match (seq_base, candidate.first_seq, state.seq_offset) {
                    (Some(local), Some(global), Some(learned)) => {
                        local as i64 - global as i64 == learned
                    }
                    _ => true,
                };
                if confirmed {
                    for _ in 0..ahead {
                        skipped.push(
                            state
                                .dispatched
                                .pop_front()
                                .expect("guarded by len() above")
                                .global,
                        );
                    }
                }
            }
        }
        let Some(record) = state.dispatched.pop_front() else {
            return (skipped, None);
        };
        let deviation = window_label - predict(record.global);
        let seq_delta = match (seq_base, record.first_seq) {
            (Some(local), Some(global)) => local as i64 - global as i64,
            _ => 0,
        };
        let accepted = deviation.unsigned_abs() <= tolerance;
        if accepted {
            // Refine the clock model from trusted reports only: the
            // constant sequence offset on first sight, the drift rate
            // from the raw (offset-relative) deviation over elapsed
            // windows since the anchor.
            if let (Some(local), Some(global)) = (seq_base, record.first_seq) {
                state.seq_offset.get_or_insert(local as i64 - global as i64);
            }
            let elapsed = record.global as i64 - anchor as i64;
            if elapsed > 0 {
                state.drift_est =
                    (window_label - (record.global as i64 + offset)) as f64 / elapsed as f64;
            }
        }
        (
            skipped,
            Some(Aligned {
                global: record.global,
                accepted,
                deviation,
                seq_delta,
            }),
        )
    }

    /// Declare every outstanding dispatch for AP `ap` marker-lost and
    /// return their global window numbers. The coordinator calls this
    /// when the worker's final flush arrives (the worker exited, so no
    /// later marker will ever reveal a tail gap); on a healthy run the
    /// queue is already empty and this is a no-op.
    pub fn take_outstanding(&mut self, ap: usize) -> Vec<u64> {
        self.aps[ap]
            .dispatched
            .drain(..)
            .map(|r| r.global)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_offset_is_learned_and_accepted() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        for w in 0..5 {
            a.note_dispatch(ap, w, Some(w * 10));
        }
        for w in 0..5i64 {
            let r = a.align(ap, w - 7, Some((w as u64 * 10) + 3)).unwrap();
            assert_eq!(r.global, w as u64);
            assert!(r.accepted, "window {} rejected: {:?}", w, r);
            assert_eq!(r.deviation, 0);
            assert_eq!(r.seq_delta, 3);
        }
        assert_eq!(a.pending(ap), 0);
    }

    #[test]
    fn linear_drift_is_learned_and_stays_accepted() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        for w in 0..12 {
            a.note_dispatch(ap, w, None);
        }
        // A full window of drift gained per window (label = 2w): the
        // rate is learned from the first in-tolerance deviation, and
        // the model keeps every later report aligned — under the old
        // constant-offset-only policy window 3 onward was rejected.
        for w in 0..12i64 {
            let r = a.align(ap, w + w, None).unwrap();
            assert_eq!(r.global, w as u64);
            assert!(r.accepted, "window {}: {:?}", w, r);
            assert!(r.deviation.unsigned_abs() <= 1, "window {}: {:?}", w, r);
        }
    }

    #[test]
    fn drift_steeper_than_tolerance_is_rejected_not_learned() {
        let mut a = SkewAligner::new(1);
        let ap = a.add_ap();
        for w in 0..6 {
            a.note_dispatch(ap, w, None);
        }
        // Three windows of skew gained per window: the very first
        // drifted label already exceeds the tolerance, so the rate is
        // never learned from an accepted report and every later label
        // stays rejected (still attributed to its FIFO window).
        for w in 0..6i64 {
            let r = a.align(ap, w * 4, None).unwrap();
            assert_eq!(r.global, w as u64);
            assert_eq!(r.accepted, w == 0, "window {}: {:?}", w, r);
            assert_eq!(r.deviation, 3 * w);
        }
    }

    #[test]
    fn per_ap_offsets_are_independent() {
        let mut a = SkewAligner::new(1);
        let ap0 = a.add_ap();
        let ap1 = a.add_ap();
        a.note_dispatch(ap0, 0, None);
        a.note_dispatch(ap1, 0, None);
        assert!(a.align(ap0, 100, None).unwrap().accepted);
        assert!(a.align(ap1, -100, None).unwrap().accepted);
    }

    #[test]
    fn unattributable_report_is_refused() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        assert!(a.align(ap, 0, None).is_none());
    }

    #[test]
    fn marker_gap_within_tolerance_skips_and_aligns() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        for w in 0..4 {
            a.note_dispatch(ap, w, Some(w * 10));
        }
        // Window 0's marker arrives (offset learned as 0, sequence
        // offset learned as 3), then windows 1 and 2's markers are
        // lost: the next marker is labelled 3 and its sequence label
        // confirms the gap (33 − 30 matches the learned offset).
        let (skipped, r) = a.align_gaps(ap, 0, Some(3), 2);
        assert!(skipped.is_empty());
        assert_eq!(r.unwrap().global, 0);
        let (skipped, r) = a.align_gaps(ap, 3, Some(33), 2);
        assert_eq!(skipped, vec![1, 2], "both gapped windows close");
        let r = r.unwrap();
        assert_eq!(r.global, 3);
        assert!(r.accepted);
        assert_eq!(r.deviation, 0);
        assert_eq!(r.seq_delta, 3);
        assert_eq!(a.pending(ap), 0);
    }

    #[test]
    fn seq_channel_contradiction_vetoes_a_gap() {
        let mut a = SkewAligner::new(3);
        let ap = a.add_ap();
        for w in 0..4 {
            a.note_dispatch(ap, w, Some(w * 10));
        }
        // Learn offset 0 and sequence offset 5.
        let (s, r) = a.align_gaps(ap, 0, Some(5), 2);
        assert!(s.is_empty());
        assert!(r.unwrap().accepted);
        // A label 2 ahead whose sequence label does NOT match the
        // learned sequence offset for the claimed record: sequence
        // counters never drift, so the jump is clock skew — nothing is
        // skipped and the report aligns to the FIFO front with the
        // full deviation.
        let (s, r) = a.align_gaps(ap, 3, Some(99), 2);
        assert!(s.is_empty());
        let r = r.unwrap();
        assert_eq!(r.global, 1);
        assert_eq!(r.deviation, 2);
        assert!(r.accepted, "within the ±3 tolerance: skew, not a gap");
    }

    #[test]
    fn revive_ap_relearns_the_clock_model() {
        let mut a = SkewAligner::new(1);
        let ap = a.add_ap();
        a.note_dispatch(ap, 0, Some(0));
        assert!(a.align(ap, 100, Some(7)).unwrap().accepted);
        a.revive_ap(ap);
        assert_eq!(a.pending(ap), 0);
        // The re-joined AP's new epoch is relearned, not held against
        // the model learned during its first stint.
        a.note_dispatch(ap, 5, Some(50));
        let r = a.align(ap, -40, Some(53)).unwrap();
        assert!(r.accepted);
        assert_eq!(r.global, 5);
        assert_eq!(r.deviation, 0);
        assert_eq!(r.seq_delta, 3);
    }

    #[test]
    fn gap_beyond_tolerance_falls_back_to_skew_rejection() {
        let mut a = SkewAligner::new(1);
        let ap = a.add_ap();
        for w in 0..5 {
            a.note_dispatch(ap, w, None);
        }
        let (_, r) = a.align_gaps(ap, 0, None, 1);
        assert!(r.unwrap().accepted);
        // A 3-window jump exceeds max_gap 1: treated as clock skew on
        // the FIFO front (window 1), which also exceeds the ±1
        // alignment tolerance → rejected, nothing skipped.
        let (skipped, r) = a.align_gaps(ap, 4, None, 1);
        assert!(skipped.is_empty());
        let r = r.unwrap();
        assert_eq!(r.global, 1);
        assert!(!r.accepted);
        assert_eq!(r.deviation, 3);
    }

    #[test]
    fn gap_detection_never_outruns_the_fifo() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        a.note_dispatch(ap, 0, None);
        a.note_dispatch(ap, 1, None);
        let (_, r) = a.align_gaps(ap, 0, None, 3);
        assert!(r.unwrap().accepted);
        // Label claims 2 windows ahead but only window 1 is
        // outstanding: a gap would pop past the queue, so it is treated
        // as skew instead.
        let (skipped, r) = a.align_gaps(ap, 3, None, 3);
        assert!(skipped.is_empty());
        let r = r.unwrap();
        assert_eq!(r.global, 1);
        assert_eq!(r.deviation, 2);
    }

    #[test]
    fn take_outstanding_drains_the_queue() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        for w in 3..6 {
            a.note_dispatch(ap, w, None);
        }
        assert_eq!(a.take_outstanding(ap), vec![3, 4, 5]);
        assert_eq!(a.pending(ap), 0);
        assert!(a.take_outstanding(ap).is_empty());
    }

    #[test]
    fn forget_ap_clears_outstanding_dispatches() {
        let mut a = SkewAligner::new(2);
        let ap = a.add_ap();
        a.note_dispatch(ap, 0, None);
        a.note_dispatch(ap, 1, None);
        assert_eq!(a.pending(ap), 2);
        a.forget_ap(ap);
        assert_eq!(a.pending(ap), 0);
        assert!(a.align(ap, 0, None).is_none());
    }
}
