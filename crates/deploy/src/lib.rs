//! # sa-deploy — the concurrent multi-AP deployment layer
//!
//! SecureAngle's strongest guarantees need *several* APs watching the
//! same client: "the intersection point of the direct path AoA is
//! identified as the location of client" (§2.3.1). This crate is the
//! missing subsystem between the per-AP batched pipeline
//! (`secureangle::pipeline::PacketBatch`) and that multi-AP story:
//!
//! * [`Deployment`] owns N [`secureangle::AccessPoint`]s and drives
//!   each on its own worker thread. The coordinator runs stage 1
//!   (detect + decode, [`secureangle::pipeline::decode_reference`])
//!   **once** per client transmission — the frame is the same at every
//!   AP — and fans the per-AP captures plus the shared
//!   [`secureangle::DecodedPacket`] out over bounded MPSC channels.
//!   Workers run only the per-AP DSP (calibrate → covariance → MUSIC →
//!   signature → enforcement), so aggregate packet throughput scales
//!   with AP count instead of re-paying the decode N times.
//! * Per-AP `(mac, azimuth, confidence, seq)` bearing reports flow back
//!   through a bounded report channel into the [`fusion`] stage, which
//!   groups them by client and observation window, least-squares
//!   intersects them (`secureangle::localize`), smooths each client's
//!   trace with a per-client α–β tracker (`secureangle::tracking`), and
//!   runs the **cross-AP spoof consensus**
//!   ([`secureangle::CrossApConsensus`]) — a detector no single AP can
//!   express, because it checks position-level geometry rather than one
//!   pseudospectrum.
//! * Scheduling is deterministic by construction: windows close when
//!   every *live* AP has reported end-of-window (no wall clock
//!   anywhere), and fused results are ordered by `(ap, seq)` and MAC,
//!   so a seeded run is byte-for-byte reproducible regardless of
//!   thread interleaving.
//! * The deployment survives imperfect infrastructure, deterministically:
//!   per-AP **clock skew** ([`ApSkew`]) is aligned away by the
//!   coordinator's reorder buffer ([`align::SkewAligner`], bounded by
//!   [`DeployConfig::max_skew_windows`]); the report path can be a
//!   **lossy link** ([`LinkConfig`]) with bounded retransmit, where an
//!   exhausted retry budget costs that AP's bearings for the window but
//!   never stalls the window close; and APs can **join or leave
//!   mid-run** ([`Deployment::add_ap`] / [`Deployment::remove_ap`]),
//!   with the cross-AP consensus re-baselining on every membership
//!   change and a panicked worker reaped instead of deadlocking the
//!   fleet. See `docs/DEPLOYMENT.md` for the operator's view.
//! * Backpressure, queue-depth, loss, skew and churn counters plus a
//!   final [`DeploymentReport`] make the behavior measurable (see the
//!   `deploy` and `deploy_degraded` criterion groups in `sa-bench`).
//! * Observability is **strictly out-of-band**
//!   ([`DeployConfig::telemetry`], default off): a unified counter
//!   registry mirrored from the deterministic stats, per-stage latency
//!   histograms (stage-1 decode, per-AP DSP, enforcement, fusion drain,
//!   consensus), store/fusion occupancy gauges, and a per-client
//!   flight recorder whose [`Deployment::explain`] renders the evidence
//!   trail behind any spoof verdict. Fused output is byte-identical
//!   with telemetry on or off (`tests/proptest_telemetry.rs`); see
//!   `docs/OBSERVABILITY.md` for the metric reference.
//! * The fleet is **self-healing under scripted chaos**: a seeded
//!   [`faults::FaultPlan`] injects worker stalls, mid-window crashes,
//!   wire-corrupted reports (caught by the report checksum), byzantine
//!   bearing bias, burst link loss and drifting clocks — all pure
//!   functions of the plan and window number — while
//!   [`health::FleetHealth`] scores each AP from per-window fusion
//!   evidence, down-weights then **quarantines** persistent outliers
//!   (with consensus re-baseline), re-admits them after a clean streak,
//!   and reaps wedged workers via a window-count stall watchdog.
//!   Both layers default off and are byte-transparent when disabled
//!   (`tests/proptest_chaos.rs`); re-joining APs resume their trained
//!   identity behind a probation window ([`Deployment::rejoin_ap`]).
//!
//! ```no_run
//! use sa_deploy::{DeployConfig, Deployment, Transmission};
//! # fn captures_for_window() -> Vec<Transmission> { Vec::new() }
//! # fn aps() -> Vec<secureangle::AccessPoint> { Vec::new() }
//!
//! let mut deployment = Deployment::new(aps(), DeployConfig::default());
//! deployment.submit_window(captures_for_window()).unwrap();
//! let fused = deployment.collect_window().unwrap();
//! for client in &fused.clients {
//!     println!("{:?}", client);
//! }
//! let (report, _aps) = deployment.finish();
//! println!("{} fixes over {} windows", report.metrics.fixes, report.metrics.windows);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod config;
pub mod deployment;
pub mod faults;
pub mod fusion;
pub mod health;
pub mod report;
pub mod telemetry;
mod worker;

pub use config::{ApSkew, DeployConfig, DeployError, LinkConfig};
pub use deployment::{Deployment, Transmission};
pub use faults::{CorruptionMode, FaultEvent, FaultPlan};
pub use fusion::Fusion;
pub use health::{HealthAction, HealthConfig};
pub use report::{
    ApBearingError, ApPacket, ApStats, ClientFix, ClientSummary, DeployMetrics, DeploymentReport,
    FusedWindow,
};
pub use sa_telemetry::{TelemetryConfig, TelemetrySnapshot};
pub use telemetry::{BearingEvidence, ClientWindowEvent};
