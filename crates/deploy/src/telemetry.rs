//! Deployment-side telemetry glue: the shared registry/flight-recorder
//! bundle threaded through the coordinator, workers, decode pool and
//! fusion shards, plus the rich per-client window event the flight
//! recorder keeps.
//!
//! Everything here is **strictly out-of-band**: stage timers record
//! wall-clock latencies but nothing ever reads them back into control
//! flow, counters are mirrored *from* the deterministic
//! [`crate::ApStats`]/[`crate::DeployMetrics`] sources at snapshot time
//! (never the other way around), and the flight recorder only copies
//! evidence fusion already computed. Disabling telemetry
//! ([`sa_telemetry::TelemetryConfig::disabled`], the default) reduces
//! every tap to a `None` branch — fused output is byte-identical either
//! way, pinned by `tests/proptest_telemetry.rs`.

use sa_mac::MacAddr;
use sa_telemetry::{FlightRecorder, Histogram, Registry, TelemetryConfig};
use secureangle::spoof::ConsensusVerdict;
use std::sync::Arc;

/// One AP's bearing contribution to a recorded window — the consensus
/// inputs an operator wants to see in a post-mortem.
#[derive(Debug, Clone, PartialEq)]
pub struct BearingEvidence {
    /// The contributing AP's stable id.
    pub ap_id: usize,
    /// Global azimuth, radians.
    pub azimuth_rad: f64,
    /// The bearing's confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Everything the fusion stage knew about one client in one window —
/// the flight recorder's event type, kept per client so a later spoof
/// verdict can be explained from recorded evidence
/// ([`crate::Deployment::explain`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientWindowEvent {
    /// The fused (global) window number.
    pub window: u64,
    /// Live APs expected when the window was submitted.
    pub expected_aps: usize,
    /// Of those, how many were *known* missing (lost reports, skew
    /// rejections, lost markers, dead workers) — the degraded-close
    /// reason, and what earned the consensus slack.
    pub missing_aps: usize,
    /// APs excluded from this window's fusion by the health layer's
    /// quarantine ([`crate::HealthConfig`]) — withheld evidence, not
    /// link loss, so it earns no consensus slack.
    pub quarantined_aps: usize,
    /// Distinct APs that contributed a bearing.
    pub n_aps: usize,
    /// Per-bearing evidence, in `(ap, seq)` order.
    pub bearings: Vec<BearingEvidence>,
    /// The fused fix position `(x, y)`, meters, if geometry allowed one.
    pub fix: Option<(f64, f64)>,
    /// RMS bearing-line disagreement of the fix, meters (`0` when no
    /// fix).
    pub residual_m: f64,
    /// The trained reference position the consensus compared against,
    /// *at check time* (before any auto-training this window did).
    pub reference: Option<(f64, f64)>,
    /// APs whose own enforcement admitted the client's frame(s).
    pub admitted_aps: usize,
    /// APs whose own enforcement flagged a spoof.
    pub flagged_aps: usize,
    /// The cross-AP consensus verdict.
    pub verdict: ConsensusVerdict,
}

impl ClientWindowEvent {
    /// Render the event as operator-facing post-mortem lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "window {:>4}: {}/{} APs heard",
            self.window, self.n_aps, self.expected_aps
        );
        if self.missing_aps > 0 {
            let _ = write!(out, " ({} known missing)", self.missing_aps);
        }
        if self.quarantined_aps > 0 {
            let _ = write!(out, " ({} quarantined)", self.quarantined_aps);
        }
        let _ = writeln!(
            out,
            ", enforcement {} admit / {} flag",
            self.admitted_aps, self.flagged_aps
        );
        for b in &self.bearings {
            let _ = writeln!(
                out,
                "  ap{:<3} azimuth {:>7.2} deg  confidence {:.2}",
                b.ap_id,
                b.azimuth_rad.to_degrees(),
                b.confidence
            );
        }
        match self.fix {
            Some((x, y)) => {
                let _ = writeln!(
                    out,
                    "  fix ({x:.2}, {y:.2}) m, residual {:.2} m",
                    self.residual_m
                );
            }
            None => {
                let _ = writeln!(out, "  no fix");
            }
        }
        match self.reference {
            Some((x, y)) => {
                let _ = writeln!(out, "  reference ({x:.2}, {y:.2}) m");
            }
            None => {
                let _ = writeln!(out, "  reference untrained");
            }
        }
        let _ = writeln!(out, "  verdict: {}", self.verdict.describe());
        out
    }
}

/// The telemetry bundle a [`crate::Deployment`] owns when
/// [`crate::DeployConfig::telemetry`] is enabled, shared (`Arc`) with
/// the decode pool, worker threads and fusion shards.
pub(crate) struct DeployTelemetry {
    pub cfg: TelemetryConfig,
    pub registry: Registry,
    pub recorder: FlightRecorder<MacAddr, ClientWindowEvent>,
}

impl DeployTelemetry {
    /// Build the bundle — `None` when telemetry is disabled, which is
    /// what reduces every downstream tap to a single branch.
    pub fn new(cfg: TelemetryConfig) -> Option<Arc<Self>> {
        if !cfg.enabled {
            return None;
        }
        let depth = if cfg.flight_recorder {
            cfg.recorder_depth
        } else {
            0
        };
        Some(Arc::new(Self {
            cfg,
            registry: Registry::new(),
            recorder: FlightRecorder::new(depth, cfg.recorder_clients),
        }))
    }

    /// A per-shard stage histogram handle, or `None` when stage timing
    /// is off (so the caller's span guard compiles down to a branch).
    pub fn stage(&self, name: &str, label: &str, idx: usize) -> Option<Arc<Histogram>> {
        self.cfg
            .stage_timing
            .then(|| self.registry.histogram(name, &[(label, &idx.to_string())]))
    }

    /// The flight recorder, when event recording is on.
    pub fn recorder(&self) -> Option<&FlightRecorder<MacAddr, ClientWindowEvent>> {
        self.cfg.flight_recorder.then_some(&self.recorder)
    }
}

/// The two stage-histogram handles one AP worker thread records into.
pub(crate) struct WorkerTap {
    /// `stage.worker_dsp`: the whole calibrate→cov→MUSIC batch pass.
    pub dsp: Arc<Histogram>,
    /// `stage.enforce`: one per-observation signature/ACL enforcement.
    pub enforce: Arc<Histogram>,
}

/// Per-shard fusion tap handles, built by the deployment when it
/// attaches telemetry to its fusion stage.
pub(crate) struct FusionTaps {
    /// `stage.fusion_drain` per shard (empty when stage timing is off).
    pub drain: Vec<Arc<Histogram>>,
    /// `stage.consensus` per shard (empty when stage timing is off).
    pub consensus: Vec<Arc<Histogram>>,
    /// The shared bundle (for the flight recorder).
    pub telemetry: Arc<DeployTelemetry>,
}

/// What one fusion-shard drain sees of the taps: per-shard histogram
/// refs plus the recorder. `Copy` so the scoped shard threads each take
/// their own.
#[derive(Clone, Copy)]
pub(crate) struct ShardTap<'a> {
    pub drain: Option<&'a Histogram>,
    pub consensus: Option<&'a Histogram>,
    pub recorder: Option<&'a FlightRecorder<MacAddr, ClientWindowEvent>>,
}

impl ShardTap<'_> {
    pub const NONE: ShardTap<'static> = ShardTap {
        drain: None,
        consensus: None,
        recorder: None,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_builds_no_bundle() {
        assert!(DeployTelemetry::new(TelemetryConfig::disabled()).is_none());
        let t = DeployTelemetry::new(TelemetryConfig::full()).expect("enabled");
        assert!(t.stage("stage.decode", "shard", 0).is_some());
        assert!(t.recorder().is_some());
        let counters_only = DeployTelemetry::new(TelemetryConfig::counters_only()).unwrap();
        assert!(counters_only.stage("stage.decode", "shard", 0).is_none());
        assert!(counters_only.recorder().is_none());
    }

    #[test]
    fn event_render_reads_like_a_post_mortem() {
        let e = ClientWindowEvent {
            window: 7,
            expected_aps: 4,
            missing_aps: 1,
            quarantined_aps: 1,
            n_aps: 3,
            bearings: vec![BearingEvidence {
                ap_id: 2,
                azimuth_rad: 1.0,
                confidence: 0.91,
            }],
            fix: Some((4.0, 6.0)),
            residual_m: 0.08,
            reference: Some((4.0, 6.1)),
            admitted_aps: 3,
            flagged_aps: 0,
            verdict: ConsensusVerdict::Consistent {
                displacement_m: 0.1,
            },
        };
        let text = e.render();
        assert!(text.contains("window    7"));
        assert!(text.contains("3/4 APs"));
        assert!(text.contains("1 known missing"));
        assert!(text.contains("1 quarantined"));
        assert!(text.contains("ap2"));
        assert!(text.contains("fix (4.00, 6.00)"));
        assert!(text.contains("reference (4.00, 6.10)"));
        assert!(text.contains("consistent"));
    }
}
