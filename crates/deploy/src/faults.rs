//! Deterministic fault injection: a seeded, scripted schedule of the
//! failures a fleet actually meets — wedged workers, mid-window
//! crashes, corrupted report payloads, byzantine bearing bias, burst
//! link loss, and clocks that start *drifting* mid-run.
//!
//! A [`FaultPlan`] is attached via [`crate::DeployConfig::faults`]
//! (default: `None` — the fault layer is zero-cost-off and the
//! deployment behaves byte-identically to a plan-free run, pinned by
//! `tests/proptest_chaos.rs`). Every fault is a pure function of the
//! plan and the window number, never of wall clocks or thread
//! interleavings, so a seeded chaos run is byte-reproducible: the same
//! plan degrades the same windows the same way on every rerun, at any
//! decode/fusion shard count and pipelining depth.
//!
//! The defensive counterpart lives in [`crate::health`]: corrupted
//! payloads are caught by the report-wire checksum, byzantine bearings
//! by the per-AP bearing-residual score, and persistent stalls by the
//! window-count watchdog.

/// How a corrupted report payload is mangled on the wire. All three are
/// applied *after* the worker computes the payload checksum — they
/// model on-path corruption, so the coordinator's checksum verification
/// catches them and rejects the payload
/// ([`crate::ApStats::reports_corrupt`]). A *lying AP* (valid checksum,
/// wrong bearings) is the byzantine case instead — see
/// [`FaultEvent::ByzantineBias`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Flip a high mantissa bit of the first report's azimuth — the
    /// classic silent bit-flip that used to be fused as a real bearing.
    BitFlipBearing,
    /// Rewind every packet's sequence label — a stale-seq replay.
    StaleSeq,
    /// Replace the first report's confidence with garbage (±1e300).
    GarbageConfidence,
}

/// One scripted fault. Windows are *global* window numbers; AP ids are
/// the deployment's stable ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// AP `ap`'s worker wedges for `for_windows` windows starting at
    /// `from_window`: its DSP produces nothing for those windows (the
    /// end-of-window marker still rides the live control path, flagged
    /// as stalled, so windows close). A wedge longer than the health
    /// layer's stall watchdog gets the worker reaped.
    Stall {
        /// The wedged AP.
        ap: usize,
        /// First stalled window.
        from_window: u64,
        /// Stall length, windows.
        for_windows: u64,
    },
    /// AP `ap`'s worker dies mid-window at `window`: neither payload
    /// nor marker is ever sent — the thread is simply gone, exactly
    /// like a panic or power loss.
    Crash {
        /// The crashing AP.
        ap: usize,
        /// The window it dies in.
        window: u64,
    },
    /// AP `ap`'s report payloads are corrupted on the wire from
    /// `from_window` on (every window, until the run ends).
    Corrupt {
        /// The AP whose uplink corrupts.
        ap: usize,
        /// First corrupted window.
        from_window: u64,
        /// How the payload is mangled.
        mode: CorruptionMode,
    },
    /// AP `ap` turns byzantine at `from_window`: every bearing it
    /// reports is biased by `bias_deg` degrees. The checksum is valid —
    /// the AP itself is lying — so only the cross-AP health score
    /// ([`crate::health`]) can catch it.
    ByzantineBias {
        /// The lying AP.
        ap: usize,
        /// First biased window.
        from_window: u64,
        /// Bearing bias, degrees.
        bias_deg: f64,
    },
    /// Burst link loss: every report payload from AP `ap` is dropped
    /// (retries and all) for `for_windows` windows starting at
    /// `from_window`. Markers survive — windows close degraded.
    BurstLoss {
        /// The AP whose uplink bursts.
        ap: usize,
        /// First lost window.
        from_window: u64,
        /// Burst length, windows.
        for_windows: u64,
    },
    /// AP `ap`'s clock starts *drifting* at `from_window`, gaining
    /// `drift_ppw` windows of label skew per elapsed window on top of
    /// its configured [`crate::ApSkew`]. The aligner's learned drift
    /// rate keeps gap detection sound under this (see
    /// [`crate::align::SkewAligner`]); drift beyond
    /// [`crate::DeployConfig::max_skew_windows`] is rejected and scored
    /// by the health layer.
    DriftOnset {
        /// The drifting AP.
        ap: usize,
        /// Window the drift starts.
        from_window: u64,
        /// Additional drift, windows per window.
        drift_ppw: f64,
    },
}

impl FaultEvent {
    /// The AP this event targets.
    pub fn ap(&self) -> usize {
        match *self {
            FaultEvent::Stall { ap, .. }
            | FaultEvent::Crash { ap, .. }
            | FaultEvent::Corrupt { ap, .. }
            | FaultEvent::ByzantineBias { ap, .. }
            | FaultEvent::BurstLoss { ap, .. }
            | FaultEvent::DriftOnset { ap, .. } => ap,
        }
    }
}

/// A seeded, scripted fault schedule for one deployment run. Attach via
/// [`crate::DeployConfig::faults`]; `None` (the default) injects
/// nothing and is byte-transparent.
///
/// ```
/// use sa_deploy::faults::{FaultEvent, FaultPlan};
/// let plan = FaultPlan {
///     seed: 7,
///     events: vec![FaultEvent::ByzantineBias {
///         ap: 1,
///         from_window: 4,
///         bias_deg: 15.0,
///     }],
/// };
/// assert_eq!(plan.for_ap(1).len(), 1);
/// assert!(plan.for_ap(0).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Plan seed. Folded into derived schedules
    /// ([`FaultPlan::scripted`]) and reserved for stochastic fault
    /// streams; scripted events fire regardless.
    pub seed: u64,
    /// The scripted events, in any order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The events targeting one AP (the per-worker view the deployment
    /// hands each worker thread).
    pub fn for_ap(&self, ap: usize) -> Vec<FaultEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.ap() == ap)
            .collect()
    }

    /// A canonical scripted chaos schedule over `n_aps` APs, derived
    /// from `seed` — the plan behind `multi_ap_fence --chaos <seed>`
    /// and the CI chaos smoke. Rotates one fault family per AP
    /// (byzantine bias, wire corruption, burst loss, stall, drift
    /// onset), with onset windows and magnitudes varied by the seed so
    /// different seeds exercise different timelines. AP `seed % n_aps`
    /// always turns byzantine (+15°) — the quarantine the smoke
    /// asserts.
    pub fn scripted(n_aps: usize, seed: u64) -> Self {
        let mut events = Vec::new();
        let byz = (seed % n_aps.max(1) as u64) as usize;
        let onset = 4 + (seed % 3);
        events.push(FaultEvent::ByzantineBias {
            ap: byz,
            from_window: onset,
            bias_deg: 15.0,
        });
        for k in 0..n_aps {
            if k == byz {
                continue;
            }
            // Deterministic family rotation over the remaining APs.
            let roll = (seed ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 4;
            let from = onset + 1 + (k as u64 % 3);
            events.push(match roll {
                0 => FaultEvent::Corrupt {
                    ap: k,
                    from_window: from,
                    mode: match seed % 3 {
                        0 => CorruptionMode::BitFlipBearing,
                        1 => CorruptionMode::StaleSeq,
                        _ => CorruptionMode::GarbageConfidence,
                    },
                },
                1 => FaultEvent::BurstLoss {
                    ap: k,
                    from_window: from,
                    for_windows: 2 + seed % 2,
                },
                2 => FaultEvent::Stall {
                    ap: k,
                    from_window: from,
                    for_windows: 2,
                },
                _ => FaultEvent::DriftOnset {
                    ap: k,
                    from_window: from,
                    drift_ppw: 0.25,
                },
            });
        }
        Self { seed, events }
    }
}

/// The compiled per-worker fault view: what one AP's worker thread
/// needs to answer "what happens to window `w`" in O(events) with no
/// allocation on the hot path.
#[derive(Debug, Clone, Default)]
pub(crate) struct ApFaults {
    events: Vec<FaultEvent>,
}

/// What the fault layer does to one window at one AP.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct WindowFaults {
    /// Wedge: skip DSP, withhold payload, flag the marker stalled.
    pub stall: bool,
    /// Die mid-window: no payload, no marker, thread exits.
    pub crash: bool,
    /// Mangle the payload after checksumming.
    pub corrupt: Option<CorruptionMode>,
    /// Bias every bearing, radians.
    pub bias_rad: f64,
    /// Force the payload lost on the link (marker survives).
    pub burst_loss: bool,
    /// Extra window-label skew from drift onset, windows.
    pub extra_label: i64,
}

impl ApFaults {
    pub fn new(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Evaluate the plan for global window `w`.
    pub fn at(&self, w: u64) -> WindowFaults {
        let mut out = WindowFaults::default();
        for e in &self.events {
            match *e {
                FaultEvent::Stall {
                    from_window,
                    for_windows,
                    ..
                } => {
                    if w >= from_window && w < from_window.saturating_add(for_windows) {
                        out.stall = true;
                    }
                }
                FaultEvent::Crash { window, .. } => {
                    if w == window {
                        out.crash = true;
                    }
                }
                FaultEvent::Corrupt {
                    from_window, mode, ..
                } => {
                    if w >= from_window {
                        out.corrupt = Some(mode);
                    }
                }
                FaultEvent::ByzantineBias {
                    from_window,
                    bias_deg,
                    ..
                } => {
                    if w >= from_window {
                        out.bias_rad += bias_deg.to_radians();
                    }
                }
                FaultEvent::BurstLoss {
                    from_window,
                    for_windows,
                    ..
                } => {
                    if w >= from_window && w < from_window.saturating_add(for_windows) {
                        out.burst_loss = true;
                    }
                }
                FaultEvent::DriftOnset {
                    from_window,
                    drift_ppw,
                    ..
                } => {
                    if w > from_window {
                        out.extra_label += (drift_ppw * (w - from_window) as f64).trunc() as i64;
                    }
                }
            }
        }
        out
    }
}

/// FNV-1a over the semantic bytes of a report payload — the report-wire
/// checksum. Computed by the worker before the payload leaves (and
/// before any wire corruption is injected), verified by the
/// coordinator on receipt: a mismatch rejects the whole payload and
/// counts [`crate::ApStats::reports_corrupt`] instead of silently
/// fusing a bit-flipped bearing.
pub(crate) fn payload_checksum(
    label: i64,
    seq_base: Option<u64>,
    packets: &[crate::ApPacket],
) -> u64 {
    let mut h = Fnv::new();
    h.word(label as u64);
    h.word(seq_base.map_or(u64::MAX, |s| s));
    for p in packets {
        h.word(p.ap_id as u64);
        h.word(p.seq);
        h.word(p.mac.map_or(0, |m| mac_word(&m) | 1 << 63));
        h.word(p.bearing_deg.to_bits());
        h.word(p.rss_db.to_bits());
        match &p.report {
            Some(r) => {
                h.word(r.azimuth.to_bits());
                h.word(r.confidence.to_bits());
                h.word(r.rss_db.to_bits());
                h.word(r.seq);
            }
            None => h.word(u64::MAX - 1),
        }
    }
    h.finish()
}

fn mac_word(m: &sa_mac::MacAddr) -> u64 {
    m.0.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64)
}

/// Minimal FNV-1a, word-at-a-time (the deploy crate keeps its runtime
/// dependency set free of hashing crates).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Apply wire corruption to a payload (after checksumming).
pub(crate) fn corrupt_payload(packets: &mut [crate::ApPacket], mode: CorruptionMode) {
    match mode {
        CorruptionMode::BitFlipBearing => {
            if let Some(r) = packets.iter_mut().find_map(|p| p.report.as_mut()) {
                r.azimuth = f64::from_bits(r.azimuth.to_bits() ^ (1 << 51));
            }
        }
        CorruptionMode::StaleSeq => {
            for p in packets.iter_mut() {
                p.seq = p.seq.wrapping_sub(1000);
                if let Some(r) = &mut p.report {
                    r.seq = p.seq;
                }
            }
        }
        CorruptionMode::GarbageConfidence => {
            if let Some(r) = packets.iter_mut().find_map(|p| p.report.as_mut()) {
                r.confidence = 1e300;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ApPacket;
    use sa_mac::MacAddr;
    use secureangle::pipeline::{BearingReport, FrameVerdict};
    use secureangle::spoof::SpoofVerdict;

    fn sample_packet() -> ApPacket {
        ApPacket {
            ap_id: 2,
            window: 5,
            seq: 3,
            mac: Some(MacAddr::local_from_index(9)),
            report: Some(BearingReport {
                mac: MacAddr::local_from_index(9),
                azimuth: 1.25,
                confidence: 0.8,
                rss_db: -42.0,
                seq: 3,
            }),
            bearing_deg: 71.6,
            rss_db: -42.0,
            verdict: FrameVerdict::Admit {
                spoof: SpoofVerdict::Match { score: 0.9 },
            },
        }
    }

    #[test]
    fn window_faults_follow_the_script() {
        let f = ApFaults::new(vec![
            FaultEvent::Stall {
                ap: 0,
                from_window: 3,
                for_windows: 2,
            },
            FaultEvent::BurstLoss {
                ap: 0,
                from_window: 6,
                for_windows: 1,
            },
            FaultEvent::ByzantineBias {
                ap: 0,
                from_window: 8,
                bias_deg: 15.0,
            },
            FaultEvent::DriftOnset {
                ap: 0,
                from_window: 0,
                drift_ppw: 0.5,
            },
        ]);
        assert!(!f.at(2).stall);
        assert!(f.at(3).stall && f.at(4).stall && !f.at(5).stall);
        assert!(f.at(6).burst_loss && !f.at(7).burst_loss);
        assert_eq!(f.at(7).bias_rad, 0.0);
        assert!((f.at(8).bias_rad - 15f64.to_radians()).abs() < 1e-12);
        assert_eq!(f.at(4).extra_label, 2);
        assert_eq!(f.at(9).extra_label, 4);
    }

    #[test]
    fn checksum_catches_every_corruption_mode() {
        let label = 5i64;
        let base = Some(3u64);
        for mode in [
            CorruptionMode::BitFlipBearing,
            CorruptionMode::StaleSeq,
            CorruptionMode::GarbageConfidence,
        ] {
            let mut pkts = vec![sample_packet()];
            let sum = payload_checksum(label, base, &pkts);
            corrupt_payload(&mut pkts, mode);
            assert_ne!(
                sum,
                payload_checksum(label, base, &pkts),
                "{mode:?} must break the checksum"
            );
        }
        // And an uncorrupted payload verifies.
        let pkts = vec![sample_packet()];
        assert_eq!(
            payload_checksum(label, base, &pkts),
            payload_checksum(label, base, &pkts)
        );
    }

    #[test]
    fn scripted_plan_targets_every_ap_and_is_seed_deterministic() {
        let a = FaultPlan::scripted(4, 42);
        let b = FaultPlan::scripted(4, 42);
        assert_eq!(a, b);
        let mut aps: Vec<usize> = a.events.iter().map(|e| e.ap()).collect();
        aps.sort_unstable();
        aps.dedup();
        assert_eq!(aps, vec![0, 1, 2, 3]);
        // Exactly one byzantine AP, at seed % n_aps.
        let byz: Vec<_> = a
            .events
            .iter()
            .filter(|e| matches!(e, FaultEvent::ByzantineBias { .. }))
            .collect();
        assert_eq!(byz.len(), 1);
        assert_eq!(byz[0].ap(), 2);
        assert_ne!(FaultPlan::scripted(4, 43).events, a.events);
    }
}
