//! The per-AP worker thread: the DSP half of the pipeline, driven by
//! pre-decoded packets from the coordinator.
//!
//! Deployment realism lives at this layer's edges: the worker stamps
//! its reports with *local* window/sequence labels (its own clock, see
//! [`ApSkew`]) and publishes them over a lossy link model
//! ([`LinkConfig`]) with bounded retransmission. Both are deterministic
//! per AP — the skew is a pure function of the window number and the
//! loss stream is seeded per AP — so a seeded deployment run stays
//! byte-reproducible no matter how the threads interleave.

use crate::config::{ApSkew, LinkConfig};
use crate::faults::{corrupt_payload, payload_checksum, ApFaults, WindowFaults};
use crate::report::{ApPacket, ApStats};
use crate::telemetry::WorkerTap;
use sa_linalg::CMat;
use sa_telemetry::StageTimer;
use secureangle::pipeline::{DecodedPacket, DropReason, FrameVerdict};
use secureangle::spoof::SpoofVerdict;
use secureangle::AccessPoint;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// One pre-decoded capture for a worker: the AP's own buffer plus the
/// shared stage-1 result.
pub(crate) struct WorkerPacket {
    pub buffer: Arc<CMat>,
    pub decoded: Arc<DecodedPacket>,
    pub seq: u64,
}

/// Coordinator → worker messages.
pub(crate) enum WorkerMsg {
    /// Process one window's captures, in `seq` order.
    Window {
        window: u64,
        packets: Vec<WorkerPacket>,
    },
    /// Die abruptly without reporting anything (test-only fault
    /// injection: models a worker crash / power loss mid-run).
    Crash,
    /// Drain and exit.
    Shutdown,
}

/// Worker → fusion: one message per `(AP, window)` — the whole
/// window's packet reports plus the worker's counters. Batching the
/// reports keeps the channel wake-up cost per *window* instead of per
/// packet, which matters once windows carry dozens of packets.
///
/// The window is identified by the worker's **local** `label` (skewed
/// clock); the coordinator's aligner maps it back to the global window
/// by per-AP FIFO order and checks the label against the learned
/// offset. `lost: true` means the report's packet payload was dropped
/// by the lossy link after exhausting retries — the marker itself
/// models the reliable control path, so windows still close.
pub(crate) struct WindowDone {
    pub ap_id: usize,
    /// Local window label (global + skew).
    pub label: i64,
    /// Local sequence label of the window's first *dispatched* packet
    /// (`None` for an empty window) — lets the aligner recover the
    /// per-window sequence delta exactly.
    pub seq_base: Option<u64>,
    pub packets: Vec<ApPacket>,
    pub stats: ApStats,
    /// The packet payload was lost on the link (packets is empty).
    pub lost: bool,
    /// The worker was wedged for this window (fault-injected stall):
    /// no DSP ran and the payload is empty, but the marker still rides
    /// the live control path so the window closes. A run of these
    /// trips the coordinator's stall watchdog.
    pub stalled: bool,
    /// Report-wire checksum over `(label, seq_base, packets)`, computed
    /// before any injected wire corruption. The coordinator recomputes
    /// and rejects the whole payload on mismatch
    /// ([`ApStats::reports_corrupt`]).
    pub checksum: u64,
    /// Final flush sentinel: the worker processed its whole queue and
    /// is exiting after an ordered shutdown. Carries no window — it
    /// tells the coordinator that any still-outstanding dispatches for
    /// this AP lost their markers (nothing later will ever reveal a
    /// tail gap). On a healthy run nothing is outstanding and the
    /// flush is a no-op.
    pub flush: bool,
}

pub(crate) struct WorkerCfg {
    pub snapshot_cap: usize,
    pub auto_train_signatures: bool,
    pub skew: ApSkew,
    pub link: LinkConfig,
    /// End-of-window marker drop probability
    /// ([`crate::DeployConfig::marker_loss_rate`]); draws come from a
    /// dedicated stream so enabling marker loss never shifts the
    /// report-loss draws.
    pub marker_loss_rate: f64,
    /// Stage-latency histogram handles (`stage.worker_dsp`,
    /// `stage.enforce`, labeled by AP) — `None` unless stage timing is
    /// on, so the disabled path costs one branch per span and reads no
    /// clock. Timing is write-only: nothing downstream ever reads it,
    /// keeping fused output byte-identical with telemetry on or off.
    pub tap: Option<WorkerTap>,
    /// This AP's slice of the deployment's scripted fault plan
    /// ([`crate::faults::FaultPlan`]); empty when no plan is attached.
    /// Every fault is a pure function of the window number, so faulted
    /// runs stay byte-reproducible.
    pub faults: ApFaults,
}

/// Deterministic per-AP loss stream: splitmix64 over `seed ^ ap_id`.
/// Self-contained so the deploy crate keeps its runtime dependency set
/// free of RNG crates (`rand`/`rand_chacha` are dev-dependencies here,
/// used only by tests). The stream advances once per delivery attempt,
/// in the worker's own FIFO order, making loss decisions independent
/// of thread interleaving.
struct LossStream {
    state: u64,
}

impl LossStream {
    fn new(seed: u64, ap_id: usize) -> Self {
        Self {
            state: seed ^ (ap_id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `p` (draws one word even at p = 0 or 1, so
    /// counter-less callers can reason about stream position; callers
    /// short-circuit `p == 0` for byte-compat with reliable links).
    fn dropped(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// The worker loop: for each window, stage every pre-decoded capture
/// into a `PacketBatch` (the AoA engine survives across windows via
/// `batch_with_engine`/`into_engine`), run the DSP pass, enforce, and
/// publish the window's reports to fusion. The publish path models the
/// lossy report link: each delivery attempt may drop (deterministic
/// per-AP stream), the worker retries up to the configured budget, and
/// an exhausted budget abandons the payload — the end-of-window marker
/// still goes out so the coordinator never stalls on this AP. Returns
/// the AP (with its trained state) and the run totals when shut down.
pub(crate) fn run_worker(
    ap_id: usize,
    mut ap: AccessPoint,
    cfg: WorkerCfg,
    rx: Receiver<WorkerMsg>,
    tx: SyncSender<WindowDone>,
) -> (AccessPoint, ApStats) {
    let mut engine = None;
    let mut totals = ApStats::default();
    let mut loss = LossStream::new(cfg.link.seed, ap_id);
    // Marker loss draws from its own stream (seed mixed with a fixed
    // tag) so the report-loss sequence is identical with it on or off.
    let mut marker_loss = LossStream::new(cfg.link.seed ^ 0x6d61_726b_6572, ap_id);
    while let Ok(msg) = rx.recv() {
        let (window, packets) = match msg {
            WorkerMsg::Shutdown => {
                // Ordered exit: everything queued before the Shutdown
                // was processed (FIFO), so flush tells the coordinator
                // any windows it is still waiting on lost their
                // markers for good.
                let _ = tx.send(WindowDone {
                    ap_id,
                    label: 0,
                    seq_base: None,
                    packets: Vec::new(),
                    stats: ApStats::default(),
                    lost: false,
                    stalled: false,
                    checksum: 0,
                    flush: true,
                });
                break;
            }
            WorkerMsg::Crash => return (ap, totals),
            WorkerMsg::Window { window, packets } => (window, packets),
        };
        // Scripted faults for this window: a pure function of the plan
        // and the window number, so nothing here depends on scheduling.
        let wf = if cfg.faults.is_empty() {
            WindowFaults::default()
        } else {
            cfg.faults.at(window)
        };
        if wf.crash {
            // Die mid-window: no payload, no marker, thread gone — the
            // coordinator's dead-worker machinery notices the hangup.
            return (ap, totals);
        }
        let mut stats = ApStats {
            windows: 1,
            ..ApStats::default()
        };
        let label = cfg.skew.window_label(window) + wf.extra_label;
        let seq_base = packets.first().map(|p| cfg.skew.seq_label(p.seq));

        let mut reports = Vec::new();
        if wf.stall {
            // Wedged DSP: the window's captures are dropped on the
            // floor, but the marker still goes out (flagged stalled) on
            // the live control path so the window closes.
            stats.windows_stalled += 1;
        } else {
            // DSP pass over the whole window through one batch; the
            // engine (manifold, steering table, eigensolver buffers)
            // carries over from the previous window.
            let mut batch = match engine.take() {
                Some(e) => ap.batch_with_engine(e),
                None => ap.batch(),
            };
            batch.set_snapshot_cap(cfg.snapshot_cap);
            let mut seqs = Vec::with_capacity(packets.len());
            for p in &packets {
                stats.packets += 1;
                match batch.push_predecoded(&p.buffer, &p.decoded) {
                    Ok(()) => seqs.push(p.seq),
                    Err(_) => stats.observe_failures += 1,
                }
            }
            let observations = {
                let _span = StageTimer::start(cfg.tap.as_ref().map(|t| &*t.dsp));
                batch.process()
            };
            engine = Some(batch.into_engine());

            // Enforcement + report assembly, in seq order. Reports
            // carry the worker's local labels — the coordinator's
            // aligner maps them back to global numbering.
            reports.reserve(observations.len());
            for (obs, &seq) in observations.iter().zip(&seqs) {
                stats.observed += 1;
                let verdict = {
                    let _span = StageTimer::start(cfg.tap.as_ref().map(|t| &*t.enforce));
                    ap.enforce(obs)
                };
                match verdict {
                    FrameVerdict::Admit { spoof } => {
                        stats.admitted += 1;
                        if cfg.auto_train_signatures && spoof == SpoofVerdict::Untrained {
                            if let Some(frame) = &obs.frame {
                                ap.train_client(frame.src, obs);
                                stats.trained += 1;
                            }
                        }
                    }
                    FrameVerdict::Drop(DropReason::SpoofSuspected { .. })
                    | FrameVerdict::Drop(DropReason::Quarantined) => stats.dropped_spoof += 1,
                    FrameVerdict::Drop(_) => stats.dropped_other += 1,
                }
                let local_seq = cfg.skew.seq_label(seq);
                let report = obs.bearing_report(local_seq);
                if report.is_some() {
                    stats.bearings += 1;
                }
                reports.push(ApPacket {
                    ap_id,
                    window: label.max(0) as u64,
                    seq: local_seq,
                    mac: obs.frame.as_ref().map(|f| f.src),
                    report,
                    bearing_deg: obs.bearing_deg,
                    rss_db: obs.rss_db,
                    verdict,
                });
            }
        }

        // Byzantine bias: the AP itself lies about its bearings, so the
        // bias lands *before* the checksum (the wire bytes are "valid")
        // and only the cross-AP health score can catch it.
        if wf.bias_rad != 0.0 {
            for p in &mut reports {
                p.bearing_deg += wf.bias_rad.to_degrees();
                if let Some(r) = &mut p.report {
                    r.azimuth += wf.bias_rad;
                }
            }
        }

        // Marker loss: the whole end-of-window message vanishes — the
        // coordinator only learns of it from a later marker's gap (or
        // the final flush). The window's work still happened, so its
        // stats fold into the run totals the worker hands back at exit.
        if cfg.marker_loss_rate > 0.0 && marker_loss.dropped(cfg.marker_loss_rate) {
            stats.markers_lost += 1;
            totals.absorb(&stats);
            continue;
        }

        // Lossy-link publish: roll each delivery attempt; an exhausted
        // retry budget abandons the payload but still sends the marker.
        let mut payload = Some(reports);
        if cfg.link.loss_rate > 0.0 {
            for attempt in 0..=cfg.link.retry_limit {
                if loss.dropped(cfg.link.loss_rate) {
                    stats.report_drops += 1;
                    if attempt < cfg.link.retry_limit {
                        stats.report_retransmits += 1;
                    } else {
                        stats.reports_lost += 1;
                        payload = None;
                    }
                } else {
                    break;
                }
            }
        }
        // Burst link loss: the whole payload (retries and all) is gone
        // for the faulted span; the marker still closes the window.
        if wf.burst_loss && payload.is_some() {
            stats.reports_lost += 1;
            payload = None;
        }
        let lost = payload.is_none();
        let mut packets_out = payload.unwrap_or_default();
        // Checksum the payload as sent, then apply any injected wire
        // corruption *after* — the coordinator's recompute catches it.
        let checksum = payload_checksum(label, seq_base, &packets_out);
        if let Some(mode) = wf.corrupt {
            corrupt_payload(&mut packets_out, mode);
        }
        let done = WindowDone {
            ap_id,
            label,
            seq_base,
            packets: packets_out,
            stats,
            lost,
            stalled: wf.stall,
            checksum,
            flush: false,
        };
        let delivered = match tx.try_send(done) {
            Ok(()) => true,
            Err(TrySendError::Full(mut msg)) => {
                msg.stats.backpressure_events += 1;
                stats.backpressure_events += 1;
                tx.send(msg).is_ok()
            }
            Err(TrySendError::Disconnected(_)) => false,
        };
        totals.absorb(&stats);
        if !delivered {
            break;
        }
    }
    (ap, totals)
}
