//! The per-AP worker thread: the DSP half of the pipeline, driven by
//! pre-decoded packets from the coordinator.

use crate::report::{ApPacket, ApStats};
use sa_linalg::CMat;
use secureangle::pipeline::{DecodedPacket, DropReason, FrameVerdict};
use secureangle::spoof::SpoofVerdict;
use secureangle::AccessPoint;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// One pre-decoded capture for a worker: the AP's own buffer plus the
/// shared stage-1 result.
pub(crate) struct WorkerPacket {
    pub buffer: Arc<CMat>,
    pub decoded: Arc<DecodedPacket>,
    pub seq: u64,
}

/// Coordinator → worker messages.
pub(crate) enum WorkerMsg {
    /// Process one window's captures, in `seq` order.
    Window {
        window: u64,
        packets: Vec<WorkerPacket>,
    },
    /// Drain and exit.
    Shutdown,
}

/// Worker → fusion: one message per `(AP, window)` — the whole
/// window's packet reports plus the worker's counters. Batching the
/// reports keeps the channel wake-up cost per *window* instead of per
/// packet, which matters once windows carry dozens of packets.
pub(crate) struct WindowDone {
    pub ap_id: usize,
    pub window: u64,
    pub packets: Vec<ApPacket>,
    pub stats: ApStats,
}

pub(crate) struct WorkerCfg {
    pub snapshot_cap: usize,
    pub auto_train_signatures: bool,
}

/// The worker loop: for each window, stage every pre-decoded capture
/// into a `PacketBatch` (the AoA engine survives across windows via
/// `batch_with_engine`/`into_engine`), run the DSP pass, enforce, and
/// publish the window's reports to fusion in one bounded send (with
/// backpressure accounting: a full channel bumps the counter, then the
/// send blocks — nothing is dropped). Returns the AP (with its trained
/// state) and the run totals when shut down.
pub(crate) fn run_worker(
    ap_id: usize,
    mut ap: AccessPoint,
    cfg: WorkerCfg,
    rx: Receiver<WorkerMsg>,
    tx: SyncSender<WindowDone>,
) -> (AccessPoint, ApStats) {
    let mut engine = None;
    let mut totals = ApStats::default();
    while let Ok(msg) = rx.recv() {
        let (window, packets) = match msg {
            WorkerMsg::Shutdown => break,
            WorkerMsg::Window { window, packets } => (window, packets),
        };
        let mut stats = ApStats {
            windows: 1,
            ..ApStats::default()
        };

        // DSP pass over the whole window through one batch; the engine
        // (manifold, steering table, eigensolver buffers) carries over
        // from the previous window.
        let mut batch = match engine.take() {
            Some(e) => ap.batch_with_engine(e),
            None => ap.batch(),
        };
        batch.set_snapshot_cap(cfg.snapshot_cap);
        let mut seqs = Vec::with_capacity(packets.len());
        for p in &packets {
            stats.packets += 1;
            match batch.push_predecoded(&p.buffer, &p.decoded) {
                Ok(()) => seqs.push(p.seq),
                Err(_) => stats.observe_failures += 1,
            }
        }
        let observations = batch.process();
        engine = Some(batch.into_engine());

        // Enforcement + report assembly, in seq order.
        let mut reports = Vec::with_capacity(observations.len());
        for (obs, &seq) in observations.iter().zip(&seqs) {
            stats.observed += 1;
            let verdict = ap.enforce(obs);
            match verdict {
                FrameVerdict::Admit { spoof } => {
                    stats.admitted += 1;
                    if cfg.auto_train_signatures && spoof == SpoofVerdict::Untrained {
                        if let Some(frame) = &obs.frame {
                            ap.train_client(frame.src, obs);
                            stats.trained += 1;
                        }
                    }
                }
                FrameVerdict::Drop(DropReason::SpoofSuspected { .. })
                | FrameVerdict::Drop(DropReason::Quarantined) => stats.dropped_spoof += 1,
                FrameVerdict::Drop(_) => stats.dropped_other += 1,
            }
            let report = obs.bearing_report(seq);
            if report.is_some() {
                stats.bearings += 1;
            }
            reports.push(ApPacket {
                ap_id,
                window,
                seq,
                mac: obs.frame.as_ref().map(|f| f.src),
                report,
                bearing_deg: obs.bearing_deg,
                rss_db: obs.rss_db,
                verdict,
            });
        }

        let done = WindowDone {
            ap_id,
            window,
            packets: reports,
            stats,
        };
        let delivered = match tx.try_send(done) {
            Ok(()) => true,
            Err(TrySendError::Full(mut msg)) => {
                msg.stats.backpressure_events += 1;
                stats.backpressure_events += 1;
                tx.send(msg).is_ok()
            }
            Err(TrySendError::Disconnected(_)) => false,
        };
        totals.absorb(&stats);
        if !delivered {
            break;
        }
    }
    (ap, totals)
}
