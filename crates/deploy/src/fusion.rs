//! The bearing-fusion stage: group per-AP packet reports by client and
//! window, intersect the bearings, smooth per-client tracks, and run
//! the cross-AP spoof consensus.
//!
//! Fusion is deterministic by construction: reports are sorted by
//! `(ap, seq)` before fusing and clients are visited in MAC order, so
//! the output is independent of how the worker threads interleaved on
//! the report channel.

use crate::config::DeployConfig;
use crate::report::{ApPacket, ClientFix, ClientSummary, FusedWindow};
use sa_channel::geom::Point;
use sa_mac::MacAddr;
use secureangle::localize::{localize_robust, localize_robust_weighted, BearingObservation};
use secureangle::spoof::{ConsensusVerdict, CrossApConsensus};
use secureangle::tracking::MobilityTracker;
use std::collections::BTreeMap;

/// Per-client fusion state.
struct ClientState {
    tracker: MobilityTracker,
    last_window: u64,
    fixes: u64,
    residual_sum: f64,
}

/// The fusion stage. [`crate::Deployment`] owns one, but it is usable
/// standalone (and benchmarked standalone): feed it one window's
/// [`ApPacket`]s and it returns the fused result.
///
/// ```
/// use sa_channel::geom::pt;
/// use sa_deploy::{DeployConfig, Fusion};
///
/// let aps = vec![pt(0.0, 0.0), pt(10.0, 0.0), pt(10.0, 10.0)];
/// let mut fusion = Fusion::new(aps, DeployConfig::default());
/// assert_eq!(fusion.live_aps(), 3);
/// // Feed one closed window's ApPackets (normally from the workers):
/// let fused = fusion.fuse_window(0, Vec::new());
/// assert_eq!(fused.expected_aps, 3);
/// // Membership can change mid-run; consensus references re-baseline.
/// fusion.retire_ap(2);
/// assert_eq!(fusion.live_aps(), 2);
/// ```
pub struct Fusion {
    cfg: DeployConfig,
    ap_positions: Vec<Point>,
    /// Live-membership flags, indexed by stable AP id. Retired APs keep
    /// their position slot (historical packets may still reference it)
    /// but stop counting toward the expected quorum.
    live: Vec<bool>,
    consensus: CrossApConsensus,
    clients: BTreeMap<MacAddr, ClientState>,
}

impl Fusion {
    /// New fusion stage for APs at the given positions (all live).
    pub fn new(ap_positions: Vec<Point>, cfg: DeployConfig) -> Self {
        Self {
            consensus: CrossApConsensus::new(cfg.consensus),
            cfg,
            live: vec![true; ap_positions.len()],
            ap_positions,
            clients: BTreeMap::new(),
        }
    }

    /// Register a new AP at `position`; returns its stable id. Does
    /// **not** re-baseline — callers decide (a [`crate::Deployment`]
    /// re-baselines on every membership change).
    pub fn add_ap(&mut self, position: Point) -> usize {
        self.ap_positions.push(position);
        self.live.push(true);
        self.ap_positions.len() - 1
    }

    /// Mark an AP as no longer a member: it stops counting toward the
    /// expected quorum. Idempotent; unknown ids are ignored.
    pub fn retire_ap(&mut self, ap_id: usize) {
        if let Some(flag) = self.live.get_mut(ap_id) {
            *flag = false;
        }
    }

    /// Number of live APs.
    pub fn live_aps(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Forget every trained consensus reference (flag history is kept)
    /// so clients re-baseline from their next clean fix. Deployments
    /// call this on AP membership change: the fused-fix geometry shifts
    /// with the contributing AP set, and references trained under the
    /// old membership would read as displacement — i.e. as spoofs.
    /// Mobility trackers are *not* reset (a client's position estimate
    /// stays valid; only the spoof baseline is geometry-dependent).
    pub fn rebaseline(&mut self) {
        self.consensus.rebaseline();
    }

    /// Train (or move) a client's consensus reference position by hand
    /// (e.g. from a commissioning survey instead of auto-training).
    pub fn train_reference(&mut self, mac: MacAddr, position: Point) {
        self.consensus.train(mac, position);
    }

    /// A client's trained consensus reference position.
    pub fn reference(&self, mac: &MacAddr) -> Option<Point> {
        self.consensus.reference(mac)
    }

    /// Consensus flags accumulated for a client.
    pub fn consensus_flags(&self, mac: &MacAddr) -> usize {
        self.consensus.flag_count(mac)
    }

    /// Fuse one closed window. `packets` is everything every AP
    /// reported for the window, in any order; ordering is normalised
    /// internally. Tracker `dt` is derived from the gap in window
    /// numbers (late windows fall back to the tracker's zero-`dt`
    /// position-only update). The expected quorum is the current live
    /// membership, with no missing-report slack; a coordinator that
    /// tracks per-window degradation uses
    /// [`Fusion::fuse_window_expecting`] instead.
    pub fn fuse_window(&mut self, window: u64, packets: Vec<ApPacket>) -> FusedWindow {
        let expected = self.live_aps();
        self.fuse_window_expecting(window, packets, expected, 0)
    }

    /// [`Fusion::fuse_window`] with the coordinator's per-window
    /// degradation knowledge: `expected_aps` is the live membership
    /// *when the window was submitted* (it may differ from the current
    /// membership under churn) and sets the effective fix quorum
    /// (`min_aps_for_fix`, clamped to what the membership can deliver,
    /// never below 2); `missing_aps` is how many of those APs'
    /// reports are *known* not to have arrived (lost on the link,
    /// rejected for skew, or the worker died). Only `missing_aps`
    /// earns the consensus displacement slack
    /// ([`secureangle::spoof::CrossApConsensus::check_degraded`]) — a
    /// client that some delivered AP simply could not hear is a
    /// coverage fact, not link degradation, and gets no slack.
    pub fn fuse_window_expecting(
        &mut self,
        window: u64,
        mut packets: Vec<ApPacket>,
        expected_aps: usize,
        missing_aps: usize,
    ) -> FusedWindow {
        // Degrade the fix quorum with the membership: a 4-AP policy on
        // a deployment temporarily down to 2 live APs must still fix
        // (two bearings are the geometric minimum), but never fix on a
        // single bearing.
        let quorum = self.cfg.min_aps_for_fix.min(expected_aps).max(2);
        packets.sort_by_key(|p| (p.ap_id, p.seq));

        // Group by claimed MAC, preserving the (ap, seq) order.
        let mut by_mac: BTreeMap<MacAddr, Vec<&ApPacket>> = BTreeMap::new();
        for p in &packets {
            if let Some(mac) = p.mac {
                by_mac.entry(mac).or_default().push(p);
            }
        }

        let mut clients = Vec::with_capacity(by_mac.len());
        let mut bearings_total = 0usize;
        let mut localize_failures = 0usize;
        for (mac, reports) in by_mac {
            let mut bearings = Vec::new();
            let mut bearing_aps = Vec::new();
            let mut confidences = Vec::new();
            let mut confidence_sum = 0.0;
            let mut admitted_aps = 0usize;
            let mut flagged_aps = 0usize;
            for r in &reports {
                if let Some(b) = &r.report {
                    bearings.push(BearingObservation {
                        ap_position: self.ap_positions[r.ap_id],
                        azimuth: b.azimuth,
                    });
                    bearing_aps.push(r.ap_id);
                    confidences.push(b.confidence);
                    confidence_sum += b.confidence;
                }
                match r.verdict {
                    secureangle::pipeline::FrameVerdict::Admit { .. } => admitted_aps += 1,
                    secureangle::pipeline::FrameVerdict::Drop(
                        secureangle::pipeline::DropReason::SpoofSuspected { .. },
                    )
                    | secureangle::pipeline::FrameVerdict::Drop(
                        secureangle::pipeline::DropReason::Quarantined,
                    ) => flagged_aps += 1,
                    _ => {}
                }
            }
            bearings_total += bearings.len();
            let distinct_aps = |aps: &[usize]| {
                let mut seen: Vec<usize> = aps.to_vec();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            };
            let n_aps = distinct_aps(&bearing_aps);
            let mean_confidence = if bearings.is_empty() {
                0.0
            } else {
                confidence_sum / bearings.len() as f64
            };

            let (fix, track, consensus) = if n_aps >= quorum {
                // Robust fit: a single AP's multipath ghost (a bearing
                // the fix lands behind) is dropped and the fix refit.
                // Optionally confidence-weighted, so marginal bearings
                // pull degraded windows less.
                let solved = if self.cfg.weight_bearings_by_confidence {
                    localize_robust_weighted(&bearings, &confidences, quorum)
                } else {
                    localize_robust(&bearings, quorum)
                };
                match solved {
                    Ok((fix, dropped)) => {
                        // Smooth the trace.
                        let state = self.clients.entry(mac).or_insert_with(|| ClientState {
                            tracker: MobilityTracker::new(self.cfg.tracker),
                            last_window: window,
                            fixes: 0,
                            residual_sum: 0.0,
                        });
                        let dt =
                            window.saturating_sub(state.last_window) as f64 * self.cfg.window_dt_s;
                        let track = state.tracker.update(fix.position, dt);
                        state.last_window = window;
                        state.fixes += 1;
                        state.residual_sum += fix.residual_m;
                        // Consensus: check against the reference using
                        // the APs that actually *support* the robust
                        // fix (dropped ghost bearings no longer count
                        // toward the min-APs quorum), or auto-train
                        // the reference from the first clean fix.
                        let supporting_aps: Vec<usize> = bearing_aps
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| !dropped.contains(i))
                            .map(|(_, &ap)| ap)
                            .collect();
                        // Slack only for reports the coordinator knows
                        // went missing: the supporting count plus the
                        // missing count is "what this fix would have
                        // had on a healthy link", so range-limited
                        // clients and robust-dropped ghosts earn none.
                        let supporting = distinct_aps(&supporting_aps);
                        let verdict = self.consensus.check_degraded(
                            mac,
                            &fix,
                            supporting,
                            supporting + missing_aps,
                        );
                        if verdict == ConsensusVerdict::Untrained
                            && self.cfg.auto_train_references
                            && fix.behind_count == 0
                            && fix.residual_m <= self.cfg.reference_train_max_residual_m
                        {
                            self.consensus.train(mac, fix.position);
                        }
                        (Some(fix), Some(track), verdict)
                    }
                    Err(_) => {
                        localize_failures += 1;
                        (None, None, ConsensusVerdict::Insufficient)
                    }
                }
            } else {
                (None, None, ConsensusVerdict::Insufficient)
            };

            clients.push(ClientFix {
                mac,
                n_aps,
                n_bearings: bearings.len(),
                fix,
                track,
                consensus,
                admitted_aps,
                flagged_aps,
                mean_confidence,
                expected_aps,
            });
        }

        FusedWindow {
            window,
            clients,
            packets: packets.len(),
            bearings: bearings_total,
            localize_failures,
            expected_aps,
            // Link-health fields are filled by the coordinator, which
            // owns the per-window loss/skew accounting; a standalone
            // fusion stage reports zeros.
            lost_reports: 0,
            skew_rejected: 0,
        }
    }

    /// Per-client whole-run summaries, ordered by MAC.
    pub fn client_summaries(&self) -> Vec<ClientSummary> {
        self.clients
            .iter()
            .map(|(mac, s)| ClientSummary {
                mac: *mac,
                fixes: s.fixes,
                mean_residual_m: if s.fixes > 0 {
                    s.residual_sum / s.fixes as f64
                } else {
                    0.0
                },
                consensus_flags: self.consensus.flag_count(mac),
                reference: self.consensus.reference(mac),
                last_track: s.tracker.state().copied(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_channel::geom::pt;
    use secureangle::pipeline::FrameVerdict;
    use secureangle::spoof::SpoofVerdict;

    fn pkt(ap_id: usize, seq: u64, mac: u32, az: f64) -> ApPacket {
        pkt_conf(ap_id, seq, mac, az, 0.9)
    }

    fn pkt_conf(ap_id: usize, seq: u64, mac: u32, az: f64, confidence: f64) -> ApPacket {
        ApPacket {
            ap_id,
            window: 0,
            seq,
            mac: Some(MacAddr::local_from_index(mac)),
            report: Some(secureangle::pipeline::BearingReport {
                mac: MacAddr::local_from_index(mac),
                azimuth: az,
                confidence,
                rss_db: -40.0,
                seq,
            }),
            bearing_deg: az.to_degrees(),
            rss_db: -40.0,
            verdict: FrameVerdict::Admit {
                spoof: SpoofVerdict::Match { score: 0.9 },
            },
        }
    }

    fn square_aps() -> Vec<Point> {
        vec![pt(0.0, 0.0), pt(10.0, 0.0), pt(10.0, 10.0), pt(0.0, 10.0)]
    }

    fn bearings_to(aps: &[Point], target: Point, mac: u32) -> Vec<ApPacket> {
        aps.iter()
            .enumerate()
            .map(|(i, &p)| pkt(i, 0, mac, p.azimuth_to(target)))
            .collect()
    }

    #[test]
    fn fuses_consistent_bearings_into_a_fix() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let target = pt(4.0, 6.0);
        let out = fusion.fuse_window(0, bearings_to(&aps, target, 1));
        assert_eq!(out.clients.len(), 1);
        let c = &out.clients[0];
        assert_eq!(c.n_aps, 4);
        let fix = c.fix.expect("fix");
        assert!(fix.position.dist(target) < 1e-6, "fix {:?}", fix.position);
        // First clean fix auto-trains the consensus reference.
        assert_eq!(c.consensus, ConsensusVerdict::Untrained);
        assert!(fusion.reference(&MacAddr::local_from_index(1)).is_some());
        // Second window at the same spot is consistent.
        let out = fusion.fuse_window(1, bearings_to(&aps, target, 1));
        assert!(matches!(
            out.clients[0].consensus,
            ConsensusVerdict::Consistent { .. }
        ));
    }

    #[test]
    fn displaced_client_is_flagged_by_consensus() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let home = pt(4.0, 6.0);
        fusion.fuse_window(0, bearings_to(&aps, home, 1));
        // The same MAC suddenly transmits from 7 m away.
        let out = fusion.fuse_window(1, bearings_to(&aps, pt(9.0, 1.0), 1));
        assert!(
            out.clients[0].consensus.is_spoof(),
            "verdict {:?}",
            out.clients[0].consensus
        );
        assert_eq!(fusion.consensus_flags(&MacAddr::local_from_index(1)), 1);
    }

    #[test]
    fn single_ap_bearing_is_insufficient() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let out = fusion.fuse_window(0, vec![pkt(0, 0, 1, 0.5)]);
        assert_eq!(out.clients[0].consensus, ConsensusVerdict::Insufficient);
        assert!(out.clients[0].fix.is_none());
    }

    #[test]
    fn fusion_is_order_independent() {
        let aps = square_aps();
        let target = pt(3.0, 3.0);
        let mut forward = Fusion::new(aps.clone(), DeployConfig::default());
        let mut reversed = Fusion::new(aps.clone(), DeployConfig::default());
        let pkts = bearings_to(&aps, target, 1);
        let mut rev = pkts.clone();
        rev.reverse();
        let a = forward.fuse_window(0, pkts);
        let b = reversed.fuse_window(0, rev);
        assert_eq!(a, b, "fusion must not depend on arrival order");
    }

    #[test]
    fn parallel_bearings_count_as_localize_failure() {
        let aps = vec![pt(0.0, 0.0), pt(0.0, 5.0)];
        let mut fusion = Fusion::new(aps, DeployConfig::default());
        // Both APs report the exact same azimuth from a vertical
        // baseline pointing... at the same angle: parallel lines.
        let out = fusion.fuse_window(0, vec![pkt(0, 0, 1, 0.3), pkt(1, 0, 1, 0.3)]);
        assert_eq!(out.localize_failures, 1);
        assert!(out.clients[0].fix.is_none());
    }

    #[test]
    fn quorum_degrades_with_live_membership() {
        let aps = square_aps();
        let target = pt(4.0, 6.0);
        let cfg = DeployConfig {
            min_aps_for_fix: 3,
            ..DeployConfig::default()
        };
        let mut fusion = Fusion::new(aps.clone(), cfg);
        // Full membership: two bearings miss the 3-AP quorum.
        let two = vec![
            pkt(0, 0, 1, aps[0].azimuth_to(target)),
            pkt(1, 0, 1, aps[1].azimuth_to(target)),
        ];
        let out = fusion.fuse_window(0, two.clone());
        assert!(out.clients[0].fix.is_none());
        assert_eq!(out.expected_aps, 4);
        // Two APs retire: the quorum clamps to what the membership can
        // deliver and the same two bearings now fix.
        fusion.retire_ap(2);
        fusion.retire_ap(3);
        let out = fusion.fuse_window(1, two);
        assert_eq!(out.expected_aps, 2);
        let fix = out.clients[0].fix.expect("degraded quorum fix");
        assert!(fix.position.dist(target) < 1e-6);
        assert_eq!(out.clients[0].expected_aps, 2);
    }

    #[test]
    fn rebaseline_forgets_references_until_the_next_clean_fix() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let mac = MacAddr::local_from_index(1);
        fusion.fuse_window(0, bearings_to(&aps, pt(4.0, 6.0), 1));
        assert!(fusion.reference(&mac).is_some());
        fusion.rebaseline();
        assert!(fusion.reference(&mac).is_none());
        // The next clean fix retrains — even at a different position,
        // without raising a (false) spoof flag.
        let out = fusion.fuse_window(1, bearings_to(&aps, pt(8.0, 2.0), 1));
        assert_eq!(out.clients[0].consensus, ConsensusVerdict::Untrained);
        let newref = fusion.reference(&mac).expect("retrained");
        assert!(newref.dist(pt(8.0, 2.0)) < 1e-6);
        assert_eq!(fusion.consensus_flags(&mac), 0);
    }

    #[test]
    fn partial_windows_get_consensus_slack_but_attacks_still_flag() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let home = pt(4.0, 6.0);
        fusion.fuse_window(0, bearings_to(&aps, home, 1));
        // A 2-of-4 window 2.4 m off because two AP reports were LOST:
        // over the 2 m full-quorum gate, inside the degraded-window
        // slack (2 + 2×0.5 = 3 m).
        let nearby = pt(6.4, 6.0);
        let partial: Vec<ApPacket> = aps[..2]
            .iter()
            .enumerate()
            .map(|(i, &p)| pkt(i, 0, 1, p.azimuth_to(nearby)))
            .collect();
        let out = fusion.fuse_window_expecting(1, partial.clone(), 4, 2);
        assert!(
            matches!(
                out.clients[0].consensus,
                ConsensusVerdict::Consistent { .. }
            ),
            "lost-report window should get slack: {:?}",
            out.clients[0].consensus
        );
        // The same 2-AP view with every report DELIVERED (the client is
        // merely out of the other APs' range) earns no slack: coverage
        // is not degradation, and the displacement is flagged.
        let out = fusion.fuse_window_expecting(2, partial, 4, 0);
        assert!(
            out.clients[0].consensus.is_spoof(),
            "range-limited client must not get loss slack: {:?}",
            out.clients[0].consensus
        );
        // A real displacement is caught even with lost-report slack.
        let far = pt(9.0, 1.0);
        let attack: Vec<ApPacket> = aps[..2]
            .iter()
            .enumerate()
            .map(|(i, &p)| pkt(i, 0, 1, p.azimuth_to(far)))
            .collect();
        let out = fusion.fuse_window_expecting(3, attack, 4, 2);
        assert!(out.clients[0].consensus.is_spoof());
    }

    #[test]
    fn confidence_weighting_pulls_fix_toward_confident_bearings() {
        let aps = square_aps();
        let target = pt(4.0, 6.0);
        let biased = |fusion: &mut Fusion| {
            // Three confident bearings on the target plus one marginal,
            // badly biased bearing from AP 3.
            let mut pkts: Vec<ApPacket> = aps[..3]
                .iter()
                .enumerate()
                .map(|(i, &p)| pkt_conf(i, 0, 1, p.azimuth_to(target), 0.95))
                .collect();
            pkts.push(pkt_conf(3, 0, 1, aps[3].azimuth_to(target) + 0.35, 0.05));
            fusion.fuse_window(0, pkts)
        };
        let mut unweighted = Fusion::new(aps.clone(), DeployConfig::default());
        let cfg = DeployConfig {
            weight_bearings_by_confidence: true,
            ..DeployConfig::default()
        };
        let mut weighted = Fusion::new(aps.clone(), cfg);
        let u = biased(&mut unweighted).clients[0].fix.expect("fix");
        let w = biased(&mut weighted).clients[0].fix.expect("fix");
        assert!(
            w.position.dist(target) < u.position.dist(target),
            "weighted {:?} vs unweighted {:?}",
            w.position,
            u.position
        );
    }

    #[test]
    fn summaries_track_fix_counts() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        for w in 0..3 {
            fusion.fuse_window(w, bearings_to(&aps, pt(4.0, 6.0), 7));
        }
        let s = fusion.client_summaries();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].fixes, 3);
        assert!(s[0].mean_residual_m < 0.1);
        assert!(s[0].last_track.is_some());
    }
}
