//! The bearing-fusion stage: group per-AP packet reports by client and
//! window, intersect the bearings, smooth per-client tracks, and run
//! the cross-AP spoof consensus.
//!
//! Fusion is deterministic by construction: reports are sorted by
//! `(ap, seq)` before fusing and clients are visited in MAC order, so
//! the output is independent of how the worker threads interleaved on
//! the report channel.

use crate::config::DeployConfig;
use crate::report::{ApPacket, ClientFix, ClientSummary, FusedWindow};
use sa_channel::geom::Point;
use sa_mac::MacAddr;
use secureangle::localize::{localize_robust, BearingObservation};
use secureangle::spoof::{ConsensusVerdict, CrossApConsensus};
use secureangle::tracking::MobilityTracker;
use std::collections::BTreeMap;

/// Per-client fusion state.
struct ClientState {
    tracker: MobilityTracker,
    last_window: u64,
    fixes: u64,
    residual_sum: f64,
}

/// The fusion stage. [`crate::Deployment`] owns one, but it is usable
/// standalone (and benchmarked standalone): feed it one window's
/// [`ApPacket`]s and it returns the fused result.
pub struct Fusion {
    cfg: DeployConfig,
    ap_positions: Vec<Point>,
    consensus: CrossApConsensus,
    clients: BTreeMap<MacAddr, ClientState>,
}

impl Fusion {
    /// New fusion stage for APs at the given positions.
    pub fn new(ap_positions: Vec<Point>, cfg: DeployConfig) -> Self {
        Self {
            consensus: CrossApConsensus::new(cfg.consensus),
            cfg,
            ap_positions,
            clients: BTreeMap::new(),
        }
    }

    /// Train (or move) a client's consensus reference position by hand
    /// (e.g. from a commissioning survey instead of auto-training).
    pub fn train_reference(&mut self, mac: MacAddr, position: Point) {
        self.consensus.train(mac, position);
    }

    /// A client's trained consensus reference position.
    pub fn reference(&self, mac: &MacAddr) -> Option<Point> {
        self.consensus.reference(mac)
    }

    /// Consensus flags accumulated for a client.
    pub fn consensus_flags(&self, mac: &MacAddr) -> usize {
        self.consensus.flag_count(mac)
    }

    /// Fuse one closed window. `packets` is everything every AP
    /// reported for the window, in any order; ordering is normalised
    /// internally. Tracker `dt` is derived from the gap in window
    /// numbers (late windows fall back to the tracker's zero-`dt`
    /// position-only update).
    pub fn fuse_window(&mut self, window: u64, mut packets: Vec<ApPacket>) -> FusedWindow {
        packets.sort_by_key(|p| (p.ap_id, p.seq));

        // Group by claimed MAC, preserving the (ap, seq) order.
        let mut by_mac: BTreeMap<MacAddr, Vec<&ApPacket>> = BTreeMap::new();
        for p in &packets {
            if let Some(mac) = p.mac {
                by_mac.entry(mac).or_default().push(p);
            }
        }

        let mut clients = Vec::with_capacity(by_mac.len());
        let mut bearings_total = 0usize;
        let mut localize_failures = 0usize;
        for (mac, reports) in by_mac {
            let mut bearings = Vec::new();
            let mut bearing_aps = Vec::new();
            let mut confidence_sum = 0.0;
            let mut admitted_aps = 0usize;
            let mut flagged_aps = 0usize;
            for r in &reports {
                if let Some(b) = &r.report {
                    bearings.push(BearingObservation {
                        ap_position: self.ap_positions[r.ap_id],
                        azimuth: b.azimuth,
                    });
                    bearing_aps.push(r.ap_id);
                    confidence_sum += b.confidence;
                }
                match r.verdict {
                    secureangle::pipeline::FrameVerdict::Admit { .. } => admitted_aps += 1,
                    secureangle::pipeline::FrameVerdict::Drop(
                        secureangle::pipeline::DropReason::SpoofSuspected { .. },
                    )
                    | secureangle::pipeline::FrameVerdict::Drop(
                        secureangle::pipeline::DropReason::Quarantined,
                    ) => flagged_aps += 1,
                    _ => {}
                }
            }
            bearings_total += bearings.len();
            let distinct_aps = |aps: &[usize]| {
                let mut seen: Vec<usize> = aps.to_vec();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            };
            let n_aps = distinct_aps(&bearing_aps);
            let mean_confidence = if bearings.is_empty() {
                0.0
            } else {
                confidence_sum / bearings.len() as f64
            };

            let (fix, track, consensus) = if n_aps >= self.cfg.min_aps_for_fix {
                // Robust fit: a single AP's multipath ghost (a bearing
                // the fix lands behind) is dropped and the fix refit.
                match localize_robust(&bearings, self.cfg.min_aps_for_fix) {
                    Ok((fix, dropped)) => {
                        // Smooth the trace.
                        let state = self.clients.entry(mac).or_insert_with(|| ClientState {
                            tracker: MobilityTracker::new(self.cfg.tracker),
                            last_window: window,
                            fixes: 0,
                            residual_sum: 0.0,
                        });
                        let dt =
                            window.saturating_sub(state.last_window) as f64 * self.cfg.window_dt_s;
                        let track = state.tracker.update(fix.position, dt);
                        state.last_window = window;
                        state.fixes += 1;
                        state.residual_sum += fix.residual_m;
                        // Consensus: check against the reference using
                        // the APs that actually *support* the robust
                        // fix (dropped ghost bearings no longer count
                        // toward the min-APs quorum), or auto-train
                        // the reference from the first clean fix.
                        let supporting_aps: Vec<usize> = bearing_aps
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| !dropped.contains(i))
                            .map(|(_, &ap)| ap)
                            .collect();
                        let verdict =
                            self.consensus
                                .check(mac, &fix, distinct_aps(&supporting_aps));
                        if verdict == ConsensusVerdict::Untrained
                            && self.cfg.auto_train_references
                            && fix.behind_count == 0
                            && fix.residual_m <= self.cfg.reference_train_max_residual_m
                        {
                            self.consensus.train(mac, fix.position);
                        }
                        (Some(fix), Some(track), verdict)
                    }
                    Err(_) => {
                        localize_failures += 1;
                        (None, None, ConsensusVerdict::Insufficient)
                    }
                }
            } else {
                (None, None, ConsensusVerdict::Insufficient)
            };

            clients.push(ClientFix {
                mac,
                n_aps,
                n_bearings: bearings.len(),
                fix,
                track,
                consensus,
                admitted_aps,
                flagged_aps,
                mean_confidence,
            });
        }

        FusedWindow {
            window,
            clients,
            packets: packets.len(),
            bearings: bearings_total,
            localize_failures,
        }
    }

    /// Per-client whole-run summaries, ordered by MAC.
    pub fn client_summaries(&self) -> Vec<ClientSummary> {
        self.clients
            .iter()
            .map(|(mac, s)| ClientSummary {
                mac: *mac,
                fixes: s.fixes,
                mean_residual_m: if s.fixes > 0 {
                    s.residual_sum / s.fixes as f64
                } else {
                    0.0
                },
                consensus_flags: self.consensus.flag_count(mac),
                reference: self.consensus.reference(mac),
                last_track: s.tracker.state().copied(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_channel::geom::pt;
    use secureangle::pipeline::FrameVerdict;
    use secureangle::spoof::SpoofVerdict;

    fn pkt(ap_id: usize, seq: u64, mac: u32, az: f64) -> ApPacket {
        ApPacket {
            ap_id,
            window: 0,
            seq,
            mac: Some(MacAddr::local_from_index(mac)),
            report: Some(secureangle::pipeline::BearingReport {
                mac: MacAddr::local_from_index(mac),
                azimuth: az,
                confidence: 0.9,
                rss_db: -40.0,
                seq,
            }),
            bearing_deg: az.to_degrees(),
            rss_db: -40.0,
            verdict: FrameVerdict::Admit {
                spoof: SpoofVerdict::Match { score: 0.9 },
            },
        }
    }

    fn square_aps() -> Vec<Point> {
        vec![pt(0.0, 0.0), pt(10.0, 0.0), pt(10.0, 10.0), pt(0.0, 10.0)]
    }

    fn bearings_to(aps: &[Point], target: Point, mac: u32) -> Vec<ApPacket> {
        aps.iter()
            .enumerate()
            .map(|(i, &p)| pkt(i, 0, mac, p.azimuth_to(target)))
            .collect()
    }

    #[test]
    fn fuses_consistent_bearings_into_a_fix() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let target = pt(4.0, 6.0);
        let out = fusion.fuse_window(0, bearings_to(&aps, target, 1));
        assert_eq!(out.clients.len(), 1);
        let c = &out.clients[0];
        assert_eq!(c.n_aps, 4);
        let fix = c.fix.expect("fix");
        assert!(fix.position.dist(target) < 1e-6, "fix {:?}", fix.position);
        // First clean fix auto-trains the consensus reference.
        assert_eq!(c.consensus, ConsensusVerdict::Untrained);
        assert!(fusion.reference(&MacAddr::local_from_index(1)).is_some());
        // Second window at the same spot is consistent.
        let out = fusion.fuse_window(1, bearings_to(&aps, target, 1));
        assert!(matches!(
            out.clients[0].consensus,
            ConsensusVerdict::Consistent { .. }
        ));
    }

    #[test]
    fn displaced_client_is_flagged_by_consensus() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let home = pt(4.0, 6.0);
        fusion.fuse_window(0, bearings_to(&aps, home, 1));
        // The same MAC suddenly transmits from 7 m away.
        let out = fusion.fuse_window(1, bearings_to(&aps, pt(9.0, 1.0), 1));
        assert!(
            out.clients[0].consensus.is_spoof(),
            "verdict {:?}",
            out.clients[0].consensus
        );
        assert_eq!(fusion.consensus_flags(&MacAddr::local_from_index(1)), 1);
    }

    #[test]
    fn single_ap_bearing_is_insufficient() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let out = fusion.fuse_window(0, vec![pkt(0, 0, 1, 0.5)]);
        assert_eq!(out.clients[0].consensus, ConsensusVerdict::Insufficient);
        assert!(out.clients[0].fix.is_none());
    }

    #[test]
    fn fusion_is_order_independent() {
        let aps = square_aps();
        let target = pt(3.0, 3.0);
        let mut forward = Fusion::new(aps.clone(), DeployConfig::default());
        let mut reversed = Fusion::new(aps.clone(), DeployConfig::default());
        let pkts = bearings_to(&aps, target, 1);
        let mut rev = pkts.clone();
        rev.reverse();
        let a = forward.fuse_window(0, pkts);
        let b = reversed.fuse_window(0, rev);
        assert_eq!(a, b, "fusion must not depend on arrival order");
    }

    #[test]
    fn parallel_bearings_count_as_localize_failure() {
        let aps = vec![pt(0.0, 0.0), pt(0.0, 5.0)];
        let mut fusion = Fusion::new(aps, DeployConfig::default());
        // Both APs report the exact same azimuth from a vertical
        // baseline pointing... at the same angle: parallel lines.
        let out = fusion.fuse_window(0, vec![pkt(0, 0, 1, 0.3), pkt(1, 0, 1, 0.3)]);
        assert_eq!(out.localize_failures, 1);
        assert!(out.clients[0].fix.is_none());
    }

    #[test]
    fn summaries_track_fix_counts() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        for w in 0..3 {
            fusion.fuse_window(w, bearings_to(&aps, pt(4.0, 6.0), 7));
        }
        let s = fusion.client_summaries();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].fixes, 3);
        assert!(s[0].mean_residual_m < 0.1);
        assert!(s[0].last_track.is_some());
    }
}
