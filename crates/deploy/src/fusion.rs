//! The bearing-fusion stage: group per-AP packet reports by client and
//! window, intersect the bearings, smooth per-client tracks, and run
//! the cross-AP spoof consensus.
//!
//! Fusion is deterministic by construction: reports are sorted by
//! `(ap, seq)` before fusing and clients are visited in MAC order, so
//! the output is independent of how the worker threads interleaved on
//! the report channel.
//!
//! Since the fleet-scale work, per-client state (α–β tracker, consensus
//! baseline, flags) lives in [`DeployConfig::fusion_shards`] shards
//! partitioned by the same seedless MAC hash as the signature store
//! ([`secureangle::store::mac_shard`]). At window close each shard
//! drains independently — on scoped threads when there is more than one
//! — and the per-shard client lists (each already in MAC order) merge
//! back into one global MAC-ordered list. A client's fused window is a
//! pure function of its own reports and its own shard's state, so the
//! merged output is byte-identical at any shard count; the determinism
//! pin is `tests/proptest_fleet.rs`.

use crate::config::DeployConfig;
use crate::report::{ApBearingError, ApPacket, ClientFix, ClientSummary, FusedWindow};
use crate::telemetry::{BearingEvidence, ClientWindowEvent, DeployTelemetry, FusionTaps, ShardTap};
use sa_channel::geom::Point;
use sa_mac::MacAddr;
use sa_telemetry::StageTimer;
use secureangle::localize::{localize_robust, localize_robust_weighted, BearingObservation};
use secureangle::spoof::{ConsensusVerdict, CrossApConsensus};
use secureangle::store::mac_shard;
use secureangle::tracking::MobilityTracker;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-client fusion state.
struct ClientState {
    tracker: MobilityTracker,
    last_window: u64,
    fixes: u64,
    residual_sum: f64,
}

/// One fusion shard: the consensus baselines and client trackers whose
/// MACs hash here. Shards never share client state, so draining them
/// concurrently needs no locks at all — each scoped thread gets `&mut`
/// to exactly one shard.
struct FusionShard {
    consensus: CrossApConsensus,
    clients: BTreeMap<MacAddr, ClientState>,
}

/// Everything one shard produced for one window drain.
struct ShardOutput {
    clients: Vec<ClientFix>,
    bearings: usize,
    localize_failures: usize,
    /// Per-AP bearing-residual aggregates (keyed by AP id), measured
    /// against every fused fix this shard produced. Counts and maxima
    /// only, so the merge across shards is order-independent.
    ap_errors: BTreeMap<usize, ApBearingError>,
}

/// The read-only drain context shared by every shard of one window.
#[derive(Clone, Copy)]
struct DrainCtx<'a> {
    cfg: &'a DeployConfig,
    ap_positions: &'a [Point],
    window: u64,
    quorum: usize,
    expected_aps: usize,
    missing_aps: usize,
    /// APs withheld from this window by the health layer's quarantine
    /// — recorded in flight-recorder events; earns no consensus slack.
    quarantined_aps: usize,
    /// Pre-size for per-client report groups: the live membership is
    /// the expected number of reports per client per window, so groups
    /// allocate once instead of growing through the doubling ladder.
    group_capacity: usize,
}

/// The fusion stage. [`crate::Deployment`] owns one, but it is usable
/// standalone (and benchmarked standalone): feed it one window's
/// [`ApPacket`]s and it returns the fused result.
///
/// ```
/// use sa_channel::geom::pt;
/// use sa_deploy::{DeployConfig, Fusion};
///
/// let aps = vec![pt(0.0, 0.0), pt(10.0, 0.0), pt(10.0, 10.0)];
/// let mut fusion = Fusion::new(aps, DeployConfig::default());
/// assert_eq!(fusion.live_aps(), 3);
/// // Feed one closed window's ApPackets (normally from the workers):
/// let fused = fusion.fuse_window(0, Vec::new());
/// assert_eq!(fused.expected_aps, 3);
/// // Membership can change mid-run; consensus references re-baseline.
/// fusion.retire_ap(2);
/// assert_eq!(fusion.live_aps(), 2);
/// ```
pub struct Fusion {
    cfg: DeployConfig,
    ap_positions: Vec<Point>,
    /// Live-membership flags, indexed by stable AP id. Retired APs keep
    /// their position slot (historical packets may still reference it)
    /// but stop counting toward the expected quorum.
    live: Vec<bool>,
    shards: Vec<FusionShard>,
    /// Telemetry taps (per-shard drain/consensus histograms and the
    /// flight recorder) — `None` until a deployment attaches its
    /// telemetry bundle. Strictly out-of-band: every fused byte is
    /// identical with taps attached or not.
    taps: Option<FusionTaps>,
}

impl Fusion {
    /// New fusion stage for APs at the given positions (all live), with
    /// [`DeployConfig::fusion_shards`] state shards (`0` treated as 1).
    pub fn new(ap_positions: Vec<Point>, cfg: DeployConfig) -> Self {
        let n_shards = cfg.fusion_shards.max(1);
        Self {
            shards: (0..n_shards)
                .map(|_| FusionShard {
                    consensus: CrossApConsensus::new(cfg.consensus),
                    clients: BTreeMap::new(),
                })
                .collect(),
            cfg,
            live: vec![true; ap_positions.len()],
            ap_positions,
            taps: None,
        }
    }

    /// Attach a deployment's telemetry bundle: creates one
    /// `stage.fusion_drain` and one `stage.consensus` histogram per
    /// shard (when stage timing is on) and routes per-client window
    /// events into the flight recorder (when it is on).
    pub(crate) fn attach_telemetry(&mut self, telemetry: &Arc<DeployTelemetry>) {
        let n = self.shards.len();
        self.taps = Some(FusionTaps {
            drain: (0..n)
                .filter_map(|i| telemetry.stage("stage.fusion_drain", "shard", i))
                .collect(),
            consensus: (0..n)
                .filter_map(|i| telemetry.stage("stage.consensus", "shard", i))
                .collect(),
            telemetry: telemetry.clone(),
        });
    }

    /// Number of clients with fusion state (tracker + consensus
    /// baseline) on each shard — the occupancy view behind the
    /// `fusion.tracked_clients` / shard-imbalance gauges.
    pub fn tracked_clients_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.clients.len()).collect()
    }

    /// Register a new AP at `position`; returns its stable id. Does
    /// **not** re-baseline — callers decide (a [`crate::Deployment`]
    /// re-baselines on every membership change).
    pub fn add_ap(&mut self, position: Point) -> usize {
        self.ap_positions.push(position);
        self.live.push(true);
        self.ap_positions.len() - 1
    }

    /// Mark an AP as no longer a member: it stops counting toward the
    /// expected quorum. Idempotent; unknown ids are ignored.
    pub fn retire_ap(&mut self, ap_id: usize) {
        if let Some(flag) = self.live.get_mut(ap_id) {
            *flag = false;
        }
    }

    /// Re-admit a previously retired AP slot at `position`
    /// ([`crate::Deployment::rejoin_ap`]): it counts toward the
    /// expected quorum again. Does **not** re-baseline — callers
    /// decide, exactly as with [`Fusion::add_ap`]. Unknown ids are
    /// ignored.
    pub fn revive_ap(&mut self, ap_id: usize, position: Point) {
        if let Some(flag) = self.live.get_mut(ap_id) {
            *flag = true;
            self.ap_positions[ap_id] = position;
        }
    }

    /// How many consensus re-baselines this stage has performed
    /// (membership churn plus health quarantine/readmit events). Every
    /// re-baseline touches all shards identically, so shard 0's count
    /// is the stage's — shard-count invariant by construction.
    pub fn rebaseline_count(&self) -> u64 {
        self.shards
            .first()
            .map_or(0, |s| s.consensus.rebaseline_count())
    }

    /// Number of live APs.
    pub fn live_aps(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// The shard a client's state lives on.
    fn shard_idx(&self, mac: &MacAddr) -> usize {
        mac_shard(mac, self.shards.len())
    }

    /// Forget every trained consensus reference (flag history is kept)
    /// so clients re-baseline from their next clean fix. Deployments
    /// call this on AP membership change: the fused-fix geometry shifts
    /// with the contributing AP set, and references trained under the
    /// old membership would read as displacement — i.e. as spoofs.
    /// Mobility trackers are *not* reset (a client's position estimate
    /// stays valid; only the spoof baseline is geometry-dependent).
    pub fn rebaseline(&mut self) {
        for shard in &mut self.shards {
            shard.consensus.rebaseline();
        }
    }

    /// Train (or move) a client's consensus reference position by hand
    /// (e.g. from a commissioning survey instead of auto-training).
    pub fn train_reference(&mut self, mac: MacAddr, position: Point) {
        let idx = self.shard_idx(&mac);
        self.shards[idx].consensus.train(mac, position);
    }

    /// A client's trained consensus reference position.
    pub fn reference(&self, mac: &MacAddr) -> Option<Point> {
        self.shards[self.shard_idx(mac)].consensus.reference(mac)
    }

    /// Consensus flags accumulated for a client.
    pub fn consensus_flags(&self, mac: &MacAddr) -> usize {
        self.shards[self.shard_idx(mac)].consensus.flag_count(mac)
    }

    /// Fuse one closed window. `packets` is everything every AP
    /// reported for the window, in any order; ordering is normalised
    /// internally. Tracker `dt` is derived from the gap in window
    /// numbers (late windows fall back to the tracker's zero-`dt`
    /// position-only update). The expected quorum is the current live
    /// membership, with no missing-report slack; a coordinator that
    /// tracks per-window degradation uses
    /// [`Fusion::fuse_window_expecting`] instead.
    pub fn fuse_window(&mut self, window: u64, packets: Vec<ApPacket>) -> FusedWindow {
        let expected = self.live_aps();
        self.fuse_window_expecting(window, packets, expected, 0)
    }

    /// [`Fusion::fuse_window`] with the coordinator's per-window
    /// degradation knowledge: `expected_aps` is the live membership
    /// *when the window was submitted* (it may differ from the current
    /// membership under churn) and sets the effective fix quorum
    /// (`min_aps_for_fix`, clamped to what the membership can deliver,
    /// never below 2); `missing_aps` is how many of those APs'
    /// reports are *known* not to have arrived (lost on the link,
    /// rejected for skew, marker lost, or the worker died). Only
    /// `missing_aps` earns the consensus displacement slack
    /// ([`secureangle::spoof::CrossApConsensus::check_degraded`]) — a
    /// client that some delivered AP simply could not hear is a
    /// coverage fact, not link degradation, and gets no slack.
    pub fn fuse_window_expecting(
        &mut self,
        window: u64,
        packets: Vec<ApPacket>,
        expected_aps: usize,
        missing_aps: usize,
    ) -> FusedWindow {
        self.fuse_window_degraded(window, packets, expected_aps, missing_aps, 0)
    }

    /// [`Fusion::fuse_window_expecting`] plus the health layer's
    /// quarantine knowledge: `quarantined_aps` is how many APs the
    /// coordinator *withheld* from this window because their evidence
    /// is distrusted ([`crate::health::FleetHealth`]). Quarantine is
    /// not link degradation — a distrusted AP earns no consensus
    /// slack and is already excluded from `expected_aps` — but it is
    /// recorded on the fused window and in flight-recorder events so
    /// a post-mortem can see *why* the window fused thin.
    pub fn fuse_window_degraded(
        &mut self,
        window: u64,
        packets: Vec<ApPacket>,
        expected_aps: usize,
        missing_aps: usize,
        quarantined_aps: usize,
    ) -> FusedWindow {
        // Degrade the fix quorum with the membership: a 4-AP policy on
        // a deployment temporarily down to 2 live APs must still fix
        // (two bearings are the geometric minimum), but never fix on a
        // single bearing.
        let quorum = self.cfg.min_aps_for_fix.min(expected_aps).max(2);
        let n_packets = packets.len();
        let n_shards = self.shards.len();

        // Partition by client MAC shard. Packets without a decoded MAC
        // carry no client state — they count toward the window's packet
        // total and nothing else, exactly as before sharding.
        let mut per_shard: Vec<Vec<ApPacket>> = (0..n_shards).map(|_| Vec::new()).collect();
        for p in packets {
            if let Some(mac) = p.mac {
                per_shard[mac_shard(&mac, n_shards)].push(p);
            }
        }

        let ctx = DrainCtx {
            cfg: &self.cfg,
            ap_positions: &self.ap_positions,
            window,
            quorum,
            expected_aps,
            missing_aps,
            quarantined_aps,
            group_capacity: self.live.iter().filter(|&&l| l).count().max(1),
        };
        // Per-shard tap views (Copy refs into the attached bundle). A
        // detached fusion stage — or one whose deployment left
        // telemetry disabled — gets all-`None` taps, so every span and
        // recorder call below is a single branch.
        let taps: Vec<ShardTap<'_>> = match &self.taps {
            Some(t) => (0..n_shards)
                .map(|i| ShardTap {
                    drain: t.drain.get(i).map(|h| &**h),
                    consensus: t.consensus.get(i).map(|h| &**h),
                    recorder: t.telemetry.recorder(),
                })
                .collect(),
            None => vec![ShardTap::NONE; n_shards],
        };
        let shards = &mut self.shards;
        let outputs: Vec<ShardOutput> = if n_shards == 1 {
            vec![drain_shard(
                &mut shards[0],
                per_shard.pop().expect("one shard"),
                ctx,
                taps[0],
            )]
        } else {
            // Shards share no client state, so each scoped thread takes
            // `&mut` to exactly one of them; outputs are collected by
            // shard index, which keeps the merge deterministic no
            // matter which shard finishes first.
            std::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(per_shard)
                    .zip(&taps)
                    .map(|((shard, pkts), &tap)| {
                        s.spawn(move || drain_shard(shard, pkts, ctx, tap))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fusion shard panicked"))
                    .collect()
            })
        };

        let mut clients = Vec::with_capacity(outputs.iter().map(|o| o.clients.len()).sum());
        let mut bearings_total = 0usize;
        let mut localize_failures = 0usize;
        let mut ap_errors: BTreeMap<usize, ApBearingError> = BTreeMap::new();
        for o in outputs {
            bearings_total += o.bearings;
            localize_failures += o.localize_failures;
            clients.extend(o.clients);
            // Merge per-AP residual aggregates: counts add, maxima max
            // — both commutative, so the merged evidence is identical
            // at any shard count.
            for (ap, e) in o.ap_errors {
                let agg = ap_errors.entry(ap).or_insert(ApBearingError {
                    ap_id: ap,
                    ..ApBearingError::default()
                });
                agg.bearings += e.bearings;
                agg.over_warn += e.over_warn;
                agg.max_err_deg = agg.max_err_deg.max(e.max_err_deg);
            }
        }
        // Each shard's list is already MAC-ordered; the concatenation
        // only needs one stable sort to interleave the shards back into
        // global MAC order (and with one shard it is a no-op pass).
        clients.sort_by_key(|c| c.mac);

        FusedWindow {
            window,
            clients,
            packets: n_packets,
            bearings: bearings_total,
            localize_failures,
            expected_aps,
            // Link-health fields are filled by the coordinator, which
            // owns the per-window loss/skew/marker accounting; a
            // standalone fusion stage reports zeros.
            lost_reports: 0,
            skew_rejected: 0,
            markers_lost: 0,
            corrupt_reports: 0,
            stalled_aps: 0,
            quarantined_aps,
            ap_bearing_errors: ap_errors.into_values().collect(),
        }
    }

    /// Per-client whole-run summaries, ordered by MAC.
    pub fn client_summaries(&self) -> Vec<ClientSummary> {
        let mut summaries: Vec<ClientSummary> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard.clients.iter().map(|(mac, s)| ClientSummary {
                    mac: *mac,
                    fixes: s.fixes,
                    mean_residual_m: if s.fixes > 0 {
                        s.residual_sum / s.fixes as f64
                    } else {
                        0.0
                    },
                    consensus_flags: shard.consensus.flag_count(mac),
                    reference: shard.consensus.reference(mac),
                    last_track: s.tracker.state().copied(),
                })
            })
            .collect();
        summaries.sort_by_key(|s| s.mac);
        summaries
    }
}

/// Drain one shard's packets for one window: sort once, group by MAC,
/// fuse each client. Pure apart from the shard's own state, which is
/// why any MAC partition yields byte-identical per-client results.
fn drain_shard(
    shard: &mut FusionShard,
    mut packets: Vec<ApPacket>,
    ctx: DrainCtx<'_>,
    tap: ShardTap<'_>,
) -> ShardOutput {
    // Times the whole shard drain (sort + group + fuse + consensus).
    let _drain_span = StageTimer::start(tap.drain);
    // One (ap, seq) sort per shard drain; every per-client group below
    // then comes out pre-ordered for free.
    packets.sort_by_key(|p| (p.ap_id, p.seq));

    // Group by claimed MAC, preserving the (ap, seq) order. Groups are
    // pre-sized from the live membership — the expected report count
    // per client — instead of growing through repeated reallocation.
    let mut by_mac: BTreeMap<MacAddr, Vec<&ApPacket>> = BTreeMap::new();
    for p in &packets {
        if let Some(mac) = p.mac {
            by_mac
                .entry(mac)
                .or_insert_with(|| Vec::with_capacity(ctx.group_capacity))
                .push(p);
        }
    }

    let mut clients = Vec::with_capacity(by_mac.len());
    let mut bearings_total = 0usize;
    let mut localize_failures = 0usize;
    let mut ap_errors: BTreeMap<usize, ApBearingError> = BTreeMap::new();
    for (mac, reports) in by_mac {
        // Read the consensus reference *before* this client's check (a
        // clean fix below may auto-train it) so the flight-recorder
        // event shows what the verdict was actually compared against.
        let reference_at_check = tap
            .recorder
            .and_then(|_| shard.consensus.reference(&mac))
            .map(|p| (p.x, p.y));
        let mut evidence = Vec::new();
        let mut bearings = Vec::new();
        let mut bearing_aps = Vec::new();
        let mut confidences = Vec::new();
        let mut confidence_sum = 0.0;
        let mut admitted_aps = 0usize;
        let mut flagged_aps = 0usize;
        for r in &reports {
            if let Some(b) = &r.report {
                bearings.push(BearingObservation {
                    ap_position: ctx.ap_positions[r.ap_id],
                    azimuth: b.azimuth,
                });
                bearing_aps.push(r.ap_id);
                confidences.push(b.confidence);
                confidence_sum += b.confidence;
                if tap.recorder.is_some() {
                    evidence.push(BearingEvidence {
                        ap_id: r.ap_id,
                        azimuth_rad: b.azimuth,
                        confidence: b.confidence,
                    });
                }
            }
            match r.verdict {
                secureangle::pipeline::FrameVerdict::Admit { .. } => admitted_aps += 1,
                secureangle::pipeline::FrameVerdict::Drop(
                    secureangle::pipeline::DropReason::SpoofSuspected { .. },
                )
                | secureangle::pipeline::FrameVerdict::Drop(
                    secureangle::pipeline::DropReason::Quarantined,
                ) => flagged_aps += 1,
                _ => {}
            }
        }
        bearings_total += bearings.len();
        let distinct_aps = |aps: &[usize]| {
            let mut seen: Vec<usize> = aps.to_vec();
            seen.sort_unstable();
            seen.dedup();
            seen.len()
        };
        let n_aps = distinct_aps(&bearing_aps);
        let mean_confidence = if bearings.is_empty() {
            0.0
        } else {
            confidence_sum / bearings.len() as f64
        };

        let (fix, track, consensus) = if n_aps >= ctx.quorum {
            // Robust fit: a single AP's multipath ghost (a bearing
            // the fix lands behind) is dropped and the fix refit.
            // Optionally confidence-weighted, so marginal bearings
            // pull degraded windows less.
            let solved = if ctx.cfg.weight_bearings_by_confidence {
                localize_robust_weighted(&bearings, &confidences, ctx.quorum)
            } else {
                localize_robust(&bearings, ctx.quorum)
            };
            match solved {
                Ok((fix, dropped)) => {
                    // Smooth the trace.
                    let state = shard.clients.entry(mac).or_insert_with(|| ClientState {
                        tracker: MobilityTracker::new(ctx.cfg.tracker),
                        last_window: ctx.window,
                        fixes: 0,
                        residual_sum: 0.0,
                    });
                    let dt =
                        ctx.window.saturating_sub(state.last_window) as f64 * ctx.cfg.window_dt_s;
                    let track = state.tracker.update(fix.position, dt);
                    state.last_window = ctx.window;
                    state.fixes += 1;
                    state.residual_sum += fix.residual_m;
                    // Consensus: check against the reference using
                    // the APs that actually *support* the robust
                    // fix (dropped ghost bearings no longer count
                    // toward the min-APs quorum), or auto-train
                    // the reference from the first clean fix.
                    let supporting_aps: Vec<usize> = bearing_aps
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !dropped.contains(i))
                        .map(|(_, &ap)| ap)
                        .collect();
                    // Slack only for reports the coordinator knows
                    // went missing: the supporting count plus the
                    // missing count is "what this fix would have
                    // had on a healthy link", so range-limited
                    // clients and robust-dropped ghosts earn none.
                    let supporting = distinct_aps(&supporting_aps);
                    let verdict = {
                        let _span = StageTimer::start(tap.consensus);
                        shard.consensus.check_degraded(
                            mac,
                            &fix,
                            supporting,
                            supporting + ctx.missing_aps,
                        )
                    };
                    if verdict == ConsensusVerdict::Untrained
                        && ctx.cfg.auto_train_references
                        && fix.behind_count == 0
                        && fix.residual_m <= ctx.cfg.reference_train_max_residual_m
                    {
                        shard.consensus.train(mac, fix.position);
                    }
                    (Some(fix), Some(track), verdict)
                }
                Err(_) => {
                    localize_failures += 1;
                    (None, None, ConsensusVerdict::Insufficient)
                }
            }
        } else {
            (None, None, ConsensusVerdict::Insufficient)
        };

        // Health evidence: how far every bearing — including any the
        // robust fit dropped as a ghost — sits from the azimuth the
        // fused fix implies for its AP. A persistently biased AP shows
        // up here window after window while honest APs hug zero.
        if let Some(f) = fix {
            let warn = ctx.cfg.health.bearing_err_warn_deg;
            for (i, b) in bearings.iter().enumerate() {
                let err = bearing_err_deg(b.ap_position, f.position, b.azimuth);
                let agg = ap_errors.entry(bearing_aps[i]).or_insert(ApBearingError {
                    ap_id: bearing_aps[i],
                    ..ApBearingError::default()
                });
                agg.bearings += 1;
                if err > warn {
                    agg.over_warn += 1;
                }
                agg.max_err_deg = agg.max_err_deg.max(err);
            }
        }

        if let Some(recorder) = tap.recorder {
            recorder.record(
                mac,
                ClientWindowEvent {
                    window: ctx.window,
                    expected_aps: ctx.expected_aps,
                    missing_aps: ctx.missing_aps,
                    quarantined_aps: ctx.quarantined_aps,
                    n_aps,
                    bearings: evidence,
                    fix: fix.map(|f| (f.position.x, f.position.y)),
                    residual_m: fix.map_or(0.0, |f| f.residual_m),
                    reference: reference_at_check,
                    admitted_aps,
                    flagged_aps,
                    verdict: consensus,
                },
            );
        }

        clients.push(ClientFix {
            mac,
            n_aps,
            n_bearings: bearings.len(),
            fix,
            track,
            consensus,
            admitted_aps,
            flagged_aps,
            mean_confidence,
            expected_aps: ctx.expected_aps,
        });
    }

    ShardOutput {
        clients,
        bearings: bearings_total,
        localize_failures,
        ap_errors,
    }
}

/// Absolute angular disagreement, degrees, between a reported azimuth
/// and the azimuth from `ap_pos` to the fused `fix_pos` — the health
/// layer's per-window bearing-residual evidence
/// ([`crate::health::ApWindowEvidence`]).
pub(crate) fn bearing_err_deg(ap_pos: Point, fix_pos: Point, azimuth: f64) -> f64 {
    use std::f64::consts::PI;
    let mut d = azimuth - ap_pos.azimuth_to(fix_pos);
    while d > PI {
        d -= 2.0 * PI;
    }
    while d < -PI {
        d += 2.0 * PI;
    }
    d.abs().to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_channel::geom::pt;
    use secureangle::pipeline::FrameVerdict;
    use secureangle::spoof::SpoofVerdict;

    fn pkt(ap_id: usize, seq: u64, mac: u32, az: f64) -> ApPacket {
        pkt_conf(ap_id, seq, mac, az, 0.9)
    }

    fn pkt_conf(ap_id: usize, seq: u64, mac: u32, az: f64, confidence: f64) -> ApPacket {
        ApPacket {
            ap_id,
            window: 0,
            seq,
            mac: Some(MacAddr::local_from_index(mac)),
            report: Some(secureangle::pipeline::BearingReport {
                mac: MacAddr::local_from_index(mac),
                azimuth: az,
                confidence,
                rss_db: -40.0,
                seq,
            }),
            bearing_deg: az.to_degrees(),
            rss_db: -40.0,
            verdict: FrameVerdict::Admit {
                spoof: SpoofVerdict::Match { score: 0.9 },
            },
        }
    }

    fn square_aps() -> Vec<Point> {
        vec![pt(0.0, 0.0), pt(10.0, 0.0), pt(10.0, 10.0), pt(0.0, 10.0)]
    }

    fn bearings_to(aps: &[Point], target: Point, mac: u32) -> Vec<ApPacket> {
        aps.iter()
            .enumerate()
            .map(|(i, &p)| pkt(i, 0, mac, p.azimuth_to(target)))
            .collect()
    }

    #[test]
    fn fuses_consistent_bearings_into_a_fix() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let target = pt(4.0, 6.0);
        let out = fusion.fuse_window(0, bearings_to(&aps, target, 1));
        assert_eq!(out.clients.len(), 1);
        let c = &out.clients[0];
        assert_eq!(c.n_aps, 4);
        let fix = c.fix.expect("fix");
        assert!(fix.position.dist(target) < 1e-6, "fix {:?}", fix.position);
        // First clean fix auto-trains the consensus reference.
        assert_eq!(c.consensus, ConsensusVerdict::Untrained);
        assert!(fusion.reference(&MacAddr::local_from_index(1)).is_some());
        // Second window at the same spot is consistent.
        let out = fusion.fuse_window(1, bearings_to(&aps, target, 1));
        assert!(matches!(
            out.clients[0].consensus,
            ConsensusVerdict::Consistent { .. }
        ));
    }

    #[test]
    fn displaced_client_is_flagged_by_consensus() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let home = pt(4.0, 6.0);
        fusion.fuse_window(0, bearings_to(&aps, home, 1));
        // The same MAC suddenly transmits from 7 m away.
        let out = fusion.fuse_window(1, bearings_to(&aps, pt(9.0, 1.0), 1));
        assert!(
            out.clients[0].consensus.is_spoof(),
            "verdict {:?}",
            out.clients[0].consensus
        );
        assert_eq!(fusion.consensus_flags(&MacAddr::local_from_index(1)), 1);
    }

    #[test]
    fn single_ap_bearing_is_insufficient() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let out = fusion.fuse_window(0, vec![pkt(0, 0, 1, 0.5)]);
        assert_eq!(out.clients[0].consensus, ConsensusVerdict::Insufficient);
        assert!(out.clients[0].fix.is_none());
    }

    #[test]
    fn fusion_is_order_independent() {
        let aps = square_aps();
        let target = pt(3.0, 3.0);
        let mut forward = Fusion::new(aps.clone(), DeployConfig::default());
        let mut reversed = Fusion::new(aps.clone(), DeployConfig::default());
        let pkts = bearings_to(&aps, target, 1);
        let mut rev = pkts.clone();
        rev.reverse();
        let a = forward.fuse_window(0, pkts);
        let b = reversed.fuse_window(0, rev);
        assert_eq!(a, b, "fusion must not depend on arrival order");
    }

    #[test]
    fn parallel_bearings_count_as_localize_failure() {
        let aps = vec![pt(0.0, 0.0), pt(0.0, 5.0)];
        let mut fusion = Fusion::new(aps, DeployConfig::default());
        // Both APs report the exact same azimuth from a vertical
        // baseline pointing... at the same angle: parallel lines.
        let out = fusion.fuse_window(0, vec![pkt(0, 0, 1, 0.3), pkt(1, 0, 1, 0.3)]);
        assert_eq!(out.localize_failures, 1);
        assert!(out.clients[0].fix.is_none());
    }

    #[test]
    fn quorum_degrades_with_live_membership() {
        let aps = square_aps();
        let target = pt(4.0, 6.0);
        let cfg = DeployConfig {
            min_aps_for_fix: 3,
            ..DeployConfig::default()
        };
        let mut fusion = Fusion::new(aps.clone(), cfg);
        // Full membership: two bearings miss the 3-AP quorum.
        let two = vec![
            pkt(0, 0, 1, aps[0].azimuth_to(target)),
            pkt(1, 0, 1, aps[1].azimuth_to(target)),
        ];
        let out = fusion.fuse_window(0, two.clone());
        assert!(out.clients[0].fix.is_none());
        assert_eq!(out.expected_aps, 4);
        // Two APs retire: the quorum clamps to what the membership can
        // deliver and the same two bearings now fix.
        fusion.retire_ap(2);
        fusion.retire_ap(3);
        let out = fusion.fuse_window(1, two);
        assert_eq!(out.expected_aps, 2);
        let fix = out.clients[0].fix.expect("degraded quorum fix");
        assert!(fix.position.dist(target) < 1e-6);
        assert_eq!(out.clients[0].expected_aps, 2);
    }

    #[test]
    fn rebaseline_forgets_references_until_the_next_clean_fix() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let mac = MacAddr::local_from_index(1);
        fusion.fuse_window(0, bearings_to(&aps, pt(4.0, 6.0), 1));
        assert!(fusion.reference(&mac).is_some());
        fusion.rebaseline();
        assert!(fusion.reference(&mac).is_none());
        // The next clean fix retrains — even at a different position,
        // without raising a (false) spoof flag.
        let out = fusion.fuse_window(1, bearings_to(&aps, pt(8.0, 2.0), 1));
        assert_eq!(out.clients[0].consensus, ConsensusVerdict::Untrained);
        let newref = fusion.reference(&mac).expect("retrained");
        assert!(newref.dist(pt(8.0, 2.0)) < 1e-6);
        assert_eq!(fusion.consensus_flags(&mac), 0);
    }

    #[test]
    fn partial_windows_get_consensus_slack_but_attacks_still_flag() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let home = pt(4.0, 6.0);
        fusion.fuse_window(0, bearings_to(&aps, home, 1));
        // A 2-of-4 window 2.4 m off because two AP reports were LOST:
        // over the 2 m full-quorum gate, inside the degraded-window
        // slack (2 + 2×0.5 = 3 m).
        let nearby = pt(6.4, 6.0);
        let partial: Vec<ApPacket> = aps[..2]
            .iter()
            .enumerate()
            .map(|(i, &p)| pkt(i, 0, 1, p.azimuth_to(nearby)))
            .collect();
        let out = fusion.fuse_window_expecting(1, partial.clone(), 4, 2);
        assert!(
            matches!(
                out.clients[0].consensus,
                ConsensusVerdict::Consistent { .. }
            ),
            "lost-report window should get slack: {:?}",
            out.clients[0].consensus
        );
        // The same 2-AP view with every report DELIVERED (the client is
        // merely out of the other APs' range) earns no slack: coverage
        // is not degradation, and the displacement is flagged.
        let out = fusion.fuse_window_expecting(2, partial, 4, 0);
        assert!(
            out.clients[0].consensus.is_spoof(),
            "range-limited client must not get loss slack: {:?}",
            out.clients[0].consensus
        );
        // A real displacement is caught even with lost-report slack.
        let far = pt(9.0, 1.0);
        let attack: Vec<ApPacket> = aps[..2]
            .iter()
            .enumerate()
            .map(|(i, &p)| pkt(i, 0, 1, p.azimuth_to(far)))
            .collect();
        let out = fusion.fuse_window_expecting(3, attack, 4, 2);
        assert!(out.clients[0].consensus.is_spoof());
    }

    #[test]
    fn confidence_weighting_pulls_fix_toward_confident_bearings() {
        let aps = square_aps();
        let target = pt(4.0, 6.0);
        let biased = |fusion: &mut Fusion| {
            // Three confident bearings on the target plus one marginal,
            // badly biased bearing from AP 3.
            let mut pkts: Vec<ApPacket> = aps[..3]
                .iter()
                .enumerate()
                .map(|(i, &p)| pkt_conf(i, 0, 1, p.azimuth_to(target), 0.95))
                .collect();
            pkts.push(pkt_conf(3, 0, 1, aps[3].azimuth_to(target) + 0.35, 0.05));
            fusion.fuse_window(0, pkts)
        };
        let mut unweighted = Fusion::new(aps.clone(), DeployConfig::default());
        let cfg = DeployConfig {
            weight_bearings_by_confidence: true,
            ..DeployConfig::default()
        };
        let mut weighted = Fusion::new(aps.clone(), cfg);
        let u = biased(&mut unweighted).clients[0].fix.expect("fix");
        let w = biased(&mut weighted).clients[0].fix.expect("fix");
        assert!(
            w.position.dist(target) < u.position.dist(target),
            "weighted {:?} vs unweighted {:?}",
            w.position,
            u.position
        );
    }

    #[test]
    fn bearing_errors_expose_a_biased_ap() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        let target = pt(4.0, 6.0);
        let mut pkts = bearings_to(&aps, target, 1);
        // AP 3's bearing is 15 degrees off — a byzantine bias.
        if let Some(r) = pkts[3].report.as_mut() {
            r.azimuth += 15f64.to_radians();
        }
        let out = fusion.fuse_window_degraded(0, pkts, 4, 0, 1);
        assert_eq!(out.quarantined_aps, 1);
        assert_eq!(out.ap_bearing_errors.len(), 4);
        // The fix absorbs part of the bias, so the biased AP's residual
        // is below 15° — but it clears the 6° warn line while the
        // honest APs (pulled at most ~5°) stay under it.
        let biased = out
            .ap_bearing_errors
            .iter()
            .find(|e| e.ap_id == 3)
            .expect("evidence for the biased AP");
        assert!(biased.max_err_deg > 6.0, "{:?}", biased);
        assert_eq!(biased.over_warn, 1);
        for e in out.ap_bearing_errors.iter().filter(|e| e.ap_id != 3) {
            assert!(e.max_err_deg < 6.0, "honest AP flagged: {:?}", e);
            assert_eq!(e.over_warn, 0);
        }
    }

    #[test]
    fn revive_ap_restores_quorum_membership() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        fusion.retire_ap(2);
        assert_eq!(fusion.live_aps(), 3);
        assert_eq!(fusion.rebaseline_count(), 0);
        fusion.rebaseline();
        assert_eq!(fusion.rebaseline_count(), 1);
        fusion.revive_ap(2, pt(12.0, 12.0));
        assert_eq!(fusion.live_aps(), 4);
        // Unknown ids are ignored, as with retire.
        fusion.revive_ap(99, pt(0.0, 0.0));
        assert_eq!(fusion.live_aps(), 4);
    }

    #[test]
    fn summaries_track_fix_counts() {
        let aps = square_aps();
        let mut fusion = Fusion::new(aps.clone(), DeployConfig::default());
        for w in 0..3 {
            fusion.fuse_window(w, bearings_to(&aps, pt(4.0, 6.0), 7));
        }
        let s = fusion.client_summaries();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].fixes, 3);
        assert!(s[0].mean_residual_m < 0.1);
        assert!(s[0].last_track.is_some());
    }

    #[test]
    fn sharded_fusion_is_byte_identical_to_single_shard() {
        // Ten clients scattered over the square, fused across three
        // windows (so tracker and consensus state evolves), at shard
        // counts 1, 4 and 16: every fused window and every summary must
        // match the single-shard reference byte for byte.
        let aps = square_aps();
        let run = |shards: usize| {
            let cfg = DeployConfig {
                fusion_shards: shards,
                ..DeployConfig::default()
            };
            let mut fusion = Fusion::new(aps.clone(), cfg);
            let mut outputs = Vec::new();
            for w in 0..3u64 {
                let mut pkts = Vec::new();
                for c in 0..10u32 {
                    let target = pt(
                        1.0 + (c % 5) as f64 * 2.0 + w as f64 * 0.3,
                        2.0 + (c / 5) as f64 * 5.0,
                    );
                    pkts.extend(bearings_to(&aps, target, c + 1));
                }
                outputs.push(fusion.fuse_window(w, pkts));
            }
            (outputs, fusion.client_summaries())
        };
        let (ref_windows, ref_summaries) = run(1);
        assert_eq!(ref_windows[0].clients.len(), 10);
        for shards in [4usize, 16] {
            let (windows, summaries) = run(shards);
            assert_eq!(windows, ref_windows, "fusion_shards={} windows", shards);
            assert_eq!(
                summaries, ref_summaries,
                "fusion_shards={} summaries",
                shards
            );
        }
    }
}
