//! The deployment coordinator: N AP worker threads, one shared decode
//! pass, window scheduling and the fusion drain.

use crate::config::{DeployConfig, DeployError};
use crate::fusion::Fusion;
use crate::report::{ApStats, DeployMetrics, DeploymentReport, FusedWindow};
use crate::worker::{run_worker, WindowDone, WorkerCfg, WorkerMsg, WorkerPacket};
use sa_channel::geom::Point;
use sa_linalg::CMat;
use sa_mac::MacAddr;
use sa_phy::Modulation;
use secureangle::pipeline::decode_reference;
use secureangle::AccessPoint;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One client transmission as every AP heard it: `per_ap[k]` is AP
/// `k`'s multi-antenna capture of the same frame. Captures are
/// reference-counted so staging a transmission is cheap.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// One capture per AP, in AP order.
    pub per_ap: Vec<Arc<CMat>>,
}

impl Transmission {
    /// Wrap raw per-AP captures (e.g. from
    /// `sa_testbed::Testbed::transmission`).
    pub fn new(captures: Vec<CMat>) -> Self {
        Self {
            per_ap: captures.into_iter().map(Arc::new).collect(),
        }
    }
}

struct WorkerHandle {
    tx: SyncSender<WorkerMsg>,
    join: JoinHandle<(AccessPoint, ApStats)>,
}

/// Reports buffered for one not-yet-closed window.
#[derive(Default)]
struct WindowBin {
    packets: Vec<crate::report::ApPacket>,
    ends: usize,
    end_stats: Vec<(usize, ApStats)>,
}

/// A running multi-AP deployment (see the crate docs for the data
/// flow). Construction spawns one worker thread per AP; dropping
/// without [`Deployment::finish`] shuts the workers down but discards
/// their state.
pub struct Deployment {
    cfg: DeployConfig,
    modulation: Modulation,
    ap_positions: Vec<Point>,
    workers: Vec<WorkerHandle>,
    up_rx: Receiver<WindowDone>,
    fusion: Fusion,
    /// Windows submitted but not yet collected, in order.
    pending: VecDeque<u64>,
    next_window: u64,
    bins: BTreeMap<u64, WindowBin>,
    metrics: DeployMetrics,
    per_ap_window_stats: Vec<ApStats>,
}

impl Deployment {
    /// Spawn a deployment over the given APs. All APs must share one
    /// modulation (the shared decode runs once per transmission) and
    /// have a circular array if their bearings are to contribute global
    /// azimuths. Panics on an empty AP list or mixed modulations.
    pub fn new(aps: Vec<AccessPoint>, cfg: DeployConfig) -> Self {
        assert!(!aps.is_empty(), "deployment needs at least one AP");
        let modulation = aps[0].config().modulation;
        assert!(
            aps.iter().all(|ap| ap.config().modulation == modulation),
            "deployment APs must share one modulation"
        );
        let ap_positions: Vec<Point> = aps.iter().map(|ap| ap.config().position).collect();
        let n_aps = aps.len();

        let (up_tx, up_rx) = sync_channel(cfg.channel_capacity.max(1));
        let workers = aps
            .into_iter()
            .enumerate()
            .map(|(ap_id, ap)| {
                let (tx, rx) = sync_channel(cfg.channel_capacity.max(1));
                let up = up_tx.clone();
                let wcfg = WorkerCfg {
                    snapshot_cap: cfg.snapshot_cap,
                    auto_train_signatures: cfg.auto_train_signatures,
                };
                let join = std::thread::Builder::new()
                    .name(format!("sa-deploy-ap{}", ap_id))
                    .spawn(move || run_worker(ap_id, ap, wcfg, rx, up))
                    .expect("spawn AP worker");
                WorkerHandle { tx, join }
            })
            .collect();

        Self {
            fusion: Fusion::new(ap_positions.clone(), cfg),
            cfg,
            modulation,
            ap_positions,
            workers,
            up_rx,
            pending: VecDeque::new(),
            next_window: 0,
            bins: BTreeMap::new(),
            metrics: DeployMetrics::default(),
            per_ap_window_stats: vec![ApStats::default(); n_aps],
        }
    }

    /// Number of APs in the deployment.
    pub fn n_aps(&self) -> usize {
        self.workers.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeployConfig {
        &self.cfg
    }

    /// AP positions, by AP id.
    pub fn ap_positions(&self) -> &[Point] {
        &self.ap_positions
    }

    /// Running deployment-wide counters.
    pub fn metrics(&self) -> &DeployMetrics {
        &self.metrics
    }

    /// Per-AP statistics accumulated so far (from closed windows only;
    /// the final totals come back in the [`DeploymentReport`]).
    pub fn per_ap_stats(&self) -> &[ApStats] {
        &self.per_ap_window_stats
    }

    /// Train a client's consensus reference position by hand (see
    /// [`Fusion::train_reference`]).
    pub fn train_reference(&mut self, mac: MacAddr, position: Point) {
        self.fusion.train_reference(mac, position);
    }

    /// A client's trained consensus reference position.
    pub fn reference(&self, mac: &MacAddr) -> Option<Point> {
        self.fusion.reference(mac)
    }

    /// Ingest one observation window of traffic: run the shared stage-1
    /// decode per transmission and dispatch the per-AP captures (plus
    /// the shared [`secureangle::DecodedPacket`]) to every worker.
    /// Returns the window number. Transmissions whose reference capture
    /// contains no detectable packet are counted in
    /// [`DeployMetrics::decode_failures`] and skipped fleet-wide.
    pub fn submit_window(&mut self, transmissions: Vec<Transmission>) -> Result<u64, DeployError> {
        let n_aps = self.n_aps();
        for t in &transmissions {
            if t.per_ap.len() != n_aps {
                return Err(DeployError::ApCountMismatch {
                    expected: n_aps,
                    got: t.per_ap.len(),
                });
            }
        }
        let window = self.next_window;
        self.next_window += 1;

        // Stage 1, once per transmission.
        let mut per_worker: Vec<Vec<WorkerPacket>> = (0..n_aps).map(|_| Vec::new()).collect();
        for (seq, t) in transmissions.into_iter().enumerate() {
            self.metrics.transmissions += 1;
            let decoded = match decode_reference(&t.per_ap[0], self.modulation) {
                Ok(d) => Arc::new(d),
                Err(_) => {
                    self.metrics.decode_failures += 1;
                    continue;
                }
            };
            for (k, buffer) in t.per_ap.into_iter().enumerate() {
                per_worker[k].push(WorkerPacket {
                    buffer,
                    decoded: decoded.clone(),
                    seq: seq as u64,
                });
            }
        }

        // Dispatch, with ingest backpressure accounting. A full worker
        // queue is never waited on blindly: the coordinator keeps
        // draining the report channel while it waits, so workers stuck
        // publishing finished windows can always make progress — deep
        // pipelining backs up gracefully instead of deadlocking on a
        // full channel cycle.
        for (k, packets) in per_worker.into_iter().enumerate() {
            self.metrics.packets_dispatched += packets.len() as u64;
            let mut msg = WorkerMsg::Window { window, packets };
            let mut counted = false;
            loop {
                match self.workers[k].tx.try_send(msg) {
                    Ok(()) => break,
                    Err(TrySendError::Full(m)) => {
                        msg = m;
                        if !counted {
                            self.metrics.ingest_backpressure_events += 1;
                            counted = true;
                        }
                        self.wait_for_progress(window)?;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        return Err(DeployError::WorkerLost { window });
                    }
                }
            }
        }
        self.pending.push_back(window);
        Ok(window)
    }

    /// Route one worker report batch into its window's bin.
    fn route(&mut self, done: WindowDone) {
        let bin = self.bins.entry(done.window).or_default();
        bin.packets.extend(done.packets);
        bin.ends += 1;
        bin.end_stats.push((done.ap_id, done.stats));
        let depth: usize = self.bins.values().map(|b| b.packets.len()).sum();
        self.metrics.max_fusion_queue_depth = self.metrics.max_fusion_queue_depth.max(depth);
    }

    /// Wait a beat for the workers to make progress, draining any
    /// report that arrives in the meantime. Detects dead workers: a
    /// worker thread that has exited without a shutdown order means a
    /// panic, and blocking further would hang forever (the channel
    /// only disconnects when *every* sender is gone).
    fn wait_for_progress(&mut self, window: u64) -> Result<(), DeployError> {
        match self
            .up_rx
            .recv_timeout(std::time::Duration::from_millis(10))
        {
            Ok(done) => {
                self.route(done);
                Ok(())
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if self.workers.iter().any(|w| w.join.is_finished()) {
                    return Err(DeployError::WorkerLost { window });
                }
                Ok(())
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Err(DeployError::WorkerLost { window })
            }
        }
    }

    /// Block until the oldest in-flight window has been fully reported
    /// by every AP, then fuse and return it. Reports for later windows
    /// that arrive in the meantime are buffered (their depth shows up
    /// in [`DeployMetrics::max_fusion_queue_depth`]).
    pub fn collect_window(&mut self) -> Result<FusedWindow, DeployError> {
        let window = self
            .pending
            .pop_front()
            .ok_or(DeployError::NothingSubmitted)?;
        let n_aps = self.n_aps();
        while self.bins.get(&window).map_or(0, |b| b.ends) < n_aps {
            self.wait_for_progress(window)?;
        }

        let bin = self.bins.remove(&window).unwrap_or_default();
        for (ap_id, stats) in &bin.end_stats {
            self.per_ap_window_stats[*ap_id].absorb(stats);
            self.metrics.report_backpressure_events += stats.backpressure_events;
        }
        let fused = self.fusion.fuse_window(window, bin.packets);
        self.metrics.windows += 1;
        self.metrics.fused_bearings += fused.bearings as u64;
        self.metrics.localize_failures += fused.localize_failures as u64;
        for c in &fused.clients {
            if c.fix.is_some() {
                self.metrics.fixes += 1;
            }
            if c.consensus.is_spoof() {
                self.metrics.consensus_flags += 1;
            }
        }
        Ok(fused)
    }

    /// Submit one window and immediately collect it — the synchronous
    /// convenience path (`submit` + `collect` pipelined manually allow
    /// several windows in flight instead).
    pub fn run_window(
        &mut self,
        transmissions: Vec<Transmission>,
    ) -> Result<FusedWindow, DeployError> {
        self.submit_window(transmissions)?;
        self.collect_window()
    }

    /// Drain any in-flight windows, shut the workers down, and return
    /// the final report together with the APs (whose trained signature
    /// stores and quarantine state survive the deployment).
    pub fn finish(mut self) -> (DeploymentReport, Vec<AccessPoint>) {
        while !self.pending.is_empty() {
            if self.collect_window().is_err() {
                break;
            }
        }
        for w in &self.workers {
            let _ = w.tx.send(WorkerMsg::Shutdown);
        }
        let mut per_ap = Vec::with_capacity(self.workers.len());
        let mut aps = Vec::with_capacity(self.workers.len());
        for w in self.workers {
            let (ap, stats) = w.join.join().expect("AP worker panicked");
            aps.push(ap);
            per_ap.push(stats);
        }
        let report = DeploymentReport {
            n_aps: aps.len(),
            metrics: self.metrics,
            per_ap,
            clients: self.fusion.client_summaries(),
        };
        (report, aps)
    }
}
