//! The deployment coordinator: N AP worker threads, a sharded stage-1
//! decode pool, skew-tolerant window scheduling, AP churn, and the
//! fusion drain.
//!
//! Windows close on end-of-window markers (never wall clocks), but the
//! markers are no longer assumed perfect: workers stamp them with their
//! own skewed clocks (aligned back by [`crate::align::SkewAligner`]),
//! their payloads may be lost on the lossy report link (the window
//! closes anyway, with that AP's bearings missing), the markers
//! *themselves* may be lost (a later marker's gap — or the worker's
//! final flush — reveals it, see
//! [`crate::DeployConfig::marker_timeout_windows`]), and workers may
//! join, leave, or die mid-run (a window never waits on an AP that is
//! no longer live). All of it is deterministic for a seeded run, at
//! any decode/fusion shard count.

use crate::align::SkewAligner;
use crate::config::{ApSkew, DeployConfig, DeployError};
use crate::faults::payload_checksum;
use crate::fusion::Fusion;
use crate::health::{ApWindowEvidence, FleetHealth, HealthAction};
use crate::report::{ApStats, DeployMetrics, DeploymentReport, FusedWindow};
use crate::telemetry::{DeployTelemetry, WorkerTap};
use crate::worker::{run_worker, WindowDone, WorkerCfg, WorkerMsg, WorkerPacket};
use sa_channel::geom::Point;
use sa_linalg::CMat;
use sa_mac::MacAddr;
use sa_phy::Modulation;
use sa_telemetry::{Histogram, StageTimer, TelemetrySnapshot};
use secureangle::pipeline::{decode_reference, DecodedPacket};
use secureangle::AccessPoint;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One client transmission as every live AP heard it: `per_ap[k]` is
/// the `k`-th *live* AP's multi-antenna capture of the same frame.
/// Captures are reference-counted so staging a transmission is cheap.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// One capture per live AP, in live-AP order.
    pub per_ap: Vec<Arc<CMat>>,
}

impl Transmission {
    /// Wrap raw per-AP captures (e.g. from
    /// `sa_testbed::Testbed::transmission`).
    pub fn new(captures: Vec<CMat>) -> Self {
        Self {
            per_ap: captures.into_iter().map(Arc::new).collect(),
        }
    }
}

/// One AP's slot in the deployment. AP ids are stable for the life of
/// the deployment and never reused; a removed or crashed AP keeps its
/// slot (for stats attribution) with `alive = false`.
struct WorkerSlot {
    tx: Option<SyncSender<WorkerMsg>>,
    join: Option<JoinHandle<(AccessPoint, ApStats)>>,
    alive: bool,
    /// The worker's thread has exited and its buffered reports have
    /// been salvaged, but its *membership* has not ended yet. Hangups
    /// are noticed at racy points (timeout scans, failed sends), so
    /// noticing only sets this flag; the membership end — retire,
    /// re-baseline, loss accounting — happens in
    /// [`Deployment::collect_window`] at the first window the worker
    /// failed to report, a deterministic point in window order. A
    /// worker that exited normally may also be flagged here; since all
    /// its windows closed, the flag is then inert.
    hung: bool,
    /// Run totals captured when the worker left early (removed or
    /// reaped); `None` while running or if the thread panicked.
    final_stats: Option<ApStats>,
}

/// Reports buffered for one not-yet-closed window — one cell of the
/// coordinator's reorder buffer.
#[derive(Default)]
struct WindowBin {
    /// AP ids that were live when the window was submitted: the close
    /// condition. An AP that dies afterward stops being waited on.
    expected: Vec<usize>,
    /// AP ids whose end-of-window marker has arrived.
    reported: Vec<usize>,
    packets: Vec<crate::report::ApPacket>,
    end_stats: Vec<(usize, ApStats)>,
    lost_reports: usize,
    skew_rejected: usize,
    /// APs whose end-of-window marker was declared lost (revealed by a
    /// later marker's gap, or by the worker's final flush). They count
    /// as reported — the window closes — but contributed nothing.
    markers_lost: usize,
    /// Per-AP attribution of the degradation above, for the health
    /// layer's evidence: which APs lost their payload, were
    /// skew-rejected, lost their marker, failed the wire checksum, or
    /// arrived stalled. Sets of AP ids (arrival order; consumers treat
    /// them as sets).
    lost_ap_ids: Vec<usize>,
    skew_ap_ids: Vec<usize>,
    marker_lost_ap_ids: Vec<usize>,
    corrupt_ap_ids: Vec<usize>,
    stalled_ap_ids: Vec<usize>,
    /// Packets withheld from fusion because their AP was quarantined
    /// when the window closed — still evaluated against the fused fixes
    /// for the quarantined AP's clean-streak readmission decision.
    withheld: Vec<crate::report::ApPacket>,
}

/// One stage-1 decode job: a transmission's reference capture, keyed
/// by its in-window sequence number.
struct DecodeJob {
    seq: usize,
    buffer: Arc<CMat>,
}

/// The stage-1 decode pool: [`crate::DeployConfig::decode_shards`]
/// persistent threads, jobs routed by sequence number (`seq % shards`)
/// and the unordered results reassembled by index — so the pooled path
/// produces byte-identical metrics and dispatches to the serial one.
/// Threads exit when the pool (and with it every job sender) drops.
struct DecodePool {
    job_txs: Vec<Sender<DecodeJob>>,
    done_rx: Receiver<(usize, Option<Arc<DecodedPacket>>)>,
    _joins: Vec<JoinHandle<()>>,
}

impl DecodePool {
    fn new(
        shards: usize,
        modulation: Modulation,
        telemetry: Option<&Arc<DeployTelemetry>>,
    ) -> Self {
        let (done_tx, done_rx) = channel();
        let mut job_txs = Vec::with_capacity(shards);
        let mut joins = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::<DecodeJob>();
            let done = done_tx.clone();
            // Per-shard `stage.decode` histogram handle (None unless
            // stage timing is on) — write-only, so the pooled decode
            // path stays byte-identical with telemetry on or off.
            let hist = telemetry.and_then(|t| t.stage("stage.decode", "shard", shard));
            let join = std::thread::Builder::new()
                .name(format!("sa-deploy-decode{}", shard))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let decoded = {
                            let _span = StageTimer::start(hist.as_deref());
                            decode_reference(&job.buffer, modulation).ok().map(Arc::new)
                        };
                        if done.send((job.seq, decoded)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn decode worker");
            job_txs.push(tx);
            joins.push(join);
        }
        Self {
            job_txs,
            done_rx,
            _joins: joins,
        }
    }

    /// Decode one window's reference captures across the pool,
    /// returning the results indexed by sequence number (`None` = no
    /// detectable packet). Independent of thread scheduling: fan-out is
    /// a pure function of `seq`, and gathering is by index.
    fn decode_window(&self, transmissions: &[Transmission]) -> Vec<Option<Arc<DecodedPacket>>> {
        let n = self.job_txs.len();
        for (seq, t) in transmissions.iter().enumerate() {
            let _ = self.job_txs[seq % n].send(DecodeJob {
                seq,
                buffer: t.per_ap[0].clone(),
            });
        }
        let mut out: Vec<Option<Arc<DecodedPacket>>> = vec![None; transmissions.len()];
        for _ in 0..transmissions.len() {
            match self.done_rx.recv() {
                Ok((seq, decoded)) => out[seq] = decoded,
                // Every decode thread died — the missing entries read
                // as decode failures rather than wedging the ingest.
                Err(_) => break,
            }
        }
        out
    }
}

/// A running multi-AP deployment (see the crate docs for the data
/// flow). Construction spawns one worker thread per AP; dropping
/// without [`Deployment::finish`] shuts the workers down but discards
/// their state.
///
/// ```no_run
/// use sa_deploy::{ApSkew, DeployConfig, Deployment, LinkConfig, Transmission};
/// # fn aps() -> Vec<secureangle::AccessPoint> { Vec::new() }
/// # fn spare_ap() -> secureangle::AccessPoint { unimplemented!() }
/// # fn captures(_n: usize) -> Vec<Transmission> { Vec::new() }
///
/// // A degraded-mode deployment: 10% report loss with 3 retransmits,
/// // tolerate up to ±2 windows of per-AP clock skew.
/// let cfg = DeployConfig {
///     link: LinkConfig { loss_rate: 0.10, retry_limit: 3, seed: 7 },
///     max_skew_windows: 2,
///     ..DeployConfig::default()
/// };
/// let skews = vec![ApSkew { window_offset: 2, seq_offset: 40, drift_ppw: 0.0 }; 4];
/// let mut deployment = Deployment::with_skews(aps(), cfg, skews);
///
/// deployment.submit_window(captures(deployment.live_aps())).unwrap();
/// let fused = deployment.collect_window().unwrap();
/// assert!(fused.lost_reports <= fused.expected_aps);
///
/// // Mid-run churn: a new AP joins (consensus re-baselines), a flaky
/// // one is pulled. Windows already in flight still close.
/// let new_id = deployment.add_ap(spare_ap());
/// let _flaky = deployment.remove_ap(0).unwrap();
/// assert!(new_id > 0);
///
/// let (report, _aps) = deployment.finish();
/// println!("{} windows, {} degraded", report.metrics.windows,
///          report.metrics.degraded_windows);
/// ```
pub struct Deployment {
    cfg: DeployConfig,
    modulation: Modulation,
    /// Positions by stable AP id (retired ids keep their entry).
    ap_positions: Vec<Point>,
    slots: Vec<WorkerSlot>,
    /// Stage-1 decode pool; `None` ⇒ inline serial decode
    /// (`decode_shards <= 1`).
    decode_pool: Option<DecodePool>,
    up_tx: SyncSender<WindowDone>,
    up_rx: Receiver<WindowDone>,
    fusion: Fusion,
    aligner: SkewAligner,
    /// The AP immune system: per-AP scores, quarantine membership, and
    /// the stall watchdog. Inert when [`crate::HealthConfig::enabled`]
    /// is off (the default).
    health: FleetHealth,
    /// Windows submitted but not yet collected, in order.
    pending: VecDeque<u64>,
    next_window: u64,
    bins: BTreeMap<u64, WindowBin>,
    metrics: DeployMetrics,
    per_ap_window_stats: Vec<ApStats>,
    /// The shared telemetry bundle; `None` when
    /// [`DeployConfig::telemetry`] is disabled (the default).
    telemetry: Option<Arc<DeployTelemetry>>,
    /// `stage.decode` handle for the inline (poolless) decode path.
    inline_decode_hist: Option<Arc<Histogram>>,
    /// Periodic snapshot hook: `(every_windows, callback)`, fired from
    /// [`Deployment::collect_window`].
    dump_hook: Option<(u64, DumpHook)>,
}

/// Boxed callback for [`Deployment::set_dump_hook`].
type DumpHook = Box<dyn FnMut(&TelemetrySnapshot) + Send>;

impl Deployment {
    /// Spawn a deployment over the given APs with synchronized clocks.
    /// All APs must share one modulation (the shared decode runs once
    /// per transmission) and have a circular array if their bearings
    /// are to contribute global azimuths. Panics on an empty AP list or
    /// mixed modulations.
    pub fn new(aps: Vec<AccessPoint>, cfg: DeployConfig) -> Self {
        let skews = vec![ApSkew::NONE; aps.len()];
        Self::with_skews(aps, cfg, skews)
    }

    /// [`Deployment::new`] with a per-AP clock-skew model: `skews[k]`
    /// is AP `k`'s [`ApSkew`]. Panics if the lengths differ.
    pub fn with_skews(aps: Vec<AccessPoint>, cfg: DeployConfig, skews: Vec<ApSkew>) -> Self {
        assert!(!aps.is_empty(), "deployment needs at least one AP");
        assert_eq!(aps.len(), skews.len(), "one ApSkew per AP required");
        let modulation = aps[0].config().modulation;
        assert!(
            aps.iter().all(|ap| ap.config().modulation == modulation),
            "deployment APs must share one modulation"
        );
        assert!(
            cfg.marker_loss_rate == 0.0 || cfg.marker_timeout_windows >= 1,
            "marker_loss_rate > 0 requires marker_timeout_windows >= 1: without \
             gap detection a lost end-of-window marker stalls its window forever"
        );
        let ap_positions: Vec<Point> = aps.iter().map(|ap| ap.config().position).collect();
        let n_aps = aps.len();
        let telemetry = DeployTelemetry::new(cfg.telemetry);
        let inline_decode_hist = telemetry
            .as_ref()
            .and_then(|t| t.stage("stage.decode", "shard", 0));
        let decode_pool = (cfg.decode_shards > 1)
            .then(|| DecodePool::new(cfg.decode_shards, modulation, telemetry.as_ref()));

        let (up_tx, up_rx) = sync_channel(cfg.channel_capacity.max(1));
        let mut aligner = SkewAligner::new(cfg.max_skew_windows);
        let mut health = FleetHealth::new(cfg.health);
        let slots = aps
            .into_iter()
            .zip(skews)
            .enumerate()
            .map(|(ap_id, (ap, skew))| {
                aligner.add_ap();
                health.add_ap();
                let tap = worker_tap(telemetry.as_ref(), ap_id);
                spawn_worker(ap_id, ap, &cfg, skew, up_tx.clone(), tap)
            })
            .collect();

        let mut fusion = Fusion::new(ap_positions.clone(), cfg.clone());
        if let Some(t) = &telemetry {
            fusion.attach_telemetry(t);
        }
        Self {
            fusion,
            telemetry,
            inline_decode_hist,
            dump_hook: None,
            cfg,
            health,
            modulation,
            ap_positions,
            slots,
            decode_pool,
            up_tx,
            up_rx,
            aligner,
            pending: VecDeque::new(),
            next_window: 0,
            bins: BTreeMap::new(),
            metrics: DeployMetrics::default(),
            per_ap_window_stats: vec![ApStats::default(); n_aps],
        }
    }

    /// Number of *live* APs — the capture count
    /// [`Deployment::submit_window`] expects per transmission.
    pub fn live_aps(&self) -> usize {
        self.slots.iter().filter(|s| s.alive).count()
    }

    /// Size of the stable AP id space (live + removed + lost APs).
    pub fn n_aps(&self) -> usize {
        self.slots.len()
    }

    /// The ids of the live APs, ascending — `live_ap_ids()[k]` is the
    /// AP that hears `Transmission::per_ap[k]`.
    pub fn live_ap_ids(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(id, _)| id)
            .collect()
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeployConfig {
        &self.cfg
    }

    /// AP positions, by stable AP id (including retired APs).
    pub fn ap_positions(&self) -> &[Point] {
        &self.ap_positions
    }

    /// Running deployment-wide counters.
    pub fn metrics(&self) -> &DeployMetrics {
        &self.metrics
    }

    /// Per-AP statistics accumulated so far (from closed windows only;
    /// the final totals come back in the [`DeploymentReport`]).
    pub fn per_ap_stats(&self) -> &[ApStats] {
        &self.per_ap_window_stats
    }

    /// Train a client's consensus reference position by hand (see
    /// [`Fusion::train_reference`]).
    pub fn train_reference(&mut self, mac: MacAddr, position: Point) {
        self.fusion.train_reference(mac, position);
    }

    /// A client's trained consensus reference position.
    pub fn reference(&self, mac: &MacAddr) -> Option<Point> {
        self.fusion.reference(mac)
    }

    /// Add an AP to the running deployment (synchronized clock). The
    /// new AP participates from the next submitted window; windows
    /// already in flight close with their original membership. Returns
    /// the new AP's stable id. Consensus references re-baseline: fused
    /// geometry shifts with membership, so every client retrains its
    /// reference from its next clean fix.
    pub fn add_ap(&mut self, ap: AccessPoint) -> usize {
        self.add_ap_with_skew(ap, ApSkew::NONE)
    }

    /// [`Deployment::add_ap`] with a clock-skew model for the joiner.
    /// Panics if the AP's modulation differs from the deployment's.
    pub fn add_ap_with_skew(&mut self, ap: AccessPoint, skew: ApSkew) -> usize {
        assert_eq!(
            ap.config().modulation,
            self.modulation,
            "deployment APs must share one modulation"
        );
        let ap_id = self.slots.len();
        self.aligner.add_ap();
        self.health.add_ap();
        self.ap_positions.push(ap.config().position);
        self.fusion.add_ap(ap.config().position);
        self.per_ap_window_stats.push(ApStats::default());
        let tap = worker_tap(self.telemetry.as_ref(), ap_id);
        self.slots.push(spawn_worker(
            ap_id,
            ap,
            &self.cfg,
            skew,
            self.up_tx.clone(),
            tap,
        ));
        self.metrics.aps_added += 1;
        self.fusion.rebaseline();
        ap_id
    }

    /// Remove a live AP from the running deployment, returning it with
    /// its trained state. The worker first drains every window already
    /// dispatched to it — a mid-run removal never stalls or abandons an
    /// in-flight window — then shuts down. Windows submitted afterward
    /// expect one fewer capture. Consensus references re-baseline.
    ///
    /// Errors: [`DeployError::UnknownAp`] if the id is not live,
    /// [`DeployError::LastAp`] if this is the last live AP, and
    /// [`DeployError::WorkerLost`] if the worker dies while draining.
    pub fn remove_ap(&mut self, ap_id: usize) -> Result<AccessPoint, DeployError> {
        if !self.slots.get(ap_id).is_some_and(|s| s.alive) {
            return Err(DeployError::UnknownAp { ap_id });
        }
        if self.live_aps() == 1 {
            return Err(DeployError::LastAp);
        }
        // Shutdown first, then drain — the order matters under marker
        // loss: its dispatched-but-unreported windows resolve either by
        // their markers (FIFO: everything queued processes before the
        // Shutdown), by a later marker's gap, or by the final flush
        // revealing tail losses. A drain-first order would wait forever
        // on a lost tail marker.
        self.send_shutdown(ap_id);
        while self.aligner.pending(ap_id) > 0 && self.slots[ap_id].alive {
            if self.slots[ap_id]
                .join
                .as_ref()
                .is_some_and(|j| j.is_finished())
            {
                // The worker exited: every send it made (markers, then
                // the flush) is already in the channel. Drain them; if
                // anything is still outstanding after that, it died
                // without flushing (a panic) and must be reaped.
                while let Ok(done) = self.up_rx.try_recv() {
                    self.route(done);
                }
                if self.aligner.pending(ap_id) > 0 {
                    self.reap_worker(ap_id);
                }
                break;
            }
            self.wait_for_progress();
        }
        if !self.slots[ap_id].alive {
            // Died while draining (reaped as a worker loss).
            return Err(DeployError::WorkerLost {
                window: self.next_window,
            });
        }
        // The worker's final flush is a *blocking* send on the shared
        // report channel; joining before the thread has exited would
        // deadlock on a full channel. Drain reports until it is gone.
        while self.slots[ap_id]
            .join
            .as_ref()
            .is_some_and(|j| !j.is_finished())
        {
            if let Ok(done) = self
                .up_rx
                .recv_timeout(std::time::Duration::from_millis(10))
            {
                self.route(done);
            }
        }
        let slot = &mut self.slots[ap_id];
        slot.alive = false;
        let joined = slot.join.take().map(|j| j.join());
        // Membership ended either way — a panic during shutdown must
        // still retire the AP from fusion and re-baseline, or stale
        // references would false-flag every client under the new
        // geometry.
        self.fusion.retire_ap(ap_id);
        self.fusion.rebaseline();
        self.aligner.forget_ap(ap_id);
        let (ap, stats) = match joined {
            Some(Ok(pair)) => pair,
            _ => {
                self.metrics.worker_losses += 1;
                return Err(DeployError::WorkerLost {
                    window: self.next_window,
                });
            }
        };
        self.slots[ap_id].final_stats = Some(stats);
        self.metrics.aps_removed += 1;
        self.health.mark_dead(ap_id);
        Ok(ap)
    }

    /// Re-join a previously removed (or lost) AP under its original
    /// stable id, with its trained state intact — persistent identity
    /// instead of the fresh-id full retrain [`Deployment::add_ap`]
    /// would force. The AP participates from the next submitted window.
    /// When the health layer is on, the re-joiner comes back *on
    /// probation*: it stays quarantined (reports withheld from
    /// fusion/consensus, but still scored) until it logs
    /// [`crate::HealthConfig::probation_windows`] clean windows, then
    /// is re-admitted. Consensus references re-baseline either way —
    /// fused geometry shifts with membership.
    ///
    /// Errors: [`DeployError::UnknownAp`] if the id was never a member
    /// or is still live. Panics if the AP's modulation differs from the
    /// deployment's.
    pub fn rejoin_ap(
        &mut self,
        ap_id: usize,
        ap: AccessPoint,
        skew: ApSkew,
    ) -> Result<(), DeployError> {
        if self.slots.get(ap_id).is_none_or(|s| s.alive) {
            return Err(DeployError::UnknownAp { ap_id });
        }
        assert_eq!(
            ap.config().modulation,
            self.modulation,
            "deployment APs must share one modulation"
        );
        self.ap_positions[ap_id] = ap.config().position;
        self.aligner.revive_ap(ap_id);
        self.fusion.revive_ap(ap_id, ap.config().position);
        let tap = worker_tap(self.telemetry.as_ref(), ap_id);
        let prior_stats = self.slots[ap_id].final_stats.take();
        self.slots[ap_id] = spawn_worker(ap_id, ap, &self.cfg, skew, self.up_tx.clone(), tap);
        self.slots[ap_id].final_stats = prior_stats;
        self.metrics.aps_rejoined += 1;
        self.health.start_probation(ap_id);
        self.fusion.rebaseline();
        Ok(())
    }

    /// Current health score for `ap_id`, `[0, 1]` (1.0 when the health
    /// layer is disabled or the AP has a clean record).
    pub fn health_score(&self, ap_id: usize) -> f64 {
        self.health.score(ap_id)
    }

    /// Ids of the APs currently quarantined by the health layer,
    /// ascending (always empty when health is disabled).
    pub fn quarantined_aps(&self) -> Vec<usize> {
        self.health.quarantined_aps()
    }

    /// Make AP `ap_id`'s worker die abruptly without reporting — test
    /// fault injection for the crash-tolerance path (a real panic or
    /// power loss looks identical to the coordinator: the thread is
    /// gone and its windows must close without it).
    #[doc(hidden)]
    pub fn crash_worker(&mut self, ap_id: usize) -> Result<(), DeployError> {
        match self.slots.get(ap_id).and_then(|s| s.tx.as_ref()) {
            Some(tx) => {
                let _ = tx.send(WorkerMsg::Crash);
                Ok(())
            }
            None => Err(DeployError::UnknownAp { ap_id }),
        }
    }

    /// Ingest one observation window of traffic: run the shared stage-1
    /// decode per transmission and dispatch the per-AP captures (plus
    /// the shared [`secureangle::DecodedPacket`]) to every live worker.
    /// Returns the window number. Transmissions whose reference capture
    /// contains no detectable packet are counted in
    /// [`DeployMetrics::decode_failures`] and skipped fleet-wide.
    pub fn submit_window(&mut self, transmissions: Vec<Transmission>) -> Result<u64, DeployError> {
        let live = self.live_ap_ids();
        if live.is_empty() {
            return Err(DeployError::WorkerLost {
                window: self.next_window,
            });
        }
        for t in &transmissions {
            if t.per_ap.len() != live.len() {
                return Err(DeployError::ApCountMismatch {
                    expected: live.len(),
                    got: t.per_ap.len(),
                });
            }
        }
        let window = self.next_window;
        self.next_window += 1;

        // Stage 1, once per transmission (reference capture = the first
        // live AP's) — fanned across the decode pool when it exists,
        // inline otherwise. Either way the results are consumed in
        // sequence order below, so metrics and dispatches are
        // byte-identical across shard counts.
        let decoded_by_seq: Vec<Option<Arc<DecodedPacket>>> = match &self.decode_pool {
            Some(pool) => pool.decode_window(&transmissions),
            None => transmissions
                .iter()
                .map(|t| {
                    let _span = StageTimer::start(self.inline_decode_hist.as_deref());
                    decode_reference(&t.per_ap[0], self.modulation)
                        .ok()
                        .map(Arc::new)
                })
                .collect(),
        };
        let mut per_worker: Vec<Vec<WorkerPacket>> = (0..live.len()).map(|_| Vec::new()).collect();
        for (seq, (t, decoded)) in transmissions.into_iter().zip(decoded_by_seq).enumerate() {
            self.metrics.transmissions += 1;
            let Some(decoded) = decoded else {
                self.metrics.decode_failures += 1;
                continue;
            };
            for (k, buffer) in t.per_ap.into_iter().enumerate() {
                per_worker[k].push(WorkerPacket {
                    buffer,
                    decoded: decoded.clone(),
                    seq: seq as u64,
                });
            }
        }

        self.bins.insert(
            window,
            WindowBin {
                expected: live.clone(),
                ..WindowBin::default()
            },
        );

        // Dispatch, with ingest backpressure accounting. A full worker
        // queue is never waited on blindly: the coordinator keeps
        // draining the report channel while it waits, so workers stuck
        // publishing finished windows can always make progress — deep
        // pipelining backs up gracefully instead of deadlocking on a
        // full channel cycle. A worker found dead here is reaped and
        // skipped; the window will close without it.
        for (k, packets) in per_worker.into_iter().enumerate() {
            let ap_id = live[k];
            self.aligner
                .note_dispatch(ap_id, window, packets.first().map(|p| p.seq));
            let dispatched_packets = packets.len() as u64;
            // A hung worker (crash noticed at some earlier racy point)
            // is still a *member* — its membership ends at the collect
            // of its first unreported window — so the dispatch is
            // accounted identically whether the hangup was noticed
            // before this send, during it (`Disconnected`), or not yet
            // at all: *when* a crash is noticed never changes a byte.
            let tx = self.slots[ap_id].tx.clone();
            if let Some(tx) = tx {
                let mut msg = WorkerMsg::Window { window, packets };
                let mut counted = false;
                loop {
                    match tx.try_send(msg) {
                        Ok(()) => break,
                        Err(TrySendError::Full(m)) => {
                            msg = m;
                            if !counted {
                                self.metrics.ingest_backpressure_events += 1;
                                counted = true;
                            }
                            self.wait_for_progress();
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.note_hangup(ap_id);
                            break;
                        }
                    }
                }
            }
            self.metrics.packets_dispatched += dispatched_packets;
        }
        self.pending.push_back(window);
        Ok(window)
    }

    /// Route one worker report batch into its window's bin, aligning
    /// the worker's local window label back to the global window and
    /// rejecting labels beyond the skew tolerance.
    fn route(&mut self, done: WindowDone) {
        if done.flush {
            // Ordered-shutdown sentinel: everything queued before the
            // Shutdown already reported (FIFO), so whatever this AP
            // still owes lost its marker for good — nothing later will
            // ever reveal the tail gap. Close those windows now.
            for global in self.aligner.take_outstanding(done.ap_id) {
                self.mark_marker_lost(done.ap_id, global);
            }
            return;
        }
        let (skipped, aligned) = self.aligner.align_gaps(
            done.ap_id,
            done.label,
            done.seq_base,
            self.cfg.marker_timeout_windows,
        );
        // Earlier windows revealed as marker-lost by this marker's gap.
        for global in skipped {
            self.mark_marker_lost(done.ap_id, global);
        }
        let Some(aligned) = aligned else {
            // Unattributable (nothing outstanding for the AP — e.g. it
            // was reaped and forgotten): discard.
            return;
        };
        let Some(bin) = self.bins.get_mut(&aligned.global) else {
            return;
        };
        if done.stalled {
            // Wedged DSP: the marker closed the window but the payload
            // is empty. A run of these trips the stall watchdog.
            bin.stalled_ap_ids.push(done.ap_id);
            self.metrics.windows_stalled += 1;
        }
        if done.lost {
            bin.lost_reports += 1;
            bin.lost_ap_ids.push(done.ap_id);
            self.metrics.reports_lost += 1;
        } else if !aligned.accepted {
            bin.skew_rejected += 1;
            bin.skew_ap_ids.push(done.ap_id);
            self.metrics.skew_rejections += 1;
            self.per_ap_window_stats[done.ap_id].skew_rejections += 1;
        } else if payload_checksum(done.label, done.seq_base, &done.packets) != done.checksum {
            // Wire corruption: the payload does not match the checksum
            // the worker computed when it sent it. Reject the whole
            // payload — a bit-flipped bearing must never be fused.
            bin.corrupt_ap_ids.push(done.ap_id);
            self.metrics.reports_corrupt += 1;
            self.per_ap_window_stats[done.ap_id].reports_corrupt += 1;
        } else {
            let mut packets = done.packets;
            for p in &mut packets {
                p.window = aligned.global;
                p.seq = (p.seq as i64 - aligned.seq_delta) as u64;
                if let Some(r) = &mut p.report {
                    r.seq = p.seq;
                }
            }
            bin.packets.extend(packets);
        }
        bin.reported.push(done.ap_id);
        bin.end_stats.push((done.ap_id, done.stats));
        let depth: usize = self.bins.values().map(|b| b.packets.len()).sum();
        self.metrics.max_fusion_queue_depth = self.metrics.max_fusion_queue_depth.max(depth);
    }

    /// Close the books on one `(AP, window)` whose end-of-window marker
    /// was lost: the AP counts as reported — so the window can close —
    /// but contributed no bearings, and the loss earns consensus slack
    /// in [`Deployment::collect_window`].
    fn mark_marker_lost(&mut self, ap_id: usize, window: u64) {
        self.metrics.markers_lost += 1;
        self.per_ap_window_stats[ap_id].markers_lost += 1;
        if let Some(bin) = self.bins.get_mut(&window) {
            if !bin.reported.contains(&ap_id) {
                bin.reported.push(ap_id);
                bin.markers_lost += 1;
                bin.marker_lost_ap_ids.push(ap_id);
            }
        }
    }

    /// Order one worker to shut down without blocking the coordinator.
    /// The input channel is FIFO, so everything already queued still
    /// processes first, and the worker's final flush sentinel then
    /// closes any tail windows whose markers were lost. A full input
    /// queue is waited out while draining reports (the same discipline
    /// as dispatch), and a disconnected one means the worker already
    /// died — its hangup is flagged and noted.
    fn send_shutdown(&mut self, ap_id: usize) {
        loop {
            let Some(tx) = self.slots[ap_id].tx.clone() else {
                return;
            };
            match tx.try_send(WorkerMsg::Shutdown) {
                Ok(()) => {
                    self.slots[ap_id].tx = None;
                    return;
                }
                Err(TrySendError::Full(_)) => self.wait_for_progress(),
                Err(TrySendError::Disconnected(_)) => {
                    self.note_hangup(ap_id);
                    return;
                }
            }
        }
    }

    /// Wait a beat for the workers to make progress, draining any
    /// report that arrives in the meantime. Detects exited workers: a
    /// worker thread that is gone (panic, injected crash, or a normal
    /// post-shutdown exit) has its buffered reports salvaged and its
    /// hangup flagged — but its membership is *not* ended here; that
    /// happens deterministically in [`Deployment::collect_window`].
    fn wait_for_progress(&mut self) {
        match self
            .up_rx
            .recv_timeout(std::time::Duration::from_millis(10))
        {
            Ok(done) => self.route(done),
            Err(_) => {
                let finished: Vec<usize> = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| {
                        s.alive && !s.hung && s.join.as_ref().is_some_and(|j| j.is_finished())
                    })
                    .map(|(id, _)| id)
                    .collect();
                for ap_id in finished {
                    self.note_hangup(ap_id);
                }
            }
        }
    }

    /// Note that a worker's thread has exited: drain every report
    /// already in flight, stop sending to it, and flag the hangup. The
    /// drain-first order matters — a dead thread's sends all happened
    /// before it exited, so they are already in the channel, and
    /// draining salvages them no matter *where* the death was noticed
    /// (timeout scan or a failed send). Deliberately does **not** end
    /// the worker's membership: hangups are noticed at racy points, so
    /// the membership end (retire, re-baseline, loss accounting) is
    /// deferred to [`Deployment::finish_reap`], which
    /// [`Deployment::collect_window`] runs at the first window the
    /// worker failed to report — a deterministic point in window order.
    fn note_hangup(&mut self, ap_id: usize) {
        if !self.slots[ap_id].alive || self.slots[ap_id].hung {
            return;
        }
        while let Ok(done) = self.up_rx.try_recv() {
            self.route(done);
        }
        let slot = &mut self.slots[ap_id];
        slot.tx = None;
        slot.hung = true;
    }

    /// End a hung worker's membership: forget its outstanding
    /// dispatches, retire it from fusion/consensus, re-baseline, count
    /// the loss. Only called from deterministic points (the collect
    /// sweep and [`Deployment::remove_ap`]).
    fn finish_reap(&mut self, ap_id: usize) {
        let slot = &mut self.slots[ap_id];
        if !slot.alive {
            return;
        }
        slot.alive = false;
        slot.tx = None;
        if let Some(join) = slot.join.take() {
            if let Ok((_ap, stats)) = join.join() {
                // The AP object itself is dropped: a crashed worker's
                // state is not trusted. Its counters are still real.
                slot.final_stats = Some(stats);
            }
        }
        self.aligner.forget_ap(ap_id);
        self.fusion.retire_ap(ap_id);
        self.health.mark_dead(ap_id);
        self.metrics.worker_losses += 1;
        self.fusion.rebaseline();
    }

    /// Immediate salvage-and-reap, for callers already at a
    /// deterministic point (mid-removal).
    fn reap_worker(&mut self, ap_id: usize) {
        self.note_hangup(ap_id);
        self.finish_reap(ap_id);
    }

    /// Reap a *live* worker whose stall run hit the watchdog: hang up
    /// its input channel (the worker drains its queue and exits
    /// normally at the next receive), drain its in-flight reports, end
    /// its membership. Deterministic — triggered by a window count,
    /// never a wall clock, and counted in
    /// [`DeployMetrics::watchdog_reaps`] rather than `worker_losses`.
    fn watchdog_reap(&mut self, ap_id: usize) {
        if !self.slots[ap_id].alive {
            return;
        }
        self.slots[ap_id].tx = None;
        // The worker may be mid-publish on the shared report channel;
        // keep draining until its thread has actually exited, or a full
        // channel would deadlock the join below.
        while self.slots[ap_id]
            .join
            .as_ref()
            .is_some_and(|j| !j.is_finished())
        {
            if let Ok(done) = self
                .up_rx
                .recv_timeout(std::time::Duration::from_millis(10))
            {
                self.route(done);
            }
        }
        while let Ok(done) = self.up_rx.try_recv() {
            self.route(done);
        }
        let slot = &mut self.slots[ap_id];
        slot.alive = false;
        if let Some(join) = slot.join.take() {
            if let Ok((_ap, stats)) = join.join() {
                slot.final_stats = Some(stats);
            }
        }
        self.aligner.forget_ap(ap_id);
        self.fusion.retire_ap(ap_id);
        self.health.mark_dead(ap_id);
        self.metrics.watchdog_reaps += 1;
        self.fusion.rebaseline();
    }

    /// Is window `w`'s bin closable: every AP expected at submit has
    /// either delivered its end-of-window marker, hung up (thread gone,
    /// reports salvaged — it will never deliver), or is no longer live.
    fn closable(&self, window: u64) -> bool {
        match self.bins.get(&window) {
            Some(bin) => bin
                .expected
                .iter()
                .all(|&k| bin.reported.contains(&k) || !self.slots[k].alive || self.slots[k].hung),
            None => true,
        }
    }

    /// Block until the oldest in-flight window has closed — every AP
    /// that was live at submit has reported (or died) — then fuse and
    /// return it. Reports for later windows that arrive in the meantime
    /// are buffered in the reorder buffer (their depth shows up in
    /// [`DeployMetrics::max_fusion_queue_depth`]). A window whose data
    /// is partial (lost reports, skew rejections, dead APs) is fused
    /// from the bearings that survived; see [`FusedWindow::lost_reports`]
    /// and [`FusedWindow::skew_rejected`].
    pub fn collect_window(&mut self) -> Result<FusedWindow, DeployError> {
        let window = self
            .pending
            .pop_front()
            .ok_or(DeployError::NothingSubmitted)?;
        while !self.closable(window) {
            self.wait_for_progress();
        }

        let mut bin = self.bins.remove(&window).unwrap_or_default();
        // Membership end for hung workers, at the first window each one
        // failed to report. Collects run strictly in window order, so
        // this sweep — and the retire/re-baseline it triggers — lands
        // at the same window on every rerun, no matter *when* the
        // hangup was physically noticed. A hung worker that reported
        // everything it was dispatched (e.g. an ordered shutdown, or a
        // crash after its last report) is never swept: its exit is
        // indistinguishable from a clean one.
        let failed: Vec<usize> = bin
            .expected
            .iter()
            .copied()
            .filter(|&k| !bin.reported.contains(&k) && self.slots[k].alive && self.slots[k].hung)
            .collect();
        for ap_id in failed {
            self.finish_reap(ap_id);
        }
        for (ap_id, stats) in &bin.end_stats {
            self.per_ap_window_stats[*ap_id].absorb(stats);
            self.metrics.report_backpressure_events += stats.backpressure_events;
        }
        // Quarantine filter: a quarantined AP's packets are withheld
        // from fusion/consensus (still scored against the fused fixes
        // below, for its readmission decision), it stops counting
        // toward the expected-AP denominator, and its losses earn no
        // consensus slack. Quarantine membership is read at *collect*
        // time, and collects are strictly in window order, so the
        // filter is deterministic at any pipelining depth.
        let quarantined: Vec<usize> = bin
            .expected
            .iter()
            .copied()
            .filter(|&k| self.health.is_quarantined(k))
            .collect();
        if !quarantined.is_empty() {
            let packets = std::mem::take(&mut bin.packets);
            let (withheld, kept) = packets
                .into_iter()
                .partition(|p| quarantined.contains(&p.ap_id));
            bin.withheld = withheld;
            bin.packets = kept;
        }
        // Down-weighting: a degraded-but-not-quarantined AP's report
        // confidence is scaled by its health score, so its bearings
        // pull confidence-weighted fixes less while evidence
        // accumulates. A healthy AP's weight is exactly 1.0, leaving
        // clean runs byte-identical.
        if self.health.enabled() {
            for p in &mut bin.packets {
                if let Some(r) = &mut p.report {
                    r.confidence *= self.health.weight(p.ap_id);
                }
            }
        }
        let not_q = |ids: &[usize]| ids.iter().filter(|k| !quarantined.contains(k)).count();
        let dead_not_q = bin
            .expected
            .iter()
            .filter(|&&k| !bin.reported.contains(&k) && !quarantined.contains(&k))
            .count();
        // Degradation the coordinator *knows* about — and the only
        // thing that earns consensus slack downstream: reports lost on
        // the link, rejected for skew, marker-lost, checksum-rejected,
        // stalled, or never coming (dead worker). Marker-lost APs sit
        // in `reported`, so they are disjoint from `dead_aps` — no
        // double counting — and a stalled AP whose payload was *also*
        // lost is only counted once. Quarantined APs' losses are
        // excluded: they are not expected, so they earn no slack.
        let stalled_slack = bin
            .stalled_ap_ids
            .iter()
            .filter(|&&k| !quarantined.contains(&k) && !bin.lost_ap_ids.contains(&k))
            .count();
        let missing_aps = not_q(&bin.lost_ap_ids)
            + not_q(&bin.skew_ap_ids)
            + not_q(&bin.marker_lost_ap_ids)
            + not_q(&bin.corrupt_ap_ids)
            + stalled_slack
            + dead_not_q;
        if missing_aps > 0 {
            self.metrics.degraded_windows += 1;
        }
        let packets = std::mem::take(&mut bin.packets);
        let mut fused = self.fusion.fuse_window_degraded(
            window,
            packets,
            bin.expected.len() - quarantined.len(),
            missing_aps,
            quarantined.len(),
        );
        fused.lost_reports = bin.lost_reports;
        fused.skew_rejected = bin.skew_rejected;
        fused.markers_lost = bin.markers_lost;
        fused.corrupt_reports = bin.corrupt_ap_ids.len();
        fused.stalled_aps = bin.stalled_ap_ids.len();
        fused.quarantined_aps = quarantined.len();
        self.metrics.windows += 1;
        self.metrics.fused_bearings += fused.bearings as u64;
        self.metrics.localize_failures += fused.localize_failures as u64;
        for c in &fused.clients {
            if c.fix.is_some() {
                self.metrics.fixes += 1;
            }
            if c.consensus.is_spoof() {
                self.metrics.consensus_flags += 1;
            }
        }
        if self.health.enabled() {
            self.observe_health(&bin, &fused);
        }
        // Periodic telemetry dump: fire the hook every `every` fused
        // windows, with the window's counters already folded in. Out of
        // band — the hook sees a snapshot copy and cannot influence the
        // pipeline.
        if let Some((every, mut hook)) = self.dump_hook.take() {
            if every > 0 && self.metrics.windows.is_multiple_of(every) {
                let snap = self.telemetry_snapshot();
                hook(&snap);
            }
            self.dump_hook = Some((every, hook));
        }
        Ok(fused)
    }

    /// Fold one fused window's per-AP evidence into the health layer
    /// and apply the resulting actions. The evidence is assembled from
    /// order-independent aggregates (flags, counts, maxima), so the
    /// scores — and every quarantine/readmit/reap decision — are
    /// byte-deterministic at any shard count or pipelining depth.
    fn observe_health(&mut self, bin: &WindowBin, fused: &FusedWindow) {
        let mut ev = vec![ApWindowEvidence::default(); self.slots.len()];
        for e in &fused.ap_bearing_errors {
            let x = &mut ev[e.ap_id];
            x.bearings = e.bearings;
            x.over_warn = e.over_warn;
            x.max_err_deg = e.max_err_deg;
        }
        for &k in &bin.lost_ap_ids {
            ev[k].report_lost = true;
        }
        for &k in &bin.skew_ap_ids {
            ev[k].skew_rejected = true;
        }
        for &k in &bin.marker_lost_ap_ids {
            ev[k].marker_lost = true;
        }
        for &k in &bin.corrupt_ap_ids {
            ev[k].corrupt = true;
        }
        for &k in &bin.stalled_ap_ids {
            ev[k].stalled = true;
        }
        // A quarantined AP's withheld packets are scored against the
        // *untainted* fused fixes: a clean streak here is what earns
        // its re-admission.
        for p in &bin.withheld {
            let Some(r) = &p.report else { continue };
            let Some(fix) = fused
                .clients
                .iter()
                .find(|c| c.mac == r.mac)
                .and_then(|c| c.fix.as_ref())
            else {
                continue;
            };
            let err =
                crate::fusion::bearing_err_deg(self.ap_positions[p.ap_id], fix.position, r.azimuth);
            let x = &mut ev[p.ap_id];
            x.bearings += 1;
            if err > self.cfg.health.bearing_err_warn_deg {
                x.over_warn += 1;
            }
            if err > x.max_err_deg {
                x.max_err_deg = err;
            }
        }
        for action in self.health.observe_window(&ev) {
            match action {
                HealthAction::Quarantine(k) => {
                    self.metrics.aps_quarantined += 1;
                    self.per_ap_window_stats[k].quarantined += 1;
                    // Fused geometry shifts without the outlier —
                    // stale references would false-flag every client.
                    self.fusion.rebaseline();
                }
                HealthAction::Readmit(k) => {
                    self.metrics.aps_readmitted += 1;
                    self.per_ap_window_stats[k].readmitted += 1;
                    self.fusion.rebaseline();
                }
                HealthAction::Reap(k) => self.watchdog_reap(k),
            }
        }
    }

    /// Install a periodic telemetry dump hook: `hook` is called with a
    /// fresh [`TelemetrySnapshot`] after every `every_windows`-th fused
    /// window (e.g. to append exposition dumps to a file). Replaces any
    /// previous hook. With telemetry disabled the hook still fires but
    /// sees only empty snapshots; `every_windows = 0` never fires.
    pub fn set_dump_hook(
        &mut self,
        every_windows: u64,
        hook: impl FnMut(&TelemetrySnapshot) + Send + 'static,
    ) {
        self.dump_hook = Some((every_windows, Box::new(hook)));
    }

    /// A point-in-time [`TelemetrySnapshot`]: the unified counter
    /// registry (fleet and per-AP counters mirrored from the
    /// deterministic [`DeployMetrics`]/[`ApStats`] sources), fusion
    /// occupancy gauges, and every per-stage latency histogram recorded
    /// so far. Empty when telemetry is disabled. While the run is live
    /// the per-AP counters reflect *closed windows* (the full-run
    /// totals, including in-flight work, arrive in
    /// [`DeploymentReport::telemetry`] from [`Deployment::finish`]).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        match &self.telemetry {
            Some(t) => {
                mirror_counters(
                    t,
                    &self.metrics,
                    &self.per_ap_window_stats,
                    &self.fusion,
                    &self.health,
                );
                t.registry.snapshot()
            }
            None => TelemetrySnapshot::default(),
        }
    }

    /// Render the flight recorder's per-client post-mortem for `mac`:
    /// one block per recorded window (oldest first) showing the
    /// bearings, fix, reference and consensus verdict that produced
    /// each decision — the evidence trail behind a spoof flag. `None`
    /// when the flight recorder is off or has nothing for this client.
    pub fn explain(&self, mac: &MacAddr) -> Option<String> {
        let t = self.telemetry.as_ref()?;
        let events = t.recorder()?.events(*mac)?;
        let flags = events.iter().filter(|e| e.verdict.is_spoof()).count();
        let mut out = format!(
            "client {mac}: {} recorded window(s), {} spoof verdict(s)\n",
            events.len(),
            flags
        );
        for e in &events {
            out.push_str(&e.render());
        }
        Some(out)
    }

    /// Submit one window and immediately collect it — the synchronous
    /// convenience path. [`Deployment::run_stream`] pipelines several
    /// windows in flight instead.
    pub fn run_window(
        &mut self,
        transmissions: Vec<Transmission>,
    ) -> Result<FusedWindow, DeployError> {
        self.submit_window(transmissions)?;
        self.collect_window()
    }

    /// Number of windows currently submitted but not yet collected.
    pub fn pending_windows(&self) -> usize {
        self.pending.len()
    }

    /// Run a sequence of windows with up to
    /// [`DeployConfig::windows_in_flight`] of them in flight: while the
    /// workers chew on window *w*'s DSP, the coordinator already runs
    /// stage-1 decode for *w+1* (and beyond, up to the depth) instead
    /// of idling until the fuse. Fused windows come back in submission
    /// order and are byte-identical to the depth-1 (submit-then-collect)
    /// loop — streaming changes the overlap, never the numbers.
    ///
    /// On an error the windows fused so far are lost to the caller;
    /// in-flight ones remain collectable via
    /// [`Deployment::collect_window`] (and [`Deployment::finish`] still
    /// drains them).
    pub fn run_stream(
        &mut self,
        windows: Vec<Vec<Transmission>>,
    ) -> Result<Vec<FusedWindow>, DeployError> {
        let depth = self.cfg.windows_in_flight.max(1);
        let mut out = Vec::with_capacity(windows.len());
        for transmissions in windows {
            while self.pending.len() >= depth {
                out.push(self.collect_window()?);
            }
            self.submit_window(transmissions)?;
        }
        while !self.pending.is_empty() {
            out.push(self.collect_window()?);
        }
        Ok(out)
    }

    /// Drain any in-flight windows, shut the workers down, and return
    /// the final report together with the still-live APs (whose trained
    /// signature stores and quarantine state survive the deployment;
    /// APs removed mid-run were already handed back by
    /// [`Deployment::remove_ap`], and crashed APs' state is gone).
    pub fn finish(mut self) -> (DeploymentReport, Vec<AccessPoint>) {
        // Shutdown orders go out *before* the drain: the input channels
        // are FIFO, so queued windows still process first, and each
        // worker's final flush then closes any tail windows whose
        // markers were lost — a drain-first order would wait on those
        // forever. On a healthy run the flush is a no-op and the result
        // is byte-identical to draining first.
        let live: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tx.is_some())
            .map(|(id, _)| id)
            .collect();
        for ap_id in live {
            self.send_shutdown(ap_id);
        }
        while !self.pending.is_empty() {
            if self.collect_window().is_err() {
                break;
            }
        }
        // A worker's final flush is a *blocking* send on the shared
        // report channel; joining a worker still parked in that send
        // (possible on small channels once every window has closed)
        // would deadlock. Keep draining reports until every thread has
        // actually exited, then sweep the stragglers.
        while self
            .slots
            .iter()
            .any(|s| s.join.as_ref().is_some_and(|j| !j.is_finished()))
        {
            if let Ok(done) = self
                .up_rx
                .recv_timeout(std::time::Duration::from_millis(10))
            {
                self.route(done);
            }
        }
        while let Ok(done) = self.up_rx.try_recv() {
            self.route(done);
        }
        let telemetry = self.telemetry.clone();
        let mut per_ap = Vec::with_capacity(self.slots.len());
        let mut aps = Vec::new();
        for (ap_id, slot) in self.slots.into_iter().enumerate() {
            let prior = slot.final_stats;
            let mut stats = match slot.join.map(|j| j.join()) {
                Some(Ok((ap, mut stats))) => {
                    // A re-joined AP's totals span both stints: fold
                    // the pre-rejoin run (captured at removal) in.
                    if let Some(p) = &prior {
                        stats.absorb(p);
                    }
                    // Store-occupancy gauges, tapped now that the AP's
                    // trained signature store is back in hand.
                    if let Some(t) = &telemetry {
                        let occ = ap.spoof.store().occupancy_summary();
                        let label = ap_id.to_string();
                        t.registry
                            .gauge("store.occupancy", &[("ap", &label)])
                            .set(occ.total as i64);
                        t.registry
                            .gauge("store.max_shard_occupancy", &[("ap", &label)])
                            .set(occ.max as i64);
                        // Shard imbalance is a ratio; gauges are
                        // integers, so export it in milli-units
                        // (1000 = perfectly balanced).
                        t.registry
                            .gauge("store.shard_imbalance_milli", &[("ap", &label)])
                            .set_milli(occ.imbalance());
                    }
                    aps.push(ap);
                    stats
                }
                // Removed or reaped earlier: use the captured totals,
                // falling back to the closed-window view for a panicked
                // worker whose totals died with it.
                _ => prior.unwrap_or(self.per_ap_window_stats[ap_id]),
            };
            // Counters only the coordinator can see (a worker cannot
            // observe its own clock error, wire corruption, or
            // quarantine status) are grafted onto the worker-side
            // totals here.
            stats.skew_rejections = self.per_ap_window_stats[ap_id].skew_rejections;
            stats.reports_corrupt = self.per_ap_window_stats[ap_id].reports_corrupt;
            stats.quarantined = self.per_ap_window_stats[ap_id].quarantined;
            stats.readmitted = self.per_ap_window_stats[ap_id].readmitted;
            per_ap.push(stats);
        }
        // Final mirror from the *full-run* per-AP totals (richer than
        // the closed-window view the live snapshot uses), then freeze
        // the registry into the report. Disabled telemetry yields the
        // empty default snapshot, keeping reports byte-stable.
        let report_telemetry = match &telemetry {
            Some(t) => {
                mirror_counters(t, &self.metrics, &per_ap, &self.fusion, &self.health);
                t.registry.snapshot()
            }
            None => TelemetrySnapshot::default(),
        };
        let report = DeploymentReport {
            n_aps: per_ap.len(),
            metrics: self.metrics,
            per_ap,
            clients: self.fusion.client_summaries(),
            telemetry: report_telemetry,
        };
        (report, aps)
    }
}

/// Mirror the deterministic counter sources into the registry — `set`,
/// not `add`, so repeated snapshots never double-count — plus the
/// fusion occupancy gauges. Mirroring at snapshot time, instead of
/// incrementing registry counters on the hot paths, is what keeps
/// control flow (and therefore every fused byte) identical with
/// telemetry on or off.
fn mirror_counters(
    t: &DeployTelemetry,
    metrics: &DeployMetrics,
    per_ap: &[ApStats],
    fusion: &Fusion,
    health: &FleetHealth,
) {
    metrics.for_each(|name, v| {
        t.registry.counter(&format!("fleet.{name}"), &[]).set(v);
    });
    t.registry
        .gauge("fleet.max_fusion_queue_depth", &[])
        .set(metrics.max_fusion_queue_depth as i64);
    for (ap_id, stats) in per_ap.iter().enumerate() {
        let label = ap_id.to_string();
        stats.for_each(|name, v| {
            t.registry
                .counter(&format!("ap.{name}"), &[("ap", &label)])
                .set(v);
        });
        // The health score is a ratio in [0, 1]; gauges are integers,
        // so it is exported in milli-units (1000 = perfectly healthy).
        if ap_id < health.n_aps() {
            t.registry
                .gauge("ap.health_score", &[("ap", &label)])
                .set_milli(health.score(ap_id));
        }
    }
    t.registry
        .gauge("fusion.rebaselines", &[])
        .set(fusion.rebaseline_count() as i64);
    let per_shard = fusion.tracked_clients_per_shard();
    t.registry
        .gauge("fusion.tracked_clients", &[])
        .set(per_shard.iter().sum::<usize>() as i64);
    for (shard, n) in per_shard.iter().enumerate() {
        t.registry
            .gauge("fusion.shard_clients", &[("shard", &shard.to_string())])
            .set(*n as i64);
    }
    t.registry
        .gauge("recorder.clients", &[])
        .set(t.recorder.client_count() as i64);
}

/// The per-AP stage-histogram handles for one worker, when stage
/// timing is on.
fn worker_tap(telemetry: Option<&Arc<DeployTelemetry>>, ap_id: usize) -> Option<WorkerTap> {
    let t = telemetry?;
    Some(WorkerTap {
        dsp: t.stage("stage.worker_dsp", "ap", ap_id)?,
        enforce: t.stage("stage.enforce", "ap", ap_id)?,
    })
}

/// Spawn one AP worker thread.
fn spawn_worker(
    ap_id: usize,
    ap: AccessPoint,
    cfg: &DeployConfig,
    skew: ApSkew,
    up: SyncSender<WindowDone>,
    tap: Option<WorkerTap>,
) -> WorkerSlot {
    let (tx, rx) = sync_channel(cfg.channel_capacity.max(1));
    let wcfg = WorkerCfg {
        snapshot_cap: cfg.snapshot_cap,
        auto_train_signatures: cfg.auto_train_signatures,
        skew,
        link: cfg.link,
        marker_loss_rate: cfg.marker_loss_rate,
        tap,
        faults: crate::faults::ApFaults::new(
            cfg.faults
                .as_ref()
                .map(|p| p.for_ap(ap_id))
                .unwrap_or_default(),
        ),
    };
    let join = std::thread::Builder::new()
        .name(format!("sa-deploy-ap{}", ap_id))
        .spawn(move || run_worker(ap_id, ap, wcfg, rx, up))
        .expect("spawn AP worker");
    WorkerSlot {
        tx: Some(tx),
        join: Some(join),
        alive: true,
        hung: false,
        final_stats: None,
    }
}
