//! Deployment observability: per-packet reports, per-AP statistics,
//! fused window results and the final [`DeploymentReport`].

use sa_channel::geom::Point;
use sa_mac::MacAddr;
use sa_telemetry::TelemetrySnapshot;
use secureangle::localize::Fix;
use secureangle::pipeline::{BearingReport, FrameVerdict};
use secureangle::spoof::ConsensusVerdict;
use secureangle::tracking::TrackPoint;

/// Defines a block of `u64` counters with the plumbing every such block
/// used to hand-roll: the struct itself, field-wise [`absorb`]
/// (folding), and a [`for_each`] visitor that names every counter — the
/// single source of truth the telemetry registry mirrors from, so a
/// newly added field can never silently miss `absorb` or the exported
/// snapshot.
///
/// [`absorb`]: ApStats::absorb
/// [`for_each`]: ApStats::for_each
macro_rules! counter_block {
    (
        $(#[$struct_meta:meta])*
        pub struct $name:ident {
            $( $(#[$field_meta:meta])* pub $field:ident: u64, )+
        }
    ) => {
        $(#[$struct_meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name {
            $( $(#[$field_meta])* pub $field: u64, )+
        }

        impl $name {
            /// Fold another counter block into this one, field-wise.
            pub fn absorb(&mut self, other: &$name) {
                $( self.$field += other.$field; )+
            }

            /// Visit every counter as a `(name, value)` pair, in
            /// declaration order. This is what the telemetry snapshot
            /// mirrors, so the visitor is exhaustive by construction.
            pub fn for_each(&self, mut f: impl FnMut(&'static str, u64)) {
                $( f(stringify!($field), self.$field); )+
            }
        }
    };
}

/// One AP worker's processed packet, as delivered to the fusion stage:
/// the core crate's `(mac, azimuth, confidence, seq)`
/// [`BearingReport`] (when the packet yielded one) plus the AP's own
/// enforcement verdict and presentation bearing.
#[derive(Debug, Clone, PartialEq)]
pub struct ApPacket {
    /// Which AP observed it (index into the deployment's AP list).
    pub ap_id: usize,
    /// Observation window the packet belongs to.
    pub window: u64,
    /// Transmission sequence number within the window (assigned by the
    /// coordinator; identical across APs for the same transmission).
    pub seq: u64,
    /// Claimed source MAC, if the frame decoded (kept even when no
    /// bearing report exists, so enforcement verdicts stay
    /// attributable).
    pub mac: Option<MacAddr>,
    /// The fusion-ready bearing record
    /// ([`secureangle::Observation::bearing_report`]): present when
    /// the frame decoded *and* the array gives an unambiguous global
    /// azimuth.
    pub report: Option<BearingReport>,
    /// Bearing in the array's presentation convention, degrees
    /// (available even without a [`BearingReport`]).
    pub bearing_deg: f64,
    /// Received signal strength, dB.
    pub rss_db: f64,
    /// This AP's own enforcement verdict for the frame.
    pub verdict: FrameVerdict,
}

counter_block! {
    /// Counters for one AP worker (per window, and summed over the
    /// run). Defined through `counter_block!`, which also generates
    /// [`ApStats::absorb`] and [`ApStats::for_each`] so the three can
    /// never drift apart.
    pub struct ApStats {
    /// Windows processed.
    pub windows: u64,
    /// Captures handed to this worker.
    pub packets: u64,
    /// Captures that produced an observation.
    pub observed: u64,
    /// Captures rejected before DSP (bad shape / no packet at the
    /// decoded extent).
    pub observe_failures: u64,
    /// Frames admitted by this AP's enforcement.
    pub admitted: u64,
    /// Frames dropped as suspected spoofs (including quarantine).
    pub dropped_spoof: u64,
    /// Frames dropped for other reasons (decode, ACL).
    pub dropped_other: u64,
    /// Signature profiles auto-trained by this worker.
    pub trained: u64,
    /// Fusion-ready bearing reports published (decoded frame + an
    /// unambiguous global azimuth).
    pub bearings: u64,
    /// Times the report channel was full when this worker tried to
    /// publish (the send then blocked; nothing is dropped).
    pub backpressure_events: u64,
    /// Report delivery attempts lost on the lossy link (every dropped
    /// attempt, including ones later recovered by a retransmit).
    pub report_drops: u64,
    /// Retransmit attempts performed after a dropped delivery.
    pub report_retransmits: u64,
    /// Whole window reports abandoned after the retry budget ran out:
    /// the window's bearing data from this AP never reached fusion
    /// (only the end-of-window marker did).
    pub reports_lost: u64,
    /// Window reports from this AP excluded because their label
    /// drifted beyond the skew tolerance. Counted by the *coordinator*
    /// (the worker cannot see its own clock error); a steady climb
    /// here is the drifting-clock signature — see the failure-mode
    /// table in `docs/DEPLOYMENT.md`.
    pub skew_rejections: u64,
    /// End-of-window markers from this AP lost on the control path
    /// ([`crate::DeployConfig::marker_loss_rate`]): the coordinator
    /// never heard this AP finish those windows, and they closed via
    /// the gap-detection policy
    /// ([`crate::DeployConfig::marker_timeout_windows`]) or the final
    /// flush instead.
    pub markers_lost: u64,
    /// Window reports from this AP rejected because their payload
    /// failed the report-wire checksum (on-path corruption: bit-flipped
    /// bearings, stale-seq replays, garbage confidence). Counted by the
    /// coordinator; the whole payload is excluded from fusion.
    pub reports_corrupt: u64,
    /// Windows this AP's worker spent wedged: its DSP produced nothing
    /// and the end-of-window marker arrived flagged stalled. A run of
    /// these longer than [`crate::HealthConfig::stall_watchdog_windows`]
    /// gets the worker reaped.
    pub windows_stalled: u64,
    /// Times this AP was quarantined by the health layer (excluded from
    /// fusion/consensus until a clean streak earned re-admission).
    pub quarantined: u64,
    /// Times this AP was re-admitted after quarantine or probation.
    pub readmitted: u64,
    }
}

/// One client's fused result for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientFix {
    /// The client (claimed source MAC).
    pub mac: MacAddr,
    /// Distinct APs that contributed a bearing.
    pub n_aps: usize,
    /// Total bearing observations fused.
    pub n_bearings: usize,
    /// Least-squares intersection of the bearings, if the geometry
    /// allowed one.
    pub fix: Option<Fix>,
    /// The client's smoothed track point after absorbing this fix.
    pub track: Option<TrackPoint>,
    /// Cross-AP consensus verdict for the fused fix.
    pub consensus: ConsensusVerdict,
    /// APs whose own enforcement admitted the client's frame(s).
    pub admitted_aps: usize,
    /// APs whose own enforcement flagged a spoof.
    pub flagged_aps: usize,
    /// Mean per-bearing confidence.
    pub mean_confidence: f64,
    /// Live APs the deployment fielded when the window was submitted —
    /// the denominator for "how partial was this client's view"
    /// (`n_aps < expected_aps` means lost reports, skew rejections, or
    /// the client simply being out of range of some APs).
    pub expected_aps: usize,
}

/// One AP's bearing-residual evidence for one window, measured against
/// the fused fixes its bearings fed. Order-independent aggregates
/// (max + threshold counts, never float sums), so the values are
/// byte-identical at any [`crate::DeployConfig::fusion_shards`] — the
/// health layer can consume them without breaking determinism.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ApBearingError {
    /// The AP.
    pub ap_id: usize,
    /// Bearings from this AP that fed a fused fix this window.
    pub bearings: u32,
    /// Of those, how many missed their fused fix by more than the
    /// health layer's warn threshold
    /// ([`crate::HealthConfig::bearing_err_warn_deg`]).
    pub over_warn: u32,
    /// Worst residual this window, degrees.
    pub max_err_deg: f64,
}

/// Everything fusion produced for one closed observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedWindow {
    /// The window number.
    pub window: u64,
    /// Per-client fused results, ordered by MAC.
    pub clients: Vec<ClientFix>,
    /// Packet reports that fed this window.
    pub packets: usize,
    /// Bearing observations fused.
    pub bearings: usize,
    /// Clients whose bearings could not be intersected
    /// (degenerate geometry).
    pub localize_failures: usize,
    /// Live APs expected to report when the window was submitted.
    pub expected_aps: usize,
    /// APs whose report data for this window was lost on the link
    /// (retries exhausted — fusion saw only their end-of-window
    /// marker).
    pub lost_reports: usize,
    /// AP reports excluded because their window label drifted beyond
    /// the skew tolerance.
    pub skew_rejected: usize,
    /// APs whose end-of-window marker for this window was lost: the
    /// window closed via gap detection (or the final flush), without
    /// ever hearing from them.
    pub markers_lost: usize,
    /// AP reports rejected because their payload failed the wire
    /// checksum.
    pub corrupt_reports: usize,
    /// APs whose worker was wedged this window (marker flagged stalled,
    /// no payload).
    pub stalled_aps: usize,
    /// APs excluded from this window by the health layer's quarantine.
    pub quarantined_aps: usize,
    /// Per-AP bearing-residual evidence against this window's fused
    /// fixes, ordered by AP id — the health layer's byzantine-bias
    /// signal. Empty when no bearings fused.
    pub ap_bearing_errors: Vec<ApBearingError>,
}

/// Deployment-wide running counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeployMetrics {
    /// Windows fused.
    pub windows: u64,
    /// Client transmissions ingested.
    pub transmissions: u64,
    /// Transmissions whose reference capture failed stage 1 (nothing
    /// was dispatched for them).
    pub decode_failures: u64,
    /// Per-AP captures dispatched to workers.
    pub packets_dispatched: u64,
    /// Bearing observations fused.
    pub fused_bearings: u64,
    /// Localization fixes produced.
    pub fixes: u64,
    /// Fusion groups whose geometry was degenerate.
    pub localize_failures: u64,
    /// Cross-AP consensus spoof flags raised.
    pub consensus_flags: u64,
    /// Times the coordinator found a worker's input channel full (the
    /// submit then blocked until the worker caught up).
    pub ingest_backpressure_events: u64,
    /// Times a worker found the report channel full (summed over
    /// workers; each send then blocked).
    pub report_backpressure_events: u64,
    /// High-water mark of packet reports buffered in the fusion stage
    /// across all in-flight windows — the fusion queue depth.
    pub max_fusion_queue_depth: usize,
    /// Window reports whose data was lost on the lossy link (summed
    /// over APs; each cost one AP's bearings for one window).
    pub reports_lost: u64,
    /// Window reports rejected because their label drifted beyond the
    /// skew tolerance.
    pub skew_rejections: u64,
    /// End-of-window markers lost on the control path (summed over
    /// APs; each left one window to close by gap detection or flush).
    pub markers_lost: u64,
    /// Windows fused with at least one live AP's data missing (lost,
    /// rejected, or the AP died mid-window).
    pub degraded_windows: u64,
    /// Worker threads that died without a shutdown order (panic or
    /// channel loss). Their windows closed without them.
    pub worker_losses: u64,
    /// APs added to the deployment mid-run.
    pub aps_added: u64,
    /// APs removed from the deployment mid-run.
    pub aps_removed: u64,
    /// Window reports rejected for a failed wire checksum (summed over
    /// APs).
    pub reports_corrupt: u64,
    /// Stalled AP-windows observed (summed over APs): a marker arrived
    /// flagged stalled with no payload.
    pub windows_stalled: u64,
    /// Quarantine events: an AP's health score fell below the
    /// quarantine threshold and it was excluded from fusion/consensus.
    pub aps_quarantined: u64,
    /// Re-admission events after quarantine or probation.
    pub aps_readmitted: u64,
    /// Workers reaped by the stall watchdog (a run of stalled windows
    /// hit [`crate::HealthConfig::stall_watchdog_windows`]). Distinct
    /// from `worker_losses`, which counts uncommanded deaths.
    pub watchdog_reaps: u64,
    /// APs re-joined with their persistent identity
    /// ([`crate::Deployment::rejoin_ap`]).
    pub aps_rejoined: u64,
}

impl DeployMetrics {
    /// Visit every fleet-wide *counter* as a `(name, value)` pair, in
    /// declaration order. `max_fusion_queue_depth` is deliberately
    /// excluded: it is a high-water mark, not a monotonic counter, and
    /// the telemetry snapshot exports it as a gauge instead.
    pub fn for_each(&self, mut f: impl FnMut(&'static str, u64)) {
        f("windows", self.windows);
        f("transmissions", self.transmissions);
        f("decode_failures", self.decode_failures);
        f("packets_dispatched", self.packets_dispatched);
        f("fused_bearings", self.fused_bearings);
        f("fixes", self.fixes);
        f("localize_failures", self.localize_failures);
        f("consensus_flags", self.consensus_flags);
        f(
            "ingest_backpressure_events",
            self.ingest_backpressure_events,
        );
        f(
            "report_backpressure_events",
            self.report_backpressure_events,
        );
        f("reports_lost", self.reports_lost);
        f("skew_rejections", self.skew_rejections);
        f("markers_lost", self.markers_lost);
        f("degraded_windows", self.degraded_windows);
        f("worker_losses", self.worker_losses);
        f("aps_added", self.aps_added);
        f("aps_removed", self.aps_removed);
        f("reports_corrupt", self.reports_corrupt);
        f("windows_stalled", self.windows_stalled);
        f("aps_quarantined", self.aps_quarantined);
        f("aps_readmitted", self.aps_readmitted);
        f("watchdog_reaps", self.watchdog_reaps);
        f("aps_rejoined", self.aps_rejoined);
    }
}

/// One client's whole-run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSummary {
    /// The client MAC.
    pub mac: MacAddr,
    /// Fixes produced across all windows.
    pub fixes: u64,
    /// Mean localization residual over those fixes, meters.
    pub mean_residual_m: f64,
    /// Cross-AP consensus flags accumulated.
    pub consensus_flags: usize,
    /// The trained consensus reference position, if any.
    pub reference: Option<Point>,
    /// Final smoothed track point.
    pub last_track: Option<TrackPoint>,
}

/// The final report a [`crate::Deployment`] hands back from
/// [`crate::Deployment::finish`].
///
/// For a seeded run every field is byte-deterministic **except** the
/// scheduling-observability counters — queue high-water mark and
/// backpressure event counts — which measure how the worker threads
/// happened to interleave and legitimately vary run to run. The
/// link-health counters (`report_drops`, `reports_lost`,
/// `skew_rejections`, `degraded_windows`) *are* deterministic: loss
/// draws come from per-AP seeded streams, not from scheduling.
///
/// Reading the counters (see `docs/DEPLOYMENT.md` for the full
/// failure-mode table):
///
/// ```
/// use sa_deploy::{ApStats, DeployMetrics, DeploymentReport};
/// # let report = DeploymentReport {
/// #     n_aps: 2,
/// #     metrics: DeployMetrics::default(),
/// #     per_ap: vec![ApStats::default(); 2],
/// #     clients: Vec::new(),
/// #     telemetry: Default::default(),
/// # };
/// for (ap, stats) in report.per_ap.iter().enumerate() {
///     let attempts = stats.packets.max(1);
///     if stats.reports_lost > 0 || stats.report_drops * 10 > attempts {
///         println!("ap{ap}: lossy uplink ({} drops, {} windows lost)",
///                  stats.report_drops, stats.reports_lost);
///     }
/// }
/// if report.metrics.degraded_windows > 0 {
///     println!("{} windows fused with missing APs", report.metrics.degraded_windows);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Size of the AP id space: every AP that was ever a member,
    /// including ones removed (or lost) mid-run. Live membership at
    /// finish is `n_aps − metrics.aps_removed − metrics.worker_losses`.
    pub n_aps: usize,
    /// Deployment-wide counters.
    pub metrics: DeployMetrics,
    /// Per-AP worker statistics (index = stable AP id; removed APs keep
    /// their slot with the stats they accumulated before leaving).
    pub per_ap: Vec<ApStats>,
    /// Per-client summaries, ordered by MAC.
    pub clients: Vec<ClientSummary>,
    /// The unified telemetry snapshot: every per-AP and fleet counter
    /// above mirrored into hierarchical registry names (`ap.*` labeled
    /// by AP id, `fleet.*`), per-stage latency histograms when stage
    /// timing was on, and store-occupancy gauges. Empty when
    /// [`crate::DeployConfig::telemetry`] is disabled (the default), so
    /// reports from telemetry-free runs compare byte-identical to
    /// earlier releases.
    pub telemetry: TelemetrySnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ap_stats_absorb_sums_every_field() {
        let a = ApStats {
            windows: 1,
            packets: 2,
            observed: 3,
            observe_failures: 4,
            admitted: 5,
            dropped_spoof: 6,
            dropped_other: 7,
            trained: 8,
            bearings: 9,
            backpressure_events: 10,
            report_drops: 11,
            report_retransmits: 12,
            reports_lost: 13,
            skew_rejections: 14,
            markers_lost: 15,
            reports_corrupt: 16,
            windows_stalled: 17,
            quarantined: 18,
            readmitted: 19,
        };
        let mut b = a;
        b.absorb(&a);
        assert_eq!(b.windows, 2);
        assert_eq!(b.packets, 4);
        assert_eq!(b.observed, 6);
        assert_eq!(b.observe_failures, 8);
        assert_eq!(b.admitted, 10);
        assert_eq!(b.dropped_spoof, 12);
        assert_eq!(b.dropped_other, 14);
        assert_eq!(b.trained, 16);
        assert_eq!(b.bearings, 18);
        assert_eq!(b.backpressure_events, 20);
        assert_eq!(b.report_drops, 22);
        assert_eq!(b.report_retransmits, 24);
        assert_eq!(b.reports_lost, 26);
        assert_eq!(b.skew_rejections, 28);
        assert_eq!(b.markers_lost, 30);
        assert_eq!(b.reports_corrupt, 32);
        assert_eq!(b.windows_stalled, 34);
        assert_eq!(b.quarantined, 36);
        assert_eq!(b.readmitted, 38);
        // for_each visits the same fields absorb folds — exhaustive by
        // construction (both come out of the counter_block! macro), and
        // the visited sum doubles along with the fields.
        let (mut names_a, mut sum_a) = (Vec::new(), 0u64);
        a.for_each(|name, v| {
            names_a.push(name);
            sum_a += v;
        });
        let mut sum_b = 0u64;
        b.for_each(|_, v| sum_b += v);
        assert_eq!(names_a.len(), 19);
        assert_eq!(names_a[0], "windows");
        assert_eq!(names_a[14], "markers_lost");
        assert_eq!(names_a[18], "readmitted");
        assert_eq!(sum_b, 2 * sum_a);
    }

    #[test]
    fn deploy_metrics_for_each_covers_every_counter() {
        let mut m = DeployMetrics {
            max_fusion_queue_depth: 999,
            ..Default::default()
        };
        // Give every u64 field a distinct value via the visitor's own
        // field list, then check the visited sum matches.
        m.windows = 1;
        m.transmissions = 2;
        m.decode_failures = 3;
        m.packets_dispatched = 4;
        m.fused_bearings = 5;
        m.fixes = 6;
        m.localize_failures = 7;
        m.consensus_flags = 8;
        m.ingest_backpressure_events = 9;
        m.report_backpressure_events = 10;
        m.reports_lost = 11;
        m.skew_rejections = 12;
        m.markers_lost = 13;
        m.degraded_windows = 14;
        m.worker_losses = 15;
        m.aps_added = 16;
        m.aps_removed = 17;
        m.reports_corrupt = 18;
        m.windows_stalled = 19;
        m.aps_quarantined = 20;
        m.aps_readmitted = 21;
        m.watchdog_reaps = 22;
        m.aps_rejoined = 23;
        let mut names = Vec::new();
        let mut sum = 0u64;
        m.for_each(|name, v| {
            names.push(name);
            sum += v;
        });
        assert_eq!(names.len(), 23);
        assert_eq!(sum, (1..=23).sum::<u64>());
        // The high-water mark is a gauge, not a counter: never visited.
        assert!(!names.contains(&"max_fusion_queue_depth"));
    }
}
