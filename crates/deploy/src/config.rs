//! Deployment configuration and errors.

use secureangle::spoof::ConsensusConfig;
use secureangle::tracking::TrackerConfig;

/// Configuration for a [`crate::Deployment`].
#[derive(Debug, Clone, Copy)]
pub struct DeployConfig {
    /// Nominal duration of one observation window, seconds — the `dt`
    /// fed to each client's α–β tracker between fused fixes. Purely
    /// logical time: the scheduler never reads a wall clock.
    pub window_dt_s: f64,
    /// Capacity of each bounded MPSC channel (coordinator → worker and
    /// worker → fusion). Full channels block the sender after bumping a
    /// backpressure counter; nothing is ever silently dropped, so runs
    /// stay deterministic under load.
    pub channel_capacity: usize,
    /// Covariance snapshot budget per packet, forwarded to
    /// [`secureangle::PacketBatch::set_snapshot_cap`]. A few hundred
    /// snapshots saturate an 8×8 covariance; capping keeps per-AP DSP
    /// cost flat in payload length. `0` uses every sample.
    pub snapshot_cap: usize,
    /// Auto-train per-AP signature profiles: when an ACL-admitted MAC
    /// is seen untrained, the worker trains its AP's spoof profile from
    /// that observation (the paper's "initial training stage", run at
    /// deployment scale).
    pub auto_train_signatures: bool,
    /// Auto-train consensus reference positions: a client's first clean
    /// fused fix (low residual, no behind-AP bearings) becomes its
    /// reference for the cross-AP spoof consensus.
    pub auto_train_references: bool,
    /// Minimum number of distinct APs that must contribute a bearing
    /// before fusion attempts a localization fix.
    pub min_aps_for_fix: usize,
    /// Residual gate for auto-trained reference positions, meters.
    pub reference_train_max_residual_m: f64,
    /// Cross-AP consensus thresholds.
    pub consensus: ConsensusConfig,
    /// Per-client α–β tracker gains.
    pub tracker: TrackerConfig,
}

impl Default for DeployConfig {
    fn default() -> Self {
        Self {
            window_dt_s: 0.5,
            channel_capacity: 64,
            snapshot_cap: 256,
            auto_train_signatures: true,
            auto_train_references: true,
            min_aps_for_fix: 2,
            reference_train_max_residual_m: 1.0,
            consensus: ConsensusConfig::default(),
            tracker: TrackerConfig::default(),
        }
    }
}

/// Why a deployment operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployError {
    /// A transmission did not carry exactly one capture per AP.
    ApCountMismatch {
        /// Number of APs in the deployment.
        expected: usize,
        /// Number of captures in the offending transmission.
        got: usize,
    },
    /// `collect_window` was called with no window in flight.
    NothingSubmitted,
    /// A worker thread disconnected mid-run (it panicked or was lost).
    WorkerLost {
        /// Window being collected when the loss was noticed.
        window: u64,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::ApCountMismatch { expected, got } => {
                write!(f, "transmission has {} captures for {} APs", got, expected)
            }
            DeployError::NothingSubmitted => write!(f, "no submitted window to collect"),
            DeployError::WorkerLost { window } => {
                write!(f, "worker disconnected while collecting window {}", window)
            }
        }
    }
}

impl std::error::Error for DeployError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = DeployConfig::default();
        assert!(cfg.window_dt_s > 0.0);
        assert!(cfg.channel_capacity > 0);
        assert!(cfg.min_aps_for_fix >= 2);
        assert!(cfg.reference_train_max_residual_m <= cfg.consensus.max_residual_m);
    }

    #[test]
    fn errors_display() {
        let e = DeployError::ApCountMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("4 APs"));
        assert!(DeployError::NothingSubmitted
            .to_string()
            .contains("collect"));
        assert!(DeployError::WorkerLost { window: 3 }
            .to_string()
            .contains('3'));
    }
}
