//! Deployment configuration and errors.

use crate::faults::FaultPlan;
use crate::health::HealthConfig;
use sa_telemetry::TelemetryConfig;
use secureangle::spoof::ConsensusConfig;
use secureangle::tracking::TrackerConfig;

/// Per-AP clock skew model: how an AP's *local* window and sequence
/// labels relate to the coordinator's global ones. Real APs free-run on
/// their own oscillators — their window counters start at arbitrary
/// epochs (`window_offset`), their packet counters at arbitrary values
/// (`seq_offset`), and cheap clocks drift (`drift_ppw`). Workers stamp
/// their reports with these *local* labels; the coordinator's
/// [`crate::align::SkewAligner`] maps them back, rejecting labels that
/// wander beyond [`DeployConfig::max_skew_windows`].
///
/// ```
/// use sa_deploy::ApSkew;
/// let skew = ApSkew { window_offset: -2, seq_offset: 7, drift_ppw: 0.0 };
/// assert_eq!(skew.window_label(5), 3);
/// assert_eq!(skew.seq_label(0), 7);
/// assert_eq!(ApSkew::NONE.window_label(5), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApSkew {
    /// Constant window-epoch offset, windows (may be negative: the AP's
    /// clock runs behind the coordinator's).
    pub window_offset: i64,
    /// Constant sequence-counter offset (an AP's packet counter since
    /// boot — non-negative by construction).
    pub seq_offset: u64,
    /// Drift, in windows of additional skew accumulated per elapsed
    /// window (e.g. `0.01` gains one extra window of skew every 100
    /// windows). Drift is what eventually walks a worker outside the
    /// alignment tolerance.
    pub drift_ppw: f64,
}

impl ApSkew {
    /// A perfectly synchronized AP.
    pub const NONE: ApSkew = ApSkew {
        window_offset: 0,
        seq_offset: 0,
        drift_ppw: 0.0,
    };

    /// The local window label this AP stamps on global window `w`.
    pub fn window_label(&self, w: u64) -> i64 {
        w as i64 + self.window_offset + (self.drift_ppw * w as f64).trunc() as i64
    }

    /// The local sequence label this AP stamps on global sequence `s`.
    pub fn seq_label(&self, s: u64) -> u64 {
        s + self.seq_offset
    }
}

impl Default for ApSkew {
    fn default() -> Self {
        Self::NONE
    }
}

/// Report-channel link model: the worker → fusion path as a lossy
/// datagram link with bounded retransmission, instead of the perfectly
/// reliable in-process channel.
///
/// Every delivery *attempt* of a window report is dropped independently
/// with probability `loss_rate`; the worker retries up to `retry_limit`
/// more times. If every attempt is lost the report's *data* is gone for
/// good ([`crate::ApStats::reports_lost`]) — only the AP's tiny
/// end-of-window marker (modeled as riding the reliable control path,
/// like a TCP heartbeat next to a UDP bulk channel) reaches the
/// coordinator, so the window still closes deterministically and fusion
/// degrades to the bearings that survived. Loss draws come from a
/// per-AP deterministic generator seeded by `seed ^ ap_id`, so seeded
/// runs stay byte-reproducible regardless of thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Per-attempt drop probability in `[0, 1]`. `0.0` (the default)
    /// short-circuits the whole lossy path: no draws, no retries —
    /// byte-identical behavior to a reliable channel.
    pub loss_rate: f64,
    /// Retransmit attempts after the first send (so `retry_limit = 3`
    /// means up to 4 attempts per report).
    pub retry_limit: u32,
    /// Base seed for the per-AP loss streams.
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            loss_rate: 0.0,
            retry_limit: 3,
            seed: 0x11_4b5e,
        }
    }
}

/// Configuration for a [`crate::Deployment`].
///
/// The default is a clean, synchronized deployment (reliable report
/// link, ±2-window skew tolerance, unit-weight fusion) — byte-
/// compatible with earlier releases. Degraded modes are opted into per
/// field; see `docs/DEPLOYMENT.md` for tuning guidance.
///
/// ```
/// use sa_deploy::{DeployConfig, LinkConfig};
///
/// // A deployment expecting rough infrastructure: 10% report loss
/// // with 3 retransmits, 3-AP fix quorum, confidence-weighted fusion.
/// let cfg = DeployConfig {
///     link: LinkConfig { loss_rate: 0.10, retry_limit: 3, seed: 7 },
///     min_aps_for_fix: 3,
///     weight_bearings_by_confidence: true,
///     ..DeployConfig::default()
/// };
/// assert_eq!(cfg.max_skew_windows, 2); // default skew tolerance
/// // Per-report residual loss after retransmits: loss^(retries+1).
/// let residual = cfg.link.loss_rate.powi(cfg.link.retry_limit as i32 + 1);
/// assert!(residual < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Nominal duration of one observation window, seconds — the `dt`
    /// fed to each client's α–β tracker between fused fixes. Purely
    /// logical time: the scheduler never reads a wall clock.
    pub window_dt_s: f64,
    /// Capacity of each bounded MPSC channel (coordinator → worker and
    /// worker → fusion). Full channels block the sender after bumping a
    /// backpressure counter; nothing is ever silently dropped, so runs
    /// stay deterministic under load.
    pub channel_capacity: usize,
    /// Covariance snapshot budget per packet, forwarded to
    /// [`secureangle::PacketBatch::set_snapshot_cap`]. A few hundred
    /// snapshots saturate an 8×8 covariance; capping keeps per-AP DSP
    /// cost flat in payload length. `0` uses every sample.
    pub snapshot_cap: usize,
    /// Auto-train per-AP signature profiles: when an ACL-admitted MAC
    /// is seen untrained, the worker trains its AP's spoof profile from
    /// that observation (the paper's "initial training stage", run at
    /// deployment scale).
    pub auto_train_signatures: bool,
    /// Auto-train consensus reference positions: a client's first clean
    /// fused fix (low residual, no behind-AP bearings) becomes its
    /// reference for the cross-AP spoof consensus.
    pub auto_train_references: bool,
    /// Minimum number of distinct APs that must contribute a bearing
    /// before fusion attempts a localization fix.
    pub min_aps_for_fix: usize,
    /// Residual gate for auto-trained reference positions, meters.
    pub reference_train_max_residual_m: f64,
    /// Cross-AP consensus thresholds.
    pub consensus: ConsensusConfig,
    /// Per-client α–β tracker gains.
    pub tracker: TrackerConfig,
    /// Clock-skew alignment tolerance, windows: a worker report whose
    /// local window label deviates from the learned per-AP offset by
    /// more than this is rejected (its bearings are excluded from
    /// fusion, counted in [`crate::DeployMetrics::skew_rejections`])
    /// rather than fused into the wrong window. This also bounds the
    /// coordinator's reorder buffer: aligned reports can only target
    /// windows within `max_skew_windows` of each AP's expected position.
    pub max_skew_windows: u64,
    /// Report-channel loss model (defaults to a reliable channel).
    pub link: LinkConfig,
    /// Pipelining depth for [`crate::Deployment::run_stream`]: how many
    /// windows may be submitted before the oldest is collected. At the
    /// default of `1` streaming degenerates to the synchronous
    /// submit-then-collect loop; at `≥ 2` the coordinator's stage-1
    /// decode of the next window overlaps with the workers' per-AP DSP
    /// on the previous one, which is where single-window runs leave the
    /// coordinator core idle. Fused results are byte-identical at any
    /// depth (window close/align/fusion semantics are unchanged —
    /// pinned by the deploy e2e suites); only the overlap differs.
    /// `0` is treated as `1`.
    pub windows_in_flight: usize,
    /// Weight each bearing by its report confidence in the fused
    /// least-squares fix ([`secureangle::localize::localize_weighted`])
    /// instead of weighting all bearings equally. Off by default:
    /// unit-weight fusion is bit-compatible with earlier releases; turn
    /// it on for degraded deployments where marginal through-wall
    /// bearings should pull fixes less.
    pub weight_bearings_by_confidence: bool,
    /// Stage-1 decode pool size. At the default of `1` the coordinator
    /// decodes reference captures inline, serially — the pre-fleet
    /// behavior exactly. At `N > 1` a pool of `N` persistent decode
    /// threads shares the work, keyed by transmission sequence number
    /// (transmission `seq` goes to shard `seq % N`); the coordinator
    /// consumes results **in seq order**, so dispatch order, failure
    /// counting and every downstream byte are identical to the serial
    /// path. `0` is treated as `1`.
    pub decode_shards: usize,
    /// Fusion/tracking/consensus shard count. Per-client state (α–β
    /// tracker, consensus baseline, flags) is partitioned by the same
    /// seedless MAC hash as the signature store
    /// ([`secureangle::store::mac_shard`]); at window close each shard
    /// drains independently (on scoped threads when `> 1`) and the
    /// shard outputs merge back into global MAC order. A client's whole
    /// window is a function of its own reports and its own shard state,
    /// so fused windows are byte-identical at any shard count (pinned
    /// by `tests/proptest_fleet.rs`). `0` is treated as `1`.
    pub fusion_shards: usize,
    /// Probability that an AP's end-of-window *marker* is lost in `[0,
    /// 1]`. The marker rides the control path, which earlier releases
    /// modeled as perfectly reliable even when the bulk report link was
    /// lossy ([`LinkConfig::loss_rate`]); this knob drops the marker
    /// itself, so the coordinator never hears that the AP finished the
    /// window. Requires `marker_timeout_windows ≥ 1` (enforced at
    /// deployment construction): without gap detection a lost marker
    /// desynchronises the per-AP FIFO and stalls the window forever.
    /// Draws come from a dedicated per-AP seeded stream (independent of
    /// the report-loss stream, so enabling one never shifts the
    /// other's draws).
    pub marker_loss_rate: f64,
    /// Marker gap-detection close policy: when a marker from an AP
    /// aligns `d` windows *ahead* of the AP's expected FIFO position
    /// with `1 ≤ d ≤ marker_timeout_windows`, the `d` skipped windows'
    /// markers are declared lost — those windows close without the AP
    /// (counted in [`crate::DeployMetrics::markers_lost`] and granted
    /// the same consensus slack as lost reports) instead of stalling.
    /// `0` (the default) disables gap detection: every positive
    /// deviation is treated as clock skew, the pre-fleet behavior
    /// exactly. Safe under *drifting* clocks too: the aligner learns
    /// each AP's drift rate from its accepted markers and confirms
    /// candidate gaps against the independent sequence-label channel,
    /// so a drifting label is no longer mistaken for a gap (see
    /// [`crate::align::SkewAligner`]). Detection needs a *later* marker
    /// from the gapped AP, so run with `windows_in_flight >
    /// marker_timeout_windows` (a synchronous submit/collect loop never
    /// sends the revealing later window). The deployment's final flush
    /// closes any gap at the tail of the run.
    pub marker_timeout_windows: u64,
    /// Scripted fault injection ([`crate::faults::FaultPlan`]). `None`
    /// (the default) injects nothing and is byte-transparent: the fault
    /// layer is zero-cost-off, pinned by `tests/proptest_chaos.rs`.
    /// Every injected fault is a pure function of the plan and the
    /// window number, so seeded chaos runs are byte-reproducible at any
    /// shard/stream knob setting.
    pub faults: Option<FaultPlan>,
    /// AP health scoring, quarantine and the stall watchdog
    /// ([`crate::health::FleetHealth`]). Disabled by default — the
    /// defensive layer is byte-transparent when off.
    pub health: HealthConfig,
    /// Observability: stage-latency histograms, the unified counter
    /// registry and the per-client flight recorder
    /// ([`sa_telemetry::TelemetryConfig`]). Disabled by default —
    /// telemetry is strictly out-of-band and fused output is
    /// byte-identical with it on or off (pinned by
    /// `tests/proptest_telemetry.rs`), so enabling it is purely a
    /// visibility/overhead trade.
    pub telemetry: TelemetryConfig,
}

impl Default for DeployConfig {
    fn default() -> Self {
        Self {
            window_dt_s: 0.5,
            channel_capacity: 64,
            snapshot_cap: 256,
            auto_train_signatures: true,
            auto_train_references: true,
            min_aps_for_fix: 2,
            reference_train_max_residual_m: 1.0,
            consensus: ConsensusConfig::default(),
            tracker: TrackerConfig::default(),
            max_skew_windows: 2,
            link: LinkConfig::default(),
            weight_bearings_by_confidence: false,
            windows_in_flight: 1,
            decode_shards: 1,
            fusion_shards: 1,
            marker_loss_rate: 0.0,
            marker_timeout_windows: 0,
            faults: None,
            health: HealthConfig::default(),
            telemetry: TelemetryConfig::disabled(),
        }
    }
}

/// Why a deployment operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployError {
    /// A transmission did not carry exactly one capture per AP.
    ApCountMismatch {
        /// Number of APs in the deployment.
        expected: usize,
        /// Number of captures in the offending transmission.
        got: usize,
    },
    /// `collect_window` was called with no window in flight.
    NothingSubmitted,
    /// A worker thread disconnected mid-run (it panicked or was lost).
    WorkerLost {
        /// Window being collected when the loss was noticed.
        window: u64,
    },
    /// An AP id that is not (or no longer) a live member of the
    /// deployment was named in a churn operation.
    UnknownAp {
        /// The offending AP id.
        ap_id: usize,
    },
    /// Removing the AP would leave the deployment empty.
    LastAp,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::ApCountMismatch { expected, got } => {
                write!(f, "transmission has {} captures for {} APs", got, expected)
            }
            DeployError::NothingSubmitted => write!(f, "no submitted window to collect"),
            DeployError::WorkerLost { window } => {
                write!(f, "worker disconnected while collecting window {}", window)
            }
            DeployError::UnknownAp { ap_id } => {
                write!(f, "AP {} is not a live member of the deployment", ap_id)
            }
            DeployError::LastAp => write!(f, "cannot remove the deployment's last live AP"),
        }
    }
}

impl std::error::Error for DeployError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = DeployConfig::default();
        assert!(cfg.window_dt_s > 0.0);
        assert!(cfg.channel_capacity > 0);
        assert!(cfg.min_aps_for_fix >= 2);
        assert!(cfg.reference_train_max_residual_m <= cfg.consensus.max_residual_m);
        // Degraded-mode defaults: reliable link, ±2 window tolerance,
        // unit-weight fusion — the PR-3 behavior exactly.
        assert_eq!(cfg.link.loss_rate, 0.0);
        assert!(cfg.link.retry_limit >= 1);
        assert_eq!(cfg.max_skew_windows, 2);
        assert!(!cfg.weight_bearings_by_confidence);
        // Streaming off by default: depth-1 pipelining is the
        // synchronous submit-then-collect behavior exactly.
        assert_eq!(cfg.windows_in_flight, 1);
        // Fleet knobs off by default: inline serial decode, one fusion
        // shard, reliable markers, no gap detection — byte-compatible
        // with the pre-fleet coordinator.
        assert_eq!(cfg.decode_shards, 1);
        assert_eq!(cfg.fusion_shards, 1);
        assert_eq!(cfg.marker_loss_rate, 0.0);
        assert_eq!(cfg.marker_timeout_windows, 0);
        // Telemetry off by default: the report's snapshot stays empty
        // and Debug-rendered reports are byte-stable across releases.
        assert!(!cfg.telemetry.enabled);
        assert_eq!(cfg.telemetry, TelemetryConfig::disabled());
        // Chaos/immune layers off by default: no fault plan, health
        // scoring disabled — both byte-transparent.
        assert!(cfg.faults.is_none());
        assert!(!cfg.health.enabled);
    }

    #[test]
    fn skew_labels_offset_and_drift() {
        let skew = ApSkew {
            window_offset: -2,
            seq_offset: 40,
            drift_ppw: 0.1,
        };
        assert_eq!(skew.window_label(0), -2);
        assert_eq!(skew.window_label(9), 7); // 9 − 2 + trunc(0.9)
        assert_eq!(skew.window_label(10), 9); // 10 − 2 + trunc(1.0)
        assert_eq!(skew.window_label(25), 25); // 25 − 2 + 2
        assert_eq!(skew.seq_label(3), 43);
        assert_eq!(ApSkew::NONE.window_label(7), 7);
        assert_eq!(ApSkew::default(), ApSkew::NONE);
    }

    #[test]
    fn errors_display() {
        let e = DeployError::ApCountMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("4 APs"));
        assert!(DeployError::NothingSubmitted
            .to_string()
            .contains("collect"));
        assert!(DeployError::WorkerLost { window: 3 }
            .to_string()
            .contains('3'));
        assert!(DeployError::UnknownAp { ap_id: 7 }
            .to_string()
            .contains('7'));
        assert!(DeployError::LastAp.to_string().contains("last"));
    }
}
