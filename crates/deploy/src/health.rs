//! AP health scoring, quarantine, and deterministic stall watchdog —
//! the fleet's immune system.
//!
//! Every closed window already produces per-AP evidence on the
//! coordinator: bearing residuals against the fused fix, skew
//! rejections, marker losses, report losses, checksum failures, and
//! stall flags. [`FleetHealth`] folds that evidence into a per-AP
//! score in `[0, 1]`; persistent outliers are first *down-weighted*
//! (their report confidence scaled by the score before fusion) and
//! then *quarantined* — excluded from fusion and consensus entirely,
//! with a consensus re-baseline — until a configurable clean streak
//! earns re-admission. A wedged worker (consecutive stalled markers)
//! is reaped by a window-count watchdog, never a wall clock, so the
//! whole defensive layer stays byte-deterministic.
//!
//! Disabled by default ([`HealthConfig::enabled`] = `false`): the
//! deployment is then byte-identical to a health-free build, pinned by
//! `tests/proptest_chaos.rs`.

/// Tuning for the AP health layer. Attached via
/// [`crate::DeployConfig::health`]; all thresholds are in window
/// counts or degrees, never wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Master switch. `false` (default) makes the layer byte-transparent:
    /// no scoring, no down-weighting, no quarantine, no watchdog.
    pub enabled: bool,
    /// A window casts suspicion on an AP when more than half its
    /// bearings miss the fused fix by over this many degrees; of the
    /// suspects, only the worst over-warn fraction each window is
    /// penalized (a liar drags the fix, and the honest APs it drags
    /// past this bar are not punished for its crime). The default sits
    /// between what honest APs absorb when a biased peer pulls the fix
    /// (≈5° worst case on a 4-AP cell) and the residual the biased AP
    /// itself shows (≈8° for a 15° bias).
    pub bearing_err_warn_deg: f64,
    /// Score penalty per bad window.
    pub penalty: f64,
    /// Score recovery per clean window, up to 1.0.
    pub recovery: f64,
    /// Quarantine an AP when its score falls below this.
    pub quarantine_below: f64,
    /// Clean windows required (while quarantined) to be re-admitted.
    pub readmit_after_clean: u32,
    /// Probation length for a re-joining AP
    /// ([`crate::Deployment::rejoin_ap`]): it resumes its trained
    /// baseline but stays quarantined for this many clean windows
    /// before its reports count again.
    pub probation_windows: u32,
    /// Reap a worker after this many *consecutive* stalled windows
    /// (its marker arrives flagged stalled with no payload). Window
    /// counts, not wall clock — the watchdog is deterministic.
    pub stall_watchdog_windows: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            bearing_err_warn_deg: 6.0,
            penalty: 0.25,
            recovery: 0.05,
            quarantine_below: 0.35,
            readmit_after_clean: 8,
            probation_windows: 8,
            stall_watchdog_windows: 4,
        }
    }
}

impl HealthConfig {
    /// An enabled config with the default tuning.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// One window's worth of evidence about one AP, assembled by the
/// coordinator at window close.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ApWindowEvidence {
    /// Bearings this AP contributed to fused fixes this window.
    pub bearings: u32,
    /// Of those, how many missed the fused fix by over
    /// [`HealthConfig::bearing_err_warn_deg`].
    pub over_warn: u32,
    /// Worst bearing residual this window, degrees.
    pub max_err_deg: f64,
    /// The AP's report payload failed its wire checksum.
    pub corrupt: bool,
    /// The AP's marker arrived flagged stalled (wedged DSP).
    pub stalled: bool,
    /// The AP's report was rejected for excess clock skew.
    pub skew_rejected: bool,
    /// The AP's end-of-window marker never arrived (gap-closed).
    pub marker_lost: bool,
    /// The AP's report payload was lost on the link.
    pub report_lost: bool,
}

impl ApWindowEvidence {
    /// Infrastructure faults: the AP's data never (usably) arrived.
    /// These are attributable to the AP alone and always count.
    fn availability_bad(&self) -> bool {
        self.corrupt || self.stalled || self.skew_rejected || self.marker_lost || self.report_lost
    }

    /// Bearing-integrity suspicion: a *majority* of this AP's bearings
    /// missed the fused fix, never the worst single residual —
    /// multipath hands even an honest AP the odd wildly-wrong bearing
    /// (fusion is robust to those), while a byzantine bias shifts most
    /// of an AP's bearings past the warn threshold at once.
    /// `max_err_deg` stays exported as evidence, but one bad bearing
    /// must not doom an AP.
    ///
    /// Suspicion alone is not guilt: while a liar drags the fused fix,
    /// honest APs can cross the majority bar too, so
    /// [`FleetHealth::observe_window`] only penalizes the *worst*
    /// suspect each window (relative attribution).
    fn bearing_suspect(&self) -> bool {
        self.bearings > 0 && self.over_warn * 2 > self.bearings
    }

    /// Exact over-warn-fraction comparison (`self ≥ other`), by
    /// cross-multiplication — no float division, so attribution is
    /// byte-deterministic.
    fn frac_ge(&self, other: &ApWindowEvidence) -> bool {
        u64::from(self.over_warn) * u64::from(other.bearings)
            >= u64::from(other.over_warn) * u64::from(self.bearings)
    }
}

/// A state transition the deployment must act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthAction {
    /// Quarantine this AP: exclude from fusion/consensus, re-baseline.
    Quarantine(usize),
    /// Re-admit this AP: include again, re-baseline.
    Readmit(usize),
    /// Reap this AP's worker: its stall run hit the watchdog.
    Reap(usize),
}

#[derive(Debug, Clone)]
struct ApHealth {
    score: f64,
    quarantined: bool,
    clean_needed: u32,
    clean_streak: u32,
    stall_run: u32,
    alive: bool,
}

impl ApHealth {
    fn fresh() -> Self {
        Self {
            score: 1.0,
            quarantined: false,
            clean_needed: 0,
            clean_streak: 0,
            stall_run: 0,
            alive: true,
        }
    }
}

/// Per-AP health state for a deployment. All updates happen in AP-id
/// order with fixed-point-free but order-independent evidence, so the
/// scores (and every action) are byte-deterministic given the input
/// window stream.
#[derive(Debug, Clone)]
pub struct FleetHealth {
    cfg: HealthConfig,
    aps: Vec<ApHealth>,
}

impl FleetHealth {
    /// A health tracker with no APs yet.
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            cfg,
            aps: Vec::new(),
        }
    }

    /// Whether the layer is active.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Register the next AP (ids are assigned densely, in join order).
    pub fn add_ap(&mut self) {
        self.aps.push(ApHealth::fresh());
    }

    /// Number of tracked APs.
    pub fn n_aps(&self) -> usize {
        self.aps.len()
    }

    /// Current score for `ap`, `[0, 1]`.
    pub fn score(&self, ap: usize) -> f64 {
        self.aps[ap].score
    }

    /// Is `ap` currently quarantined (excluded from fusion/consensus)?
    pub fn is_quarantined(&self, ap: usize) -> bool {
        self.cfg.enabled && self.aps.get(ap).is_some_and(|a| a.quarantined)
    }

    /// Indices of all currently quarantined APs, ascending.
    pub fn quarantined_aps(&self) -> Vec<usize> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        (0..self.aps.len())
            .filter(|&i| self.aps[i].quarantined && self.aps[i].alive)
            .collect()
    }

    /// Confidence weight for `ap`'s reports this window: 1.0 when
    /// healthy, the score when degraded (down-weighting), irrelevant
    /// when quarantined (reports are excluded outright).
    pub fn weight(&self, ap: usize) -> f64 {
        if !self.cfg.enabled {
            return 1.0;
        }
        self.aps[ap].score.clamp(0.05, 1.0)
    }

    /// Mark an AP dead (worker lost or removed) — it stops appearing in
    /// [`FleetHealth::quarantined_aps`] until revived.
    pub fn mark_dead(&mut self, ap: usize) {
        if let Some(a) = self.aps.get_mut(ap) {
            a.alive = false;
            a.stall_run = 0;
        }
    }

    /// Revive a re-joining AP behind probation: it resumes quarantined
    /// and must log [`HealthConfig::probation_windows`] clean windows
    /// before re-admission.
    pub fn start_probation(&mut self, ap: usize) {
        let cfg = self.cfg;
        if let Some(a) = self.aps.get_mut(ap) {
            a.alive = true;
            a.stall_run = 0;
            a.clean_streak = 0;
            if cfg.enabled {
                a.quarantined = true;
                a.clean_needed = cfg.probation_windows;
                a.score = a.score.min(cfg.quarantine_below);
            }
        }
    }

    /// Fold one closed window's evidence in. `evidence[ap]` must cover
    /// every tracked AP (dead APs' entries are ignored). Returns the
    /// actions the deployment must apply, in AP-id order.
    pub fn observe_window(&mut self, evidence: &[ApWindowEvidence]) -> Vec<HealthAction> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let cfg = self.cfg;
        // Relative attribution for bearing evidence: of the APs whose
        // bearing majority missed the fix this window, only the one(s)
        // with the worst over-warn fraction are guilty — a liar drags
        // the fused fix, and the honest APs it drags past the warn bar
        // must not be punished for its crime. Infrastructure faults
        // (stalls, losses, corruption, skew) always count: they are
        // attributable to their AP alone.
        let suspects: Vec<usize> = (0..self.aps.len())
            .filter(|&i| {
                self.aps[i].alive
                    && evidence
                        .get(i)
                        .is_some_and(ApWindowEvidence::bearing_suspect)
            })
            .collect();
        let guilty = |i: usize| {
            suspects.contains(&i) && suspects.iter().all(|&j| evidence[i].frac_ge(&evidence[j]))
        };
        for (i, a) in self.aps.iter_mut().enumerate() {
            if !a.alive {
                continue;
            }
            let ev = evidence.get(i).copied().unwrap_or_default();
            // Stall watchdog first: it acts on marker flags alone and
            // fires even while quarantined.
            if ev.stalled {
                a.stall_run += 1;
                if a.stall_run >= cfg.stall_watchdog_windows {
                    a.alive = false;
                    a.stall_run = 0;
                    actions.push(HealthAction::Reap(i));
                    continue;
                }
            } else {
                a.stall_run = 0;
            }
            if ev.availability_bad() || guilty(i) {
                a.score = (a.score - cfg.penalty).max(0.0);
                a.clean_streak = 0;
                if !a.quarantined && a.score < cfg.quarantine_below {
                    a.quarantined = true;
                    a.clean_needed = cfg.readmit_after_clean;
                    actions.push(HealthAction::Quarantine(i));
                }
            } else {
                a.score = (a.score + cfg.recovery).min(1.0);
                if a.quarantined {
                    a.clean_streak += 1;
                    if a.clean_streak >= a.clean_needed {
                        a.quarantined = false;
                        a.clean_streak = 0;
                        a.score = a.score.max(cfg.quarantine_below + cfg.recovery);
                        actions.push(HealthAction::Readmit(i));
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bad() -> ApWindowEvidence {
        ApWindowEvidence {
            bearings: 4,
            over_warn: 4,
            max_err_deg: 15.0,
            ..Default::default()
        }
    }

    fn clean() -> ApWindowEvidence {
        ApWindowEvidence {
            bearings: 4,
            over_warn: 0,
            max_err_deg: 1.0,
            ..Default::default()
        }
    }

    fn fleet(cfg: HealthConfig, n: usize) -> FleetHealth {
        let mut h = FleetHealth::new(cfg);
        for _ in 0..n {
            h.add_ap();
        }
        h
    }

    #[test]
    fn disabled_layer_is_inert() {
        let mut h = fleet(HealthConfig::default(), 2);
        for _ in 0..50 {
            assert!(h.observe_window(&[bad(), bad()]).is_empty());
        }
        assert!(!h.is_quarantined(0));
        assert_eq!(h.weight(0), 1.0);
        assert!(h.quarantined_aps().is_empty());
    }

    #[test]
    fn persistent_outlier_is_quarantined_then_readmitted() {
        let mut h = fleet(HealthConfig::enabled(), 2);
        let mut quarantined_at = None;
        for w in 0..10 {
            let acts = h.observe_window(&[bad(), clean()]);
            if acts.contains(&HealthAction::Quarantine(0)) {
                quarantined_at = Some(w);
                break;
            }
        }
        // score: 1.0 - 0.25/window, crosses 0.35 after 3 bad windows.
        assert_eq!(quarantined_at, Some(2));
        assert!(h.is_quarantined(0));
        assert!(!h.is_quarantined(1));
        assert_eq!(h.quarantined_aps(), vec![0]);
        // Scores stay exported while quarantined, and a clean streak
        // earns re-admission.
        let mut readmitted_at = None;
        for w in 0..20 {
            let acts = h.observe_window(&[clean(), clean()]);
            if acts.contains(&HealthAction::Readmit(0)) {
                readmitted_at = Some(w);
                break;
            }
        }
        assert_eq!(readmitted_at, Some(7)); // readmit_after_clean = 8
        assert!(!h.is_quarantined(0));
    }

    #[test]
    fn degraded_ap_is_downweighted_before_quarantine() {
        let mut h = fleet(HealthConfig::enabled(), 1);
        assert_eq!(h.weight(0), 1.0);
        h.observe_window(&[bad()]);
        assert!(h.weight(0) < 1.0 && h.weight(0) > 0.0);
    }

    #[test]
    fn stall_watchdog_reaps_after_window_count() {
        let mut h = fleet(HealthConfig::enabled(), 1);
        let stalled = ApWindowEvidence {
            stalled: true,
            ..Default::default()
        };
        let mut acts = Vec::new();
        for _ in 0..4 {
            acts = h.observe_window(&[stalled]);
        }
        assert_eq!(acts, vec![HealthAction::Reap(0)]);
        // A reaped AP produces no further actions.
        assert!(h.observe_window(&[stalled]).is_empty());
    }

    #[test]
    fn interrupted_stall_run_resets_the_watchdog() {
        let mut h = fleet(HealthConfig::enabled(), 1);
        let stalled = ApWindowEvidence {
            stalled: true,
            ..Default::default()
        };
        // Stalled windows also count as bad (they cost score and can
        // quarantine) — the watchdog must not fire before 4 in a row.
        for _ in 0..3 {
            let acts = h.observe_window(&[stalled]);
            assert!(!acts.contains(&HealthAction::Reap(0)), "{:?}", acts);
        }
        h.observe_window(&[clean()]);
        for _ in 0..3 {
            let acts = h.observe_window(&[stalled]);
            assert!(!acts.contains(&HealthAction::Reap(0)), "{:?}", acts);
        }
    }

    #[test]
    fn only_the_worst_bearing_suspect_is_penalized() {
        let mut h = fleet(HealthConfig::enabled(), 3);
        // AP0 lies (every bearing off); its drag pushes AP1 past the
        // majority bar too; AP2 stays clean. Only AP0 pays — honest
        // APs are not punished for the liar's crime.
        let liar = ApWindowEvidence {
            bearings: 8,
            over_warn: 8,
            max_err_deg: 8.0,
            ..Default::default()
        };
        let dragged = ApWindowEvidence {
            bearings: 8,
            over_warn: 5,
            max_err_deg: 7.0,
            ..Default::default()
        };
        for _ in 0..3 {
            h.observe_window(&[liar, dragged, clean()]);
        }
        assert!(h.is_quarantined(0));
        assert!(!h.is_quarantined(1));
        assert_eq!(h.score(1), 1.0);
        assert_eq!(h.score(2), 1.0);
        // With the liar quarantined and honest, evidence-clean windows,
        // nobody else is ever blamed — even the worst remaining
        // fraction is only penalized if it crosses the majority bar.
        let mild = ApWindowEvidence {
            bearings: 8,
            over_warn: 2,
            max_err_deg: 9.0,
            ..Default::default()
        };
        h.observe_window(&[clean(), mild, clean()]);
        assert_eq!(h.score(1), 1.0);
    }

    #[test]
    fn probation_holds_a_rejoiner_out_until_clean() {
        let mut h = fleet(HealthConfig::enabled(), 1);
        h.mark_dead(0);
        assert!(h.quarantined_aps().is_empty());
        h.start_probation(0);
        assert!(h.is_quarantined(0));
        let mut readmitted = false;
        for _ in 0..8 {
            readmitted |= h
                .observe_window(&[clean()])
                .contains(&HealthAction::Readmit(0));
        }
        assert!(readmitted);
        assert!(!h.is_quarantined(0));
    }
}
