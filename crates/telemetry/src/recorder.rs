//! The flight recorder: a bounded per-key ring of recent pipeline
//! events, kept so a verdict can be explained *after the fact*.
//!
//! AoA debugging is forensic — when a client is flagged, the question
//! is "what did the pipeline see in the windows leading up to that
//! verdict?", and by then the packets are gone. A [`FlightRecorder`]
//! keeps the last `depth` events per key (e.g. per client MAC) and at
//! most `max_clients` keys; when a new key would exceed the cap, the
//! least-recently-updated key's ring is evicted (ties broken by key
//! order, so eviction is deterministic for a deterministic event
//! stream).
//!
//! The recorder is generic over the key and event types: the deploy
//! layer instantiates it with MAC-address keys and rich per-window
//! consensus events, but the structure itself knows nothing about the
//! pipeline.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

struct Ring<E> {
    events: VecDeque<E>,
    /// Logical timestamp of the last `record` touching this key, from
    /// the recorder's own monotonic tick — no wall clock involved.
    last_touch: u64,
}

struct Inner<K, E> {
    rings: BTreeMap<K, Ring<E>>,
    tick: u64,
}

/// A bounded multi-ring event recorder. Shareable across threads behind
/// an `Arc`; all methods take `&self`.
pub struct FlightRecorder<K, E> {
    inner: Mutex<Inner<K, E>>,
    depth: usize,
    max_clients: usize,
}

impl<K: Ord + Copy, E: Clone> FlightRecorder<K, E> {
    /// A recorder keeping up to `depth` events for up to `max_clients`
    /// keys. Either bound at zero makes the recorder a no-op.
    pub fn new(depth: usize, max_clients: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                rings: BTreeMap::new(),
                tick: 0,
            }),
            depth,
            max_clients,
        }
    }

    /// Ring depth per key.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Append an event to `key`'s ring, evicting the oldest event of
    /// that ring (beyond `depth`) and, if `key` is new and the client
    /// cap is full, the least-recently-updated *other* key.
    pub fn record(&self, key: K, event: E) {
        if self.depth == 0 || self.max_clients == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.rings.contains_key(&key) && inner.rings.len() >= self.max_clients {
            // Evict the stalest ring; key order breaks exact ties.
            if let Some(&victim) = inner
                .rings
                .iter()
                .min_by_key(|(k, r)| (r.last_touch, **k))
                .map(|(k, _)| k)
            {
                inner.rings.remove(&victim);
            }
        }
        let ring = inner.rings.entry(key).or_insert_with(|| Ring {
            events: VecDeque::new(),
            last_touch: tick,
        });
        ring.last_touch = tick;
        if ring.events.len() == self.depth {
            ring.events.pop_front();
        }
        ring.events.push_back(event);
    }

    /// The recorded events for `key`, oldest first. `None` when the key
    /// was never recorded (or has been evicted).
    pub fn events(&self, key: K) -> Option<Vec<E>> {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        inner
            .rings
            .get(&key)
            .map(|r| r.events.iter().cloned().collect())
    }

    /// All currently tracked keys, in key order.
    pub fn keys(&self) -> Vec<K> {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        inner.rings.keys().copied().collect()
    }

    /// Number of keys currently tracked (≤ `max_clients`).
    pub fn client_count(&self) -> usize {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .rings
            .len()
    }
}

impl<K: Ord + Copy, E: Clone> std::fmt::Debug for FlightRecorder<K, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("depth", &self.depth)
            .field("max_clients", &self.max_clients)
            .field("clients", &self.client_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_depth_events() {
        let rec = FlightRecorder::new(3, 8);
        for i in 0..10u32 {
            rec.record(1u8, i);
        }
        assert_eq!(rec.events(1), Some(vec![7, 8, 9]));
        assert_eq!(rec.events(2), None);
    }

    #[test]
    fn eviction_drops_the_least_recently_updated_key() {
        let rec = FlightRecorder::new(2, 2);
        rec.record(10u8, "a");
        rec.record(20u8, "b");
        rec.record(10u8, "a2"); // key 20 is now stalest
        rec.record(30u8, "c"); // cap hit: 20 evicted
        assert_eq!(rec.keys(), vec![10, 30]);
        assert_eq!(rec.events(20), None);
        assert_eq!(rec.events(10), Some(vec!["a", "a2"]));
        assert_eq!(rec.client_count(), 2);
    }

    #[test]
    fn zero_bounds_make_it_a_no_op() {
        let none = FlightRecorder::new(0, 100);
        none.record(1u8, 1u8);
        assert_eq!(none.client_count(), 0);
        let none = FlightRecorder::new(4, 0);
        none.record(1u8, 1u8);
        assert_eq!(none.events(1), None);
    }

    #[test]
    fn concurrent_records_stay_bounded() {
        let rec = std::sync::Arc::new(FlightRecorder::new(4, 16));
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..100u32 {
                        rec.record(t * 8 + (i % 8) as u8, i);
                    }
                });
            }
        });
        assert!(rec.client_count() <= 16);
        for k in rec.keys() {
            assert!(rec.events(k).unwrap().len() <= 4);
        }
    }
}
