//! The unified counter/gauge/histogram registry.
//!
//! A [`Registry`] maps hierarchical, dot-separated metric names (plus an
//! optional label set) to shared atomic instruments. Registration takes
//! a lock; the returned [`Counter`]/[`Gauge`]/histogram handles are
//! `Arc`-backed atomics, so the *record* path never touches the
//! registry again — register once at setup, mutate lock-free on the hot
//! path, and call [`Registry::snapshot`] to read everything out in one
//! coherent, deterministically ordered [`TelemetrySnapshot`].

use crate::histogram::Histogram;
use crate::snapshot::{CounterSample, GaugeSample, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Metric identity: `(name, sorted-or-as-given labels)`. Labels are part
/// of the key, so `decode.packets{ap=0}` and `decode.packets{ap=1}` are
/// distinct instruments.
type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    (
        name.to_string(),
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    )
}

/// A monotonically increasing counter handle (cloned `Arc` onto the hot
/// path; all operations are relaxed atomics).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value — for mirroring an externally maintained
    /// total (e.g. a deterministic stats struct) into the registry.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed instantaneous value (queue depth, occupancy,
/// imbalance).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Overwrite with a fractional value scaled to milli-units (the
    /// registry convention for ratio gauges such as health scores and
    /// shard imbalance: `0.35` is stored as `350`).
    #[inline]
    pub fn set_milli(&self, v: f64) {
        self.set((v * 1000.0).round() as i64);
    }

    /// Ratchet up to `v` if it exceeds the current value (high-water
    /// marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<Key, Counter>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Arc<Histogram>>,
}

/// The registry: get-or-create instruments by `(name, labels)`, snapshot
/// them all at once. Shareable across threads behind an `Arc`; all
/// methods take `&self`.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("telemetry registry poisoned");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name{labels}`. Registering the same
    /// identity twice returns a handle to the same underlying atomic.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        inner.counters.entry(key(name, labels)).or_default().clone()
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        inner.gauges.entry(key(name, labels)).or_default().clone()
    }

    /// Get or create the histogram `name{labels}`. Per-shard callers
    /// should register distinct labels (e.g. `shard="3"`) and let
    /// [`TelemetrySnapshot::merged_histogram`] fold them, rather than
    /// share one instance across cores.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        inner
            .histograms
            .entry(key(name, labels))
            .or_default()
            .clone()
    }

    /// A coherent point-in-time copy of every registered instrument,
    /// ordered by `(name, labels)` — the ordering is deterministic, so
    /// two snapshots of identical state render identically.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().expect("telemetry registry poisoned");
        TelemetrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|((name, labels), c)| CounterSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|((name, labels), g)| GaugeSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|((name, labels), h)| h.snapshot(name, labels))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_identity_shares_the_atomic() {
        let r = Registry::new();
        let a = r.counter("decode.packets", &[("ap", "0")]);
        let b = r.counter("decode.packets", &[("ap", "0")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        // A different label set is a different instrument.
        let c = r.counter("decode.packets", &[("ap", "1")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_ops() {
        let r = Registry::new();
        let g = r.gauge("queue.depth", &[]);
        g.set(5);
        g.add(-2);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z.last", &[]).inc();
        r.counter("a.first", &[]).add(2);
        r.gauge("m.middle", &[]).set(-3);
        r.histogram("stage.x", &[("shard", "1")]).record(100);
        r.histogram("stage.x", &[("shard", "0")]).record(50);
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(s.counters[0].value, 2);
        assert_eq!(s.gauges[0].value, -3);
        assert_eq!(s.histograms.len(), 2);
        // Shard 0 sorts before shard 1.
        assert_eq!(s.histograms[0].labels, [("shard".into(), "0".into())]);
        let merged = s.merged_histogram("stage.x").expect("present");
        assert_eq!(merged.count, 2);
    }
}
